//! Special functions: log-gamma, log-binomial-coefficient, standard normal
//! CDF. These back the sign test and the samplers.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Accurate to ~1e-13 over the positive reals.
///
/// # Panics
/// Panics for `x <= 0` (not needed by any caller and the reflection formula
/// would add untested surface).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, quoted verbatim from the reference
    // table (some carry more digits than f64 resolves).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the binomial coefficient C(n, k). Returns `-inf` for
/// `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Standard normal cumulative distribution function.
///
/// Uses the complementary error function via the Abramowitz & Stegun 7.1.26
/// rational approximation (|error| < 1.5e-7). Adequate for diagnostics; the
/// sign test itself uses the exact binomial (see `signtest`), precisely
/// because this approximation cannot resolve tail p-values like 1e-13.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function, A&S 7.1.26 applied to `|x|` with symmetry.
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-ax * ax).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((i + 1) as f64);
            assert!((lg - f64::ln(f)).abs() < 1e-10, "Γ({})", i + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Check at n = 171, near f64 factorial overflow — log-space must
        // still be exact.
        let lg = ln_gamma(171.0);
        // ln(170!) computed by summation.
        let direct: f64 = (1..=170).map(|i| f64::ln(i as f64)).sum();
        assert!((lg - direct).abs() < 1e-8);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert!((ln_choose(5, 2) - f64::ln(10.0)).abs() < 1e-10);
        assert!((ln_choose(52, 5) - f64::ln(2_598_960.0)).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7);
        }
    }
}
