//! L2-regularized logistic regression fitted with IRLS.
//!
//! MPA uses logistic regression to estimate **propensity scores** (§5.2.3):
//! the probability of a case receiving treatment given its 27 confounding
//! practice metrics. Features are standardized internally (zero mean, unit
//! variance) so the ridge penalty is scale-free and IRLS converges quickly
//! even when metrics span orders of magnitude (Appendix A shows 1–2 orders
//! of magnitude spread for complexity metrics).
//!
//! The ridge (`lambda`, default 1e-4) also resolves the quasi-separation
//! that otherwise occurs with strongly related practices — Table 4's CMI
//! results show exactly such near-collinear confounders.

use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted logistic-regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Coefficients in standardized feature space; `[0]` is the intercept.
    beta: Vec<f64>,
    /// Per-feature means used for standardization.
    means: Vec<f64>,
    /// Per-feature standard deviations (1.0 for constant features).
    stds: Vec<f64>,
    /// Iterations actually used.
    iterations: usize,
    /// Whether IRLS converged within tolerance.
    converged: bool,
}

/// Fitting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Ridge penalty on non-intercept coefficients.
    pub lambda: f64,
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient change.
    pub tol: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { lambda: 1e-4, max_iter: 50, tol: 1e-8 }
    }
}

impl LogisticRegression {
    /// Fit on `x` (n rows × p features, row-major as slices) against binary
    /// labels `y`.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ, `x` is empty, or rows are ragged.
    pub fn fit(x: &[Vec<f64>], y: &[bool], config: LogisticConfig) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let n = x.len();
        let p = x[0].len();
        for row in x {
            assert_eq!(row.len(), p, "ragged feature matrix");
        }

        // Standardize features.
        let mut means = vec![0.0; p];
        let mut stds = vec![0.0; p];
        for j in 0..p {
            let mut s = 0.0;
            for row in x {
                s += row[j];
            }
            means[j] = s / n as f64;
            let mut v = 0.0;
            for row in x {
                let d = row[j] - means[j];
                v += d * d;
            }
            let sd = (v / n as f64).sqrt();
            stds[j] = if sd > 1e-12 { sd } else { 1.0 };
        }

        // Design matrix with intercept column.
        let mut data = Vec::with_capacity(n * (p + 1));
        for row in x {
            data.push(1.0);
            for j in 0..p {
                data.push((row[j] - means[j]) / stds[j]);
            }
        }
        let design = Matrix::from_rows(n, p + 1, data);
        let yv: Vec<f64> = y.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();

        let mut beta = vec![0.0; p + 1];
        let mut converged = false;
        let mut iterations = 0;
        for it in 0..config.max_iter {
            iterations = it + 1;
            let eta = design.matvec(&beta);
            let probs: Vec<f64> = eta.iter().map(|&e| sigmoid(e)).collect();
            // IRLS weights w = p(1−p), floored to keep the system PD.
            let w: Vec<f64> = probs.iter().map(|&pr| (pr * (1.0 - pr)).max(1e-9)).collect();
            // Working response contribution: Xᵀ(y − p) gives the gradient;
            // we solve (XᵀWX + λI)·δ = Xᵀ(y − p) − λβ for the Newton step.
            let resid: Vec<f64> = yv.iter().zip(&probs).map(|(yy, pp)| yy - pp).collect();
            let mut grad = design.t_matvec(&resid);
            for j in 1..=p {
                grad[j] -= config.lambda * beta[j];
            }
            let mut hess = design.weighted_gram(&w);
            for j in 1..=p {
                hess[(j, j)] += config.lambda;
            }
            let Some(delta) = hess.solve_spd(&grad) else {
                break; // keep the current (regularized) estimate
            };
            let mut max_change = 0.0f64;
            for (b, d) in beta.iter_mut().zip(&delta) {
                *b += d;
                max_change = max_change.max(d.abs());
            }
            if max_change < config.tol {
                converged = true;
                break;
            }
        }

        Self { beta, means, stds, iterations, converged }
    }

    /// Fit with the default configuration.
    pub fn fit_default(x: &[Vec<f64>], y: &[bool]) -> Self {
        Self::fit(x, y, LogisticConfig::default())
    }

    /// Predicted probability P(y = 1 | features).
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.means.len(), "feature count mismatch");
        let mut eta = self.beta[0];
        for (j, &f) in features.iter().enumerate() {
            eta += self.beta[j + 1] * (f - self.means[j]) / self.stds[j];
        }
        sigmoid(eta)
    }

    /// Predicted probabilities for many rows.
    pub fn predict_proba_all(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|row| self.predict_proba(row)).collect()
    }

    /// Coefficients in standardized space (intercept first).
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }

    /// Whether IRLS converged.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn learns_a_linear_boundary() {
        // y = 1 iff x0 + x1 > 1, on a grid.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let a = i as f64 / 10.0;
                let b = j as f64 / 10.0;
                x.push(vec![a, b]);
                y.push(a + b > 1.0);
            }
        }
        let m = LogisticRegression::fit_default(&x, &y);
        assert!(m.predict_proba(&[1.5, 1.5]) > 0.95);
        assert!(m.predict_proba(&[0.1, 0.1]) < 0.05);
        // Accuracy on training data should be near perfect.
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| (m.predict_proba(row) > 0.5) == label)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.97);
    }

    #[test]
    fn survives_perfect_separation() {
        // Perfectly separable data diverges without a ridge; with one, the
        // fit must stay finite.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let m = LogisticRegression::fit_default(&x, &y);
        for b in m.coefficients() {
            assert!(b.is_finite());
        }
        assert!(m.predict_proba(&[39.0]) > 0.9);
        assert!(m.predict_proba(&[0.0]) < 0.1);
    }

    #[test]
    fn handles_constant_features() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![5.0, f64::from(i)]).collect();
        let y: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let m = LogisticRegression::fit_default(&x, &y);
        assert!(m.predict_proba(&[5.0, 3.0]).is_finite());
    }

    #[test]
    fn recovers_known_coefficients_approximately() {
        // Generate from a known model and check sign/ordering of effects.
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..4000 {
            let a: f64 = rng.random_range(-2.0..2.0);
            let b: f64 = rng.random_range(-2.0..2.0);
            let eta = 0.5 + 2.0 * a - 1.0 * b;
            let p = sigmoid(eta);
            x.push(vec![a, b]);
            y.push(rng.random::<f64>() < p);
        }
        let m = LogisticRegression::fit_default(&x, &y);
        let c = m.coefficients();
        assert!(c[1] > 0.0, "effect of a should be positive");
        assert!(c[2] < 0.0, "effect of b should be negative");
        assert!(c[1].abs() > c[2].abs(), "a has the stronger effect");
        assert!(m.converged());
    }

    #[test]
    fn probabilities_are_calibrated_on_balanced_noise() {
        // Labels independent of features → predictions near base rate.
        let mut rng = StdRng::seed_from_u64(11);
        let x: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.random::<f64>()]).collect();
        let y: Vec<bool> = (0..2000).map(|i| i % 4 == 0).collect(); // 25% positive
        let m = LogisticRegression::fit_default(&x, &y);
        let avg: f64 =
            m.predict_proba_all(&x).iter().sum::<f64>() / 2000.0;
        assert!((avg - 0.25).abs() < 0.02, "avg predicted prob {avg}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        LogisticRegression::fit_default(&[vec![1.0]], &[true, false]);
    }
}
