//! Minimal dense linear algebra: exactly what IRLS needs.
//!
//! A row-major [`Matrix`] with multiplication helpers and a Cholesky solver
//! for symmetric positive-definite systems. Propensity-score models have at
//! most a few dozen features, so an O(p³) solve is instantaneous; clarity and
//! determinism beat sophistication here.

use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// `Aᵀ · diag(w) · A`, the weighted Gram matrix at the heart of IRLS.
    ///
    /// # Panics
    /// Panics if `w.len() != self.rows()`.
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        assert_eq!(w.len(), self.rows, "weight vector length mismatch");
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for (row, &wr) in self.data.chunks_exact(p).zip(w) {
            if wr == 0.0 {
                continue;
            }
            for i in 0..p {
                let wi = wr * row[i];
                for j in i..p {
                    g[(i, j)] += wi * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..p {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Aᵀ · v` where `v` has one entry per row.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vr) in self.data.chunks_exact(self.cols).zip(v) {
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        out
    }

    /// Solve `A·x = b` for symmetric positive-definite `A` via Cholesky,
    /// adding a tiny ridge if the factorization stalls (near-singular Gram
    /// matrices arise when confounders are collinear, which is exactly the
    /// situation §5.2 warns about).
    ///
    /// Returns `None` only if the matrix stays non-PD after the maximum
    /// jitter — practically impossible with the regularized IRLS caller.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve_spd needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut jitter = 0.0;
        for _ in 0..6 {
            if let Some(chol) = self.cholesky(jitter) {
                // Forward substitution L·y = b.
                let mut y = vec![0.0; n];
                for i in 0..n {
                    let mut s = b[i];
                    for j in 0..i {
                        s -= chol[i * n + j] * y[j];
                    }
                    y[i] = s / chol[i * n + i];
                }
                // Backward substitution Lᵀ·x = y.
                let mut x = vec![0.0; n];
                for i in (0..n).rev() {
                    let mut s = y[i];
                    for j in (i + 1)..n {
                        s -= chol[j * n + i] * x[j];
                    }
                    x[i] = s / chol[i * n + i];
                }
                return Some(x);
            }
            jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
        }
        None
    }

    /// Lower-triangular Cholesky factor of `self + jitter·I`, or `None` if a
    /// pivot is non-positive.
    fn cholesky(&self, jitter: f64) -> Option<Vec<f64>> {
        let n = self.rows;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)] + if i == j { jitter } else { 0.0 };
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Some(l)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let m = Matrix::identity(3);
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_rectangular() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.t_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn weighted_gram_unit_weights_is_ata() {
        let m = Matrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let g = m.weighted_gram(&[1.0, 1.0, 1.0]);
        assert_eq!(g[(0, 0)], 2.0);
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 0)], 1.0);
        assert_eq!(g[(1, 1)], 2.0);
    }

    #[test]
    fn weighted_gram_respects_weights() {
        let m = Matrix::from_rows(2, 1, vec![1.0, 1.0]);
        let g = m.weighted_gram(&[3.0, 5.0]);
        assert_eq!(g[(0, 0)], 8.0);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        // A = [[4,1],[1,3]], x = [1,2] → b = [6,7].
        let a = Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
        let x = a.solve_spd(&[6.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_handles_near_singular_with_jitter() {
        // Rank-deficient Gram matrix: columns identical.
        let m = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let g = m.weighted_gram(&[1.0; 3]);
        let x = g.solve_spd(&[1.0, 1.0]);
        assert!(x.is_some(), "jitter should rescue the solve");
        let x = x.unwrap();
        for v in &x {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn solve_spd_larger_system() {
        // Build SPD A = MᵀM + I and verify A·x ≈ b round trip.
        let m = Matrix::from_rows(
            4,
            3,
            vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.2, 0.0, 1.5, -0.7, 2.0, -0.2, 0.1],
        );
        let mut a = m.weighted_gram(&[1.0; 4]);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let b = vec![1.0, -2.0, 0.5];
        let x = a.solve_spd(&b).unwrap();
        let back = a.matvec(&x);
        for (bi, bb) in back.iter().zip(&b) {
            assert!((bi - bb).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_shape_mismatch_panics() {
        Matrix::identity(2).matvec(&[1.0]);
    }
}
