//! Entropy, mutual information and conditional mutual information.
//!
//! The paper uses:
//!
//! * **Normalized entropy** (§2.2, line D3) for hardware/firmware
//!   heterogeneity: `−Σᵢⱼ pᵢⱼ log₂ pᵢⱼ / log₂ N`.
//! * **Mutual information** (§5.1.1) between a binned practice metric and
//!   binned network health: `MI(X;Y) = H(Y) − H(Y|X)`.
//! * **Conditional mutual information** between practice pairs given health:
//!   `CMI(X₁;X₂|Y) = H(X₁|Y) − H(X₁|X₂,Y)`.
//!
//! All quantities use base-2 logarithms (bits) and plug-in (empirical)
//! probability estimates, matching the paper's methodology.

use std::collections::BTreeMap;

/// Shannon entropy (bits) of a discrete sample given as symbol indices.
/// Returns 0.0 for an empty sample.
pub fn entropy(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<usize, f64> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0.0) += 1.0;
    }
    let n = xs.len() as f64;
    counts.values().map(|&c| {
        let p = c / n;
        -p * p.log2()
    }).sum()
}

/// Joint entropy H(X, Y) of paired samples.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn joint_entropy(xs: &[usize], ys: &[usize]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "joint entropy needs paired samples");
    if xs.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (&x, &y) in xs.iter().zip(ys) {
        *counts.entry((x, y)).or_insert(0.0) += 1.0;
    }
    let n = xs.len() as f64;
    counts.values().map(|&c| {
        let p = c / n;
        -p * p.log2()
    }).sum()
}

/// Conditional entropy H(Y|X) = H(X,Y) − H(X).
pub fn conditional_entropy(ys: &[usize], xs: &[usize]) -> f64 {
    (joint_entropy(xs, ys) - entropy(xs)).max(0.0)
}

/// Mutual information MI(X;Y) = H(Y) − H(Y|X), clamped to ≥ 0 against
/// floating-point cancellation.
pub fn mutual_information(xs: &[usize], ys: &[usize]) -> f64 {
    (entropy(ys) - conditional_entropy(ys, xs)).max(0.0)
}

/// Conditional mutual information CMI(X₁;X₂|Y) = H(X₁|Y) − H(X₁|X₂,Y).
///
/// Computed via joint entropies: `H(X₁,Y) − H(Y) − H(X₁,X₂,Y) + H(X₂,Y)`.
/// Symmetric in X₁ and X₂.
pub fn conditional_mutual_information(x1: &[usize], x2: &[usize], ys: &[usize]) -> f64 {
    assert_eq!(x1.len(), x2.len(), "CMI needs paired samples");
    assert_eq!(x1.len(), ys.len(), "CMI needs paired samples");
    if x1.is_empty() {
        return 0.0;
    }
    let n = x1.len() as f64;
    let mut c_x1y: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut c_x2y: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut c_x1x2y: BTreeMap<(usize, usize, usize), f64> = BTreeMap::new();
    let mut c_y: BTreeMap<usize, f64> = BTreeMap::new();
    for ((&a, &b), &y) in x1.iter().zip(x2).zip(ys) {
        *c_x1y.entry((a, y)).or_insert(0.0) += 1.0;
        *c_x2y.entry((b, y)).or_insert(0.0) += 1.0;
        *c_x1x2y.entry((a, b, y)).or_insert(0.0) += 1.0;
        *c_y.entry(y).or_insert(0.0) += 1.0;
    }
    let h = |total: f64, counts: &mut dyn Iterator<Item = f64>| -> f64 {
        counts.map(|c| {
            let p = c / total;
            -p * p.log2()
        }).sum()
    };
    let h_x1y = h(n, &mut c_x1y.values().copied());
    let h_x2y = h(n, &mut c_x2y.values().copied());
    let h_x1x2y = h(n, &mut c_x1x2y.values().copied());
    let h_y = h(n, &mut c_y.values().copied());
    (h_x1y - h_y - h_x1x2y + h_x2y).max(0.0)
}

/// Normalized entropy over category counts, the paper's heterogeneity metric
/// (line D3): `−Σ p log₂ p / log₂ N`, where `N` is the population size
/// (number of devices) and `p` ranges over category fractions.
///
/// Returns 0.0 when there is at most one device or one category: a
/// single-model single-role network is perfectly homogeneous. A value close
/// to 1 indicates significant heterogeneity.
pub fn normalized_entropy(category_counts: &[usize]) -> f64 {
    let n: usize = category_counts.iter().sum();
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    let h: f64 = category_counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.log2()
        })
        .sum();
    h / nf.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[3, 3, 3]), 0.0);
        assert!((entropy(&[0, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[0, 1, 2, 3]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mi_of_identical_variables_is_their_entropy() {
        let xs = vec![0, 0, 1, 1, 2, 2];
        let mi = mutual_information(&xs, &xs);
        assert!((mi - entropy(&xs)).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_variables_is_zero() {
        // A full factorial of (x, y): exactly independent empirically.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                xs.push(x);
                ys.push(y);
            }
        }
        assert!(mutual_information(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let xs = vec![0, 1, 0, 2, 1, 0, 2, 2, 1, 0];
        let ys = vec![1, 1, 0, 2, 2, 0, 2, 1, 2, 0];
        let a = mutual_information(&xs, &ys);
        let b = mutual_information(&ys, &xs);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn mi_detects_nonmonotonic_dependence() {
        // y = 1 iff x is in the middle — a dependence ANOVA-style linear
        // methods would miss, which is the paper's argument for MI.
        let xs: Vec<usize> = (0..300).map(|i| i % 10).collect();
        let ys: Vec<usize> = xs.iter().map(|&x| usize::from((3..7).contains(&x))).collect();
        assert!(mutual_information(&xs, &ys) > 0.5);
    }

    #[test]
    fn cmi_symmetric_in_first_two_args() {
        let x1 = vec![0, 1, 0, 2, 1, 0, 2, 2, 1, 0, 1, 2];
        let x2 = vec![1, 1, 0, 2, 2, 0, 2, 1, 2, 0, 0, 1];
        let y = vec![0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0];
        let a = conditional_mutual_information(&x1, &x2, &y);
        let b = conditional_mutual_information(&x2, &x1, &y);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cmi_zero_when_x1_constant() {
        let x1 = vec![5; 10];
        let x2 = vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0];
        let y = vec![0, 0, 0, 1, 1, 1, 0, 0, 1, 1];
        assert!(conditional_mutual_information(&x1, &x2, &y).abs() < 1e-12);
    }

    #[test]
    fn cmi_detects_conditional_dependence() {
        // x2 = x1 exactly: CMI(x1; x2 | y) = H(x1|y) > 0 when x1 varies
        // within levels of y.
        let x1 = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let cmi = conditional_mutual_information(&x1, &x1, &y);
        assert!((cmi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_entropy_bounds_and_cases() {
        assert_eq!(normalized_entropy(&[]), 0.0);
        assert_eq!(normalized_entropy(&[5]), 0.0); // one model+role: homogeneous
        assert_eq!(normalized_entropy(&[1]), 0.0);
        // N devices all in distinct categories: H = log2(N), metric = 1.
        let each_own: Vec<usize> = vec![1; 8];
        assert!((normalized_entropy(&each_own) - 1.0).abs() < 1e-12);
        // Two categories of 4 in N=8: H = 1, log2 8 = 3 → 1/3.
        assert!((normalized_entropy(&[4, 4]) - 1.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mi_nonnegative_and_bounded(
            pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..300)
        ) {
            let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let mi = mutual_information(&xs, &ys);
            prop_assert!(mi >= 0.0);
            prop_assert!(mi <= entropy(&xs) + 1e-9);
            prop_assert!(mi <= entropy(&ys) + 1e-9);
        }

        #[test]
        fn cmi_nonnegative(
            triples in proptest::collection::vec((0usize..4, 0usize..4, 0usize..3), 1..300)
        ) {
            let x1: Vec<usize> = triples.iter().map(|t| t.0).collect();
            let x2: Vec<usize> = triples.iter().map(|t| t.1).collect();
            let y: Vec<usize> = triples.iter().map(|t| t.2).collect();
            prop_assert!(conditional_mutual_information(&x1, &x2, &y) >= 0.0);
        }

        #[test]
        fn normalized_entropy_in_unit_interval(
            counts in proptest::collection::vec(0usize..50, 1..20)
        ) {
            let ne = normalized_entropy(&counts);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ne));
        }
    }
}
