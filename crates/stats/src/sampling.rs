//! Seeded samplers for the synthetic-organization generator.
//!
//! Implemented in-repo (rather than via `rand_distr`) so that every draw is
//! unit-tested, bit-reproducible across platforms, and auditable: the shape
//! of these distributions is what makes the synthetic OSP match the paper's
//! Appendix A characterization.
//!
//! [`Sampler`] wraps any [`rand::Rng`] with the distributions MPA needs:
//! Poisson (ticket and change counts), normal / log-normal (size scales and
//! heavy-tailed metrics), Pareto (extreme tails), Bernoulli and weighted
//! choice (mixture components).

use rand::Rng;

/// Distribution sampler over a mutable RNG reference.
#[derive(Debug)]
pub struct Sampler<'a, R: Rng> {
    rng: &'a mut R,
}

impl<'a, R: Rng> Sampler<'a, R> {
    /// Wrap an RNG.
    pub fn new(rng: &'a mut R) -> Self {
        Self { rng }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.rng.random_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller (one value per call; the second is
    /// intentionally discarded to keep the call sequence stateless).
    pub fn normal_std(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `sd < 0`.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "negative standard deviation");
        mean + sd * self.normal_std()
    }

    /// Log-normal: `exp(N(mu, sigma))`. `mu`/`sigma` are in log space.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `x_m > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        assert!(x_m > 0.0 && alpha > 0.0, "pareto parameters must be positive");
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        x_m * u.powf(-1.0 / alpha)
    }

    /// Poisson with rate `lambda >= 0`.
    ///
    /// Uses Knuth's product method per chunk of rate ≤ 16 and sums the
    /// chunks (Poisson additivity), which is exact, branch-simple and fast
    /// enough for every rate this workspace draws (≤ a few hundred).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0 && lambda.is_finite(), "invalid Poisson rate {lambda}");
        let mut remaining = lambda;
        let mut total = 0u64;
        while remaining > 0.0 {
            let chunk = remaining.min(16.0);
            remaining -= chunk;
            total += self.poisson_knuth(chunk);
        }
        total
    }

    fn poisson_knuth(&mut self, lambda: f64) -> u64 {
        if lambda == 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = self.uniform();
        while prod > limit {
            k += 1;
            prod *= self.uniform();
        }
        k
    }

    /// Index drawn proportionally to `weights` (non-negative, not all zero).
    ///
    /// # Panics
    /// Panics if weights are empty, contain negatives, or sum to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted choice over empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative, got {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1 // floating-point remainder lands on the last bucket
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.random_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir-free: shuffle of an
    /// index vector, deterministic given the RNG state).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut ix: Vec<usize> = (0..n).collect();
        self.shuffle(&mut ix);
        ix.truncate(k);
        ix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng(1);
        let mut s = Sampler::new(&mut r);
        assert_eq!(s.poisson(0.0), 0);
    }

    #[test]
    fn poisson_mean_and_variance_match_rate() {
        let mut r = rng(2);
        let mut s = Sampler::new(&mut r);
        for &lambda in &[0.5, 3.0, 16.0, 75.0] {
            let n = 20_000;
            let draws: Vec<f64> = (0..n).map(|_| s.poisson(lambda) as f64).collect();
            let m = crate::summary::mean(&draws);
            let v = crate::summary::variance(&draws);
            let tol = 4.0 * (lambda / n as f64).sqrt().max(0.02);
            assert!((m - lambda).abs() < tol, "mean {m} vs λ {lambda}");
            assert!((v - lambda).abs() < lambda * 0.15 + 0.05, "var {v} vs λ {lambda}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(3);
        let mut s = Sampler::new(&mut r);
        let draws: Vec<f64> = (0..50_000).map(|_| s.normal(5.0, 2.0)).collect();
        assert!((crate::summary::mean(&draws) - 5.0).abs() < 0.05);
        assert!((crate::summary::variance(&draws).sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng(4);
        let mut s = Sampler::new(&mut r);
        let mut draws: Vec<f64> = (0..50_000).map(|_| s.log_normal(2.0, 0.8)).collect();
        draws.sort_by(|a, b| a.total_cmp(b));
        let med = draws[draws.len() / 2];
        // Median of LogNormal(μ, σ) = e^μ.
        assert!((med - 2f64.exp()).abs() / 2f64.exp() < 0.05, "median {med}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_tail_heaviness() {
        let mut r = rng(5);
        let mut s = Sampler::new(&mut r);
        let draws: Vec<f64> = (0..50_000).map(|_| s.pareto(1.0, 1.5)).collect();
        assert!(draws.iter().all(|&x| x >= 1.0));
        // P[X > 10] = 10^-1.5 ≈ 0.0316.
        let frac = draws.iter().filter(|&&x| x > 10.0).count() as f64 / draws.len() as f64;
        assert!((frac - 0.0316).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng(6);
        let mut s = Sampler::new(&mut r);
        let hits = (0..20_000).filter(|_| s.bernoulli(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
        assert!(!s.bernoulli(0.0));
        assert!(s.bernoulli(1.0));
        assert!(s.bernoulli(2.0), "clamped above 1");
    }

    #[test]
    fn weighted_choice_proportions() {
        let mut r = rng(7);
        let mut s = Sampler::new(&mut r);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[s.weighted_choice(&w)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket never drawn");
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((frac0 - 0.25).abs() < 0.02, "bucket 0 fraction {frac0}");
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_choice_all_zero_panics() {
        let mut r = rng(8);
        Sampler::new(&mut r).weighted_choice(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = rng(9);
        let mut s = Sampler::new(&mut r);
        let mut xs: Vec<u32> = (0..100).collect();
        s.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng(10);
        let mut s = Sampler::new(&mut r);
        let ix = s.sample_indices(50, 10);
        assert_eq!(ix.len(), 10);
        let set: std::collections::BTreeSet<_> = ix.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(ix.iter().all(|&i| i < 50));
        assert!(s.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = |seed| {
            let mut r = rng(seed);
            let mut s = Sampler::new(&mut r);
            (0..10).map(|_| s.poisson(7.0)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
