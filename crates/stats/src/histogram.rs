//! Empirical CDFs and histograms.
//!
//! Appendix A's figures (11–13) are CDFs over per-network metric values;
//! Figure 7 compares confounder CDFs between matched groups. [`Ecdf`]
//! supports both: evaluation at arbitrary points, fraction queries and
//! sampled curves for plotting/reporting.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from any sample (unsorted, NaN-free).
    ///
    /// # Panics
    /// Panics if the sample contains NaN.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| !v.is_nan()), "ECDF input must be NaN-free");
        values.sort_by(|a, b| a.total_cmp(b));
        Self { sorted: values }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// F(x) = fraction of observations ≤ x. Returns 0.0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let cnt = self.sorted.partition_point(|&v| v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly greater than `x`.
    pub fn frac_above(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Fraction of observations in `[lo, hi]`.
    pub fn frac_between(&self, lo: f64, hi: f64) -> f64 {
        if self.sorted.is_empty() || hi < lo {
            return 0.0;
        }
        let below_lo = self.sorted.partition_point(|&v| v < lo);
        let upto_hi = self.sorted.partition_point(|&v| v <= hi);
        (upto_hi - below_lo) as f64 / self.sorted.len() as f64
    }

    /// Sample the CDF curve at `k` evenly spaced x positions across the data
    /// range, returning `(x, F(x))` pairs — the series a plot would draw.
    /// Returns an empty vec for an empty sample; a single point for constant
    /// data.
    pub fn curve(&self, k: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || k == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if (hi - lo).abs() < 1e-300 || k == 1 {
            return vec![(lo, 1.0)];
        }
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Maximum vertical distance to another ECDF (two-sample
    /// Kolmogorov–Smirnov statistic), evaluated at all jump points of both
    /// samples. Used to quantify Fig 7's "visual equivalence" numerically.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d = 0.0f64;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }

    /// The sorted underlying sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_steps_through_sample() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert_eq!(e.eval(1.0), 0.0);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn frac_between_inclusive() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.frac_between(2.0, 3.0), 0.5);
        assert_eq!(e.frac_between(0.0, 10.0), 1.0);
        assert_eq!(e.frac_between(5.0, 1.0), 0.0);
    }

    #[test]
    fn curve_spans_range_and_ends_at_one() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 1.0);
        assert_eq!(c[10].0, 100.0);
        assert_eq!(c[10].1, 1.0);
        for w in c.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
    }

    #[test]
    fn constant_data_curve() {
        let e = Ecdf::new(vec![5.0; 4]);
        assert_eq!(e.curve(10), vec![(5.0, 1.0)]);
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(e.ks_distance(&e.clone()), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    proptest! {
        #[test]
        fn eval_is_monotone_nondecreasing(
            values in proptest::collection::vec(-1e3f64..1e3, 1..100),
            a in -1e3f64..1e3,
            b in -1e3f64..1e3,
        ) {
            let e = Ecdf::new(values);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.eval(lo) <= e.eval(hi));
        }
    }
}
