//! The sign test (§5.2.5).
//!
//! For each matched pair the outcome difference `y_treated − y_untreated` is
//! reduced to its sign. Under the null hypothesis H₀ ("the median outcome
//! difference is zero") the positive count among non-tied pairs is
//! Binomial(n, ½). The paper chooses the sign test because "it makes few
//! assumptions about the nature of the distribution, and it has been shown to
//! be well-suited for evaluating matched design experiments", and rejects H₀
//! at p < 0.001.
//!
//! We compute the **exact** two-sided binomial p-value in log-space for any
//! n (the paper's largest comparison has n ≈ 1 400 non-tied pairs; exact
//! summation is trivial at that size and, unlike a normal approximation,
//! resolves tail p-values like 6.8×10⁻¹³).

use crate::special::ln_choose;
use serde::{Deserialize, Serialize};

/// Result of a sign test over matched-pair outcome differences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignTestResult {
    /// Pairs where the treated case had the *better* outcome (fewer tickets).
    pub n_negative: u64,
    /// Tied pairs (no effect). Excluded from the test, reported for Table 6.
    pub n_zero: u64,
    /// Pairs where the treated case had the *worse* outcome (more tickets).
    pub n_positive: u64,
    /// Exact two-sided p-value for H₀: median difference = 0.
    pub p_value: f64,
}

impl SignTestResult {
    /// Whether H₀ is rejected at significance threshold `alpha`
    /// (the paper uses `alpha = 0.001`).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Direction of the effect if significant: `+1` means treatment leads to
    /// more tickets (worse health), `-1` fewer, `0` if counts are tied.
    pub fn direction(&self) -> i8 {
        use std::cmp::Ordering::*;
        match self.n_positive.cmp(&self.n_negative) {
            Greater => 1,
            Less => -1,
            Equal => 0,
        }
    }
}

/// Exact two-sided sign test given the per-sign pair counts.
///
/// Ties (`n_zero`) are excluded, per the standard sign test. With zero
/// non-tied pairs the p-value is 1.0 (no evidence either way).
pub fn sign_test(n_negative: u64, n_zero: u64, n_positive: u64) -> SignTestResult {
    let n = n_negative + n_positive;
    let p_value = if n == 0 {
        1.0
    } else {
        let k = n_negative.max(n_positive);
        // Two-sided: 2 · P[X ≥ k], X ~ Bin(n, ½), capped at 1.
        (2.0 * binom_sf_half(n, k)).min(1.0)
    };
    SignTestResult { n_negative, n_zero, n_positive, p_value }
}

/// Sign test from raw outcome differences.
pub fn sign_test_from_diffs(diffs: &[i64]) -> SignTestResult {
    let mut neg = 0;
    let mut zero = 0;
    let mut pos = 0;
    for &d in diffs {
        match d.cmp(&0) {
            std::cmp::Ordering::Less => neg += 1,
            std::cmp::Ordering::Equal => zero += 1,
            std::cmp::Ordering::Greater => pos += 1,
        }
    }
    sign_test(neg, zero, pos)
}

/// P[X ≥ k] for X ~ Binomial(n, ½), computed by log-space summation.
/// Exact to f64 rounding for any n encountered in practice.
fn binom_sf_half(n: u64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    // Sum from the largest term down for numerical stability; use
    // log-sum-exp anchored at the first (largest within the tail) term.
    let mut terms: Vec<f64> = (k..=n).map(|i| ln_choose(n, i) + ln_half_n).collect();
    terms.sort_by(|a, b| b.total_cmp(a));
    let anchor = terms[0];
    let sum: f64 = terms.iter().map(|t| (t - anchor).exp()).sum();
    (anchor + sum.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_pairs_is_inconclusive() {
        let r = sign_test(0, 10, 0);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant(0.001));
        assert_eq!(r.direction(), 0);
    }

    #[test]
    fn small_exact_values() {
        // n = 10, k = 10: p = 2 · (1/2)^10 = 1/512.
        let r = sign_test(0, 0, 10);
        assert!((r.p_value - 2.0 / 1024.0).abs() < 1e-12);
        assert_eq!(r.direction(), 1);

        // n = 10, split 5/5: p = 2 · P[X ≥ 5] = 2 · (386/1024)... compute:
        // P[X ≥ 5] = (252+210+120+45+10+1)/1024 = 638/1024.
        let r = sign_test(5, 3, 5);
        assert!((r.p_value - 1.0).abs() < 1e-12, "capped at 1, got {}", r.p_value);
    }

    #[test]
    fn direction_reflects_majority() {
        assert_eq!(sign_test(10, 0, 2).direction(), -1);
        assert_eq!(sign_test(2, 0, 10).direction(), 1);
    }

    #[test]
    fn paper_scale_tail_p_value() {
        // Table 6, comparison 1:2: 562 fewer vs 830 more (350 ties)
        // → p ≈ 6.8e-13. Our exact computation should land in that decade.
        let r = sign_test(562, 350, 830);
        assert!(r.p_value < 1e-11, "p = {}", r.p_value);
        assert!(r.p_value > 1e-14, "p = {}", r.p_value);
        assert!(r.significant(0.001));
    }

    #[test]
    fn paper_scale_moderate_p_value() {
        // Table 6, comparison 2:3: 251 fewer vs 302 more → p ≈ 3.3e-2:
        // NOT significant at 0.001.
        let r = sign_test(251, 61, 302);
        assert!(r.p_value > 0.01 && r.p_value < 0.05, "p = {}", r.p_value);
        assert!(!r.significant(0.001));
    }

    #[test]
    fn from_diffs_counts_signs() {
        let r = sign_test_from_diffs(&[3, -1, 0, 0, 2, -5, 7]);
        assert_eq!(r.n_positive, 3);
        assert_eq!(r.n_negative, 2);
        assert_eq!(r.n_zero, 2);
    }

    #[test]
    fn survival_function_edges() {
        assert_eq!(binom_sf_half(10, 0), 1.0);
        assert_eq!(binom_sf_half(10, 11), 0.0);
        assert!((binom_sf_half(1, 1) - 0.5).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn p_value_in_unit_interval(neg in 0u64..500, zero in 0u64..100, pos in 0u64..500) {
            let r = sign_test(neg, zero, pos);
            prop_assert!(r.p_value > 0.0);
            prop_assert!(r.p_value <= 1.0);
        }

        #[test]
        fn p_value_symmetric_in_sign(neg in 0u64..200, pos in 0u64..200) {
            let a = sign_test(neg, 0, pos);
            let b = sign_test(pos, 0, neg);
            prop_assert!((a.p_value - b.p_value).abs() < 1e-12);
        }

        #[test]
        fn more_lopsided_is_more_significant(n in 4u64..200, k in 0u64..100) {
            // With n total pairs, moving one pair from minority to majority
            // can only decrease (or keep) the p-value.
            let k = k.min(n / 2);
            if k >= 1 {
                let balanced = sign_test(k, 0, n - k);
                let lopsided = sign_test(k - 1, 0, n - k + 1);
                prop_assert!(lopsided.p_value <= balanced.p_value + 1e-12);
            }
        }
    }
}
