//! Match-quality diagnostics (§5.2.4).
//!
//! After propensity matching, each confounding practice must be *balanced*
//! between the matched treated and matched untreated groups:
//!
//! * absolute standardized difference of means `|(Z̄ₜ − Z̄ᵤ)/σₜ| < 0.25`, and
//! * variance ratio `σ²ₜ/σ²ᵤ ∈ [0.5, 2]`
//!
//! (thresholds from Stuart [32], as adopted by the paper). The same checks
//! apply to the propensity scores themselves (Table 5's last two columns).

use crate::summary::{mean, variance};
use serde::{Deserialize, Serialize};

/// Standardized difference of means: `(mean(treated) − mean(untreated)) / σ_treated`.
///
/// When the treated group has zero variance the difference is standardized
/// by the pooled std instead; if both are zero the raw mean difference
/// decides (0 → balanced, otherwise ±∞-like sentinel 999.0 flags imbalance).
pub fn std_diff_of_means(treated: &[f64], untreated: &[f64]) -> f64 {
    let diff = mean(treated) - mean(untreated);
    let sd_t = variance(treated).sqrt();
    if sd_t > 1e-12 {
        return diff / sd_t;
    }
    let pooled = ((variance(treated) + variance(untreated)) / 2.0).sqrt();
    if pooled > 1e-12 {
        diff / pooled
    } else if diff.abs() < 1e-12 {
        0.0
    } else {
        999.0 * diff.signum()
    }
}

/// Variance ratio `σ²_treated / σ²_untreated`. Degenerate cases: both zero →
/// 1.0 (trivially balanced); untreated zero only → ∞ (flags imbalance).
pub fn variance_ratio(treated: &[f64], untreated: &[f64]) -> f64 {
    let vt = variance(treated);
    let vu = variance(untreated);
    if vu <= 1e-300 {
        if vt <= 1e-300 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        vt / vu
    }
}

/// Combined balance check for one covariate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceCheck {
    /// Standardized difference of means.
    pub std_diff: f64,
    /// Ratio of variances.
    pub var_ratio: f64,
}

impl BalanceCheck {
    /// Compute both diagnostics.
    pub fn compute(treated: &[f64], untreated: &[f64]) -> Self {
        Self {
            std_diff: std_diff_of_means(treated, untreated),
            var_ratio: variance_ratio(treated, untreated),
        }
    }

    /// Stuart's thresholds: `|std diff| < 0.25` and `var ratio ∈ [0.5, 2]`.
    pub fn is_balanced(&self) -> bool {
        self.std_diff.abs() < 0.25 && (0.5..=2.0).contains(&self.var_ratio)
    }
}

/// Convenience: whether a single covariate passes both thresholds.
pub fn balance_ok(treated: &[f64], untreated: &[f64]) -> bool {
    BalanceCheck::compute(treated, untreated).is_balanced()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_groups_are_balanced() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c = BalanceCheck::compute(&xs, &xs);
        assert_eq!(c.std_diff, 0.0);
        assert_eq!(c.var_ratio, 1.0);
        assert!(c.is_balanced());
    }

    #[test]
    fn shifted_means_flag_imbalance() {
        let t = [10.0, 11.0, 12.0, 13.0];
        let u = [1.0, 2.0, 3.0, 4.0];
        let c = BalanceCheck::compute(&t, &u);
        assert!(c.std_diff > 0.25);
        assert!(!c.is_balanced());
    }

    #[test]
    fn inflated_variance_flags_imbalance() {
        let t = [-10.0, -5.0, 0.0, 5.0, 10.0];
        let u = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let c = BalanceCheck::compute(&t, &u);
        assert!(c.std_diff.abs() < 0.25, "means match");
        assert!(c.var_ratio > 2.0);
        assert!(!c.is_balanced());
    }

    #[test]
    fn small_shift_within_threshold_is_balanced() {
        let t = [1.0, 2.0, 3.0, 4.0, 5.0];
        let u = [1.1, 2.1, 3.1, 4.1, 5.1];
        assert!(balance_ok(&t, &u));
    }

    #[test]
    fn degenerate_constant_groups() {
        // Both constant & equal → balanced.
        assert!(balance_ok(&[2.0, 2.0], &[2.0, 2.0]));
        // Both constant, different value → imbalanced via sentinel.
        let c = BalanceCheck::compute(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(!c.is_balanced());
        // Treated constant, untreated varying → infinite-ish ratio handled.
        let c = BalanceCheck::compute(&[2.0, 2.0], &[1.0, 3.0]);
        assert!(c.var_ratio < 0.5);
        assert!(!c.is_balanced());
    }
}
