//! Summary statistics: means, variances, percentiles, box-plot stats.
//!
//! The paper's scatter/box figures (Figs 3, 4, 6) report the 25th, 50th and
//! 75th percentiles with whiskers at "the most extreme datapoints within
//! twice the interquartile range"; [`BoxStats`] computes exactly that.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns 0.0 for an empty slice (a convention that keeps
/// monthly aggregation total: a network with no observations contributes a
/// zero-valued metric rather than a NaN that would poison MI binning).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). Returns 0.0 for fewer than
/// two observations.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile with linear interpolation between order statistics
/// (R type-7 / NumPy default). `p` is in `[0, 100]`.
///
/// Sorting uses the IEEE total order ([`f64::total_cmp`]), so NaN input
/// does not panic: NaN sorts after `+∞` and surfaces only in the top
/// percentiles instead of aborting a pipeline phase mid-run.
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Percentile over an already-sorted slice (ascending). See [`percentile`].
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let h = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Box-plot statistics in the paper's convention: quartile box, whiskers at
/// the most extreme data points within 2×IQR of the quartiles, plus the mean
/// (Fig 4 plots both mean and median lines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Number of observations.
    pub n: usize,
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Lowest observation ≥ `q1 − 2·IQR`.
    pub whisker_lo: f64,
    /// Highest observation ≤ `q3 + 2·IQR`.
    pub whisker_hi: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl BoxStats {
    /// Compute box statistics. Returns `None` for an empty slice.
    ///
    /// NaN input does not panic: values sort in IEEE total order (NaN
    /// last), and if NaN reaches a quartile the affected whisker bound
    /// becomes NaN, which disables that side's outlier clipping rather
    /// than aborting the caller.
    pub fn compute(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q1 = percentile_sorted(&sorted, 25.0);
        let med = percentile_sorted(&sorted, 50.0);
        let q3 = percentile_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        let lo_bound = q1 - 2.0 * iqr;
        let hi_bound = q3 + 2.0 * iqr;
        // A NaN bound compares false against everything; fall back to the
        // unclipped extreme instead of panicking on the find.
        let whisker_lo = sorted.iter().copied().find(|&x| x >= lo_bound).unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_bound)
            .unwrap_or(sorted[sorted.len() - 1]);
        Some(Self { n: sorted.len(), q1, median: med, q3, whisker_lo, whisker_hi, mean: mean(xs) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(variance(&[1.0]), 0.0);
        // var of {1,2,3,4} = 10/6... sample variance = ((−1.5)²+(−0.5)²+0.5²+1.5²)/3 = 5/3
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn box_stats_basic() {
        let xs: Vec<f64> = (1..=101).map(f64::from).collect();
        let b = BoxStats::compute(&xs).unwrap();
        assert_eq!(b.n, 101);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.q1, 26.0);
        assert_eq!(b.q3, 76.0);
        // IQR = 50, bounds = [-74, 176]: whiskers reach the extremes.
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 101.0);
        assert_eq!(b.mean, 51.0);
    }

    #[test]
    fn box_stats_clips_outliers_from_whiskers() {
        let mut xs: Vec<f64> = (1..=100).map(f64::from).collect();
        xs.push(10_000.0);
        let b = BoxStats::compute(&xs).unwrap();
        assert!(b.whisker_hi < 10_000.0);
        assert!(b.mean > b.median, "mean is pulled up by the outlier");
    }

    #[test]
    fn nan_input_no_longer_panics() {
        // Regression for the determinism contract's R1 fix: these paths
        // used to `expect` on `partial_cmp` and abort on the first NaN.
        let xs = [3.0, f64::NAN, 1.0];
        // NaN sorts last under the IEEE total order: [1.0, 3.0, NaN].
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert!(percentile(&xs, 100.0).is_nan());
        let b = BoxStats::compute(&xs).expect("non-empty");
        assert_eq!(b.n, 3);
        assert_eq!(b.median, 3.0);
        // q3 interpolates into the NaN tail; the high whisker degrades to
        // the unclipped extreme instead of panicking.
        assert!(b.q3.is_nan());
        assert_eq!(b.whisker_lo, 1.0);
        assert!(b.whisker_hi.is_nan());
    }

    #[test]
    fn nan_free_input_is_unaffected_by_total_order_sort() {
        // total_cmp and partial_cmp agree on NaN-free data, so the golden
        // outputs cannot move. Spot-check a mixed-sign sample.
        let xs = [0.5, -1.0, 2.5, 0.0, -0.25];
        assert_eq!(percentile(&xs, 50.0), 0.0);
        let b = BoxStats::compute(&xs).unwrap();
        assert_eq!((b.q1, b.q3), (-0.25, 0.5));
        // IQR = 0.75, hi bound = 2.0: 2.5 is a clipped outlier, so the
        // high whisker falls back to the next point inside the fence.
        assert_eq!((b.whisker_lo, b.whisker_hi), (-1.0, 0.5));
    }

    #[test]
    fn box_stats_empty_is_none() {
        assert!(BoxStats::compute(&[]).is_none());
    }

    #[test]
    fn box_stats_singleton() {
        let b = BoxStats::compute(&[7.0]).unwrap();
        assert_eq!(b.median, 7.0);
        assert_eq!(b.whisker_lo, 7.0);
        assert_eq!(b.whisker_hi, 7.0);
    }
}
