//! The paper's discretization strategy (§5.1.1).
//!
//! > "We bin the data for each metric using 10-equal width bins, with the 5th
//! > percentile value as the lower bound for the first bin, and the 95th
//! > percentile value as the upper bound for the last bin. Networks whose
//! > metric value is below the 5th (above the 95th) percentile are put in the
//! > first (last) bin."
//!
//! Ten bins are used for dependence analysis; five for treatment assignment
//! in the causal QED (§5.2.2) and for learning (§6.1).

use crate::summary::percentile;
use serde::{Deserialize, Serialize};

/// An equal-width binner with percentile-bounded range and outlier clamping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binner {
    lo: f64,
    hi: f64,
    n_bins: usize,
}

impl Binner {
    /// Fit a binner to `values` with `n_bins` equal-width bins spanning the
    /// `[p_lo, p_hi]` percentile range of the data.
    ///
    /// Degenerate data (all values equal, or an empty slice) yields a binner
    /// that maps everything to bin 0.
    ///
    /// # Panics
    /// Panics if `n_bins == 0` or the percentile bounds are invalid.
    pub fn fit_percentile(values: &[f64], n_bins: usize, p_lo: f64, p_hi: f64) -> Self {
        assert!(n_bins > 0, "need at least one bin");
        assert!(p_lo < p_hi, "lower percentile must be below upper");
        if values.is_empty() {
            return Self { lo: 0.0, hi: 0.0, n_bins };
        }
        let lo = percentile(values, p_lo);
        let hi = percentile(values, p_hi);
        Self { lo, hi, n_bins }
    }

    /// The paper's default: bounds at the 5th and 95th percentile.
    pub fn fit(values: &[f64], n_bins: usize) -> Self {
        Self::fit_percentile(values, n_bins, 5.0, 95.0)
    }

    /// Construct with explicit bounds (used by tests and by treatment
    /// binning, where bounds must be shared across analyses).
    pub fn with_bounds(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(n_bins > 0, "need at least one bin");
        assert!(lo <= hi, "lo must not exceed hi");
        Self { lo, hi, n_bins }
    }

    /// Number of bins.
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Lower bound of the binned range (5th percentile when fitted).
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the binned range (95th percentile when fitted).
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin index for `x`, in `0..n_bins`. Values below the range clamp to the
    /// first bin, values above (or at the upper bound) to the last.
    pub fn bin(&self, x: f64) -> usize {
        if self.hi <= self.lo {
            return 0; // degenerate: all mass in one bin
        }
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return self.n_bins - 1;
        }
        let w = (self.hi - self.lo) / self.n_bins as f64;
        let ix = ((x - self.lo) / w) as usize;
        ix.min(self.n_bins - 1)
    }

    /// Bin all values.
    pub fn bin_all(&self, values: &[f64]) -> Vec<usize> {
        values.iter().map(|&x| self.bin(x)).collect()
    }

    /// The half-open value range `[lo, hi)` of bin `ix` (the first and last
    /// bins additionally absorb everything below/above).
    pub fn bin_range(&self, ix: usize) -> (f64, f64) {
        assert!(ix < self.n_bins, "bin index out of range");
        let w = (self.hi - self.lo) / self.n_bins as f64;
        (self.lo + w * ix as f64, self.lo + w * (ix + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamping_at_percentile_bounds() {
        // 0..=100 → p5 = 5, p95 = 95.
        let values: Vec<f64> = (0..=100).map(f64::from).collect();
        let b = Binner::fit(&values, 10);
        assert_eq!(b.lo(), 5.0);
        assert_eq!(b.hi(), 95.0);
        assert_eq!(b.bin(-100.0), 0);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(5.0), 0);
        assert_eq!(b.bin(95.0), 9);
        assert_eq!(b.bin(1e9), 9);
    }

    #[test]
    fn equal_width_interior() {
        let b = Binner::with_bounds(0.0, 10.0, 10);
        assert_eq!(b.bin(0.5), 0);
        assert_eq!(b.bin(1.5), 1);
        assert_eq!(b.bin(9.5), 9);
        assert_eq!(b.bin_range(3), (3.0, 4.0));
    }

    #[test]
    fn degenerate_data_goes_to_bin_zero() {
        let b = Binner::fit(&[4.2; 50], 10);
        assert_eq!(b.bin(4.2), 0);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(100.0), 0);
    }

    #[test]
    fn empty_data_goes_to_bin_zero() {
        let b = Binner::fit(&[], 10);
        assert_eq!(b.bin(1.0), 0);
    }

    #[test]
    fn heavy_tail_spreads_across_bins() {
        // A long-tailed metric (like the paper's VLAN counts): with raw
        // min/max bounds almost everything would land in bin 0; percentile
        // bounds spread the bulk.
        let mut values: Vec<f64> = (0..990).map(|i| f64::from(i) / 100.0).collect();
        values.extend([1e4, 2e4, 3e4, 4e4, 5e4, 6e4, 7e4, 8e4, 9e4, 1e5]);
        let b = Binner::fit(&values, 10);
        let bins = b.bin_all(&values);
        let distinct: std::collections::BTreeSet<_> = bins.iter().copied().collect();
        assert!(distinct.len() >= 9, "bulk should occupy most bins, got {distinct:?}");
    }

    proptest! {
        #[test]
        fn bin_is_always_in_range(
            values in proptest::collection::vec(-1e6f64..1e6, 1..200),
            x in -1e7f64..1e7,
            n_bins in 1usize..20,
        ) {
            let b = Binner::fit(&values, n_bins);
            prop_assert!(b.bin(x) < n_bins);
        }

        #[test]
        fn bin_is_monotonic(
            values in proptest::collection::vec(-1e3f64..1e3, 2..200),
            x in -1e3f64..1e3,
            y in -1e3f64..1e3,
        ) {
            let b = Binner::fit(&values, 10);
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            prop_assert!(b.bin(lo) <= b.bin(hi));
        }
    }
}
