//! Pearson correlation.
//!
//! Appendix A reports Pearson coefficients (changes-vs-size: 0.64;
//! automation-vs-changes: 0.23); the characterization pipeline reproduces
//! those numbers with this function.

/// Pearson product-moment correlation coefficient.
///
/// Returns 0.0 when either variable is constant or fewer than two pairs are
/// given (no linear association measurable).
///
/// # Panics
/// Panics if slice lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs paired samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 1e-300 || syy <= 1e-300 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_variable_yields_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn orthogonal_pattern_is_uncorrelated() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        let ys = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn bounded_in_unit_interval(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&xs, &ys);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }

        #[test]
        fn symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-12);
        }
    }
}
