//! # mpa-stats — statistics substrate for Management Plane Analytics
//!
//! Every quantitative technique the paper relies on, implemented from scratch
//! and deterministic:
//!
//! * [`summary`] — means, variances, percentiles and box-plot statistics
//!   (the paper's figures report 25th/50th/75th percentiles with 2×IQR
//!   whiskers).
//! * [`binning`] — the paper's binning strategy (§5.1.1): equal-width bins
//!   bounded by the 5th and 95th percentile, with outliers clamped into the
//!   first/last bin.
//! * [`entropy`] — Shannon entropy, mutual information and conditional mutual
//!   information over discretized variables (§5.1), plus the normalized
//!   entropy used for hardware/firmware heterogeneity (§2.2, line D3).
//! * [`logistic`] — L2-regularized logistic regression fitted with IRLS;
//!   used to estimate propensity scores (§5.2.3).
//! * [`signtest`] — the exact sign test used to judge matched-pair outcome
//!   differences (§5.2.5).
//! * [`balance`] — standardized difference of means and variance ratio, the
//!   match-quality diagnostics of §5.2.4.
//! * [`linalg`] — the small dense-matrix kernel (Cholesky solve) backing IRLS.
//! * [`sampling`] — seeded samplers (Poisson, normal, log-normal, Pareto,
//!   weighted choice) used by the synthetic-organization generator. These are
//!   implemented here rather than pulled from `rand_distr` so they are
//!   bit-reproducible and unit-tested in-repo.
//! * [`corr`] — Pearson correlation (Appendix A reports correlation
//!   coefficients).
//! * [`histogram`] — empirical CDFs backing the Appendix A figures.
//! * [`special`] — log-gamma / log-choose / normal CDF primitives.

pub mod balance;
pub mod binning;
pub mod corr;
pub mod entropy;
pub mod histogram;
pub mod linalg;
pub mod logistic;
pub mod sampling;
pub mod signtest;
pub mod special;
pub mod summary;

pub use balance::{balance_ok, std_diff_of_means, variance_ratio, BalanceCheck};
pub use binning::Binner;
pub use corr::pearson;
pub use entropy::{
    conditional_entropy, conditional_mutual_information, entropy, joint_entropy,
    mutual_information, normalized_entropy,
};
pub use histogram::Ecdf;
pub use linalg::Matrix;
pub use logistic::LogisticRegression;
pub use sampling::Sampler;
pub use signtest::{sign_test, SignTestResult};
pub use summary::{mean, percentile, variance, BoxStats};
