//! Model evaluation: accuracy, per-class precision/recall, confusion
//! matrices and seeded k-fold cross-validation (§6.1 uses 5-fold CV).

use crate::data::{Classifier, LearnSet};
use mpa_stats::Sampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Evaluation results over a labelled set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// `confusion[actual][predicted]` counts.
    pub confusion: Vec<Vec<usize>>,
    /// Number of evaluated examples.
    pub n: usize,
}

impl Evaluation {
    /// Empty evaluation for `k` classes.
    pub fn new(n_classes: u8) -> Self {
        let k = usize::from(n_classes);
        Self { confusion: vec![vec![0; k]; k], n: 0 }
    }

    /// Record one prediction.
    pub fn record(&mut self, actual: u8, predicted: u8) {
        self.confusion[usize::from(actual)][usize::from(predicted)] += 1;
        self.n += 1;
    }

    /// Merge another evaluation (e.g., a CV fold) into this one.
    pub fn merge(&mut self, other: &Evaluation) {
        assert_eq!(self.confusion.len(), other.confusion.len(), "class count mismatch");
        for (row, orow) in self.confusion.iter_mut().zip(&other.confusion) {
            for (c, oc) in row.iter_mut().zip(orow) {
                *c += oc;
            }
        }
        self.n += other.n;
    }

    /// Overall accuracy; 0.0 when nothing was evaluated.
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.confusion.len()).map(|i| self.confusion[i][i]).sum();
        correct as f64 / self.n as f64
    }

    /// Precision of class `c`: TP / (TP + FP). 0.0 when the class is never
    /// predicted (matching the paper's "no precision ... for the unhealthy
    /// class" description of the majority baseline).
    pub fn precision(&self, c: u8) -> f64 {
        let c = usize::from(c);
        let tp = self.confusion[c][c];
        let predicted: usize = self.confusion.iter().map(|row| row[c]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of class `c`: TP / (TP + FN). 0.0 when the class never occurs.
    pub fn recall(&self, c: u8) -> f64 {
        let c = usize::from(c);
        let tp = self.confusion[c][c];
        let actual: usize = self.confusion[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u8 {
        self.confusion.len() as u8
    }
}

/// Evaluate a trained classifier on a labelled set.
pub fn evaluate<C: Classifier>(model: &C, set: &LearnSet) -> Evaluation {
    let mut ev = Evaluation::new(set.n_classes());
    for inst in set.instances() {
        ev.record(inst.label, model.predict(&inst.features));
    }
    ev
}

/// Seeded k-fold cross-validation. `train` receives each fold's training
/// subset and returns a fitted classifier; results are merged across folds.
///
/// Folds are trained and evaluated in parallel (they share nothing but the
/// read-only set and the up-front shuffle), then merged in fold order, so
/// the result is identical at any `mpa_exec` thread count.
///
/// # Panics
/// Panics if `k < 2` or the set has fewer than `k` instances.
pub fn cross_validate<C, F>(set: &LearnSet, k: usize, seed: u64, train: F) -> Evaluation
where
    C: Classifier,
    F: Fn(&LearnSet) -> C + Sync,
{
    assert!(k >= 2, "need at least 2 folds");
    assert!(set.len() >= k, "fewer instances than folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Sampler::new(&mut rng);
    let mut order: Vec<usize> = (0..set.len()).collect();
    s.shuffle(&mut order);

    let folds: Vec<usize> = (0..k).collect();
    let fold_evals = mpa_exec::par_map(&folds, |_, &fold| {
        let test_ix: Vec<usize> =
            order.iter().copied().skip(fold).step_by(k).collect();
        let test_set: std::collections::BTreeSet<usize> = test_ix.iter().copied().collect();
        let train_ix: Vec<usize> =
            (0..set.len()).filter(|i| !test_set.contains(i)).collect();
        let model = train(&set.subset(&train_ix));
        let test = set.subset(&test_ix);
        evaluate(&model, &test)
    });

    let mut result = Evaluation::new(set.n_classes());
    for ev in &fold_evals {
        result.merge(ev);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::MajorityClassifier;
    use crate::data::Instance;
    use crate::tree::DecisionTree;

    fn rule_set(n: usize) -> LearnSet {
        // label = feature0 >= 2, plus a noise feature.
        let instances = (0..n)
            .map(|i| {
                let f0 = (i % 4) as u8;
                Instance {
                    features: vec![f0, (i % 3) as u8],
                    label: u8::from(f0 >= 2),
                    weight: 1.0,
                }
            })
            .collect();
        LearnSet::new(instances, vec![4, 3], 2)
    }

    #[test]
    fn confusion_and_metrics() {
        let mut ev = Evaluation::new(2);
        ev.record(0, 0);
        ev.record(0, 0);
        ev.record(0, 1);
        ev.record(1, 1);
        assert_eq!(ev.n, 4);
        assert_eq!(ev.accuracy(), 0.75);
        assert_eq!(ev.precision(1), 0.5);
        assert_eq!(ev.recall(1), 1.0);
        assert_eq!(ev.precision(0), 1.0);
        assert!((ev.recall(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn never_predicted_class_has_zero_precision_and_recall() {
        let mut ev = Evaluation::new(2);
        ev.record(0, 0);
        ev.record(1, 0);
        assert_eq!(ev.precision(1), 0.0);
        assert_eq!(ev.recall(1), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Evaluation::new(2);
        a.record(0, 0);
        let mut b = Evaluation::new(2);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.n, 2);
        assert_eq!(a.accuracy(), 0.5);
    }

    #[test]
    fn cross_validation_on_learnable_rule_is_accurate() {
        let set = rule_set(200);
        let ev = cross_validate(&set, 5, 7, DecisionTree::fit_default);
        assert_eq!(ev.n, 200, "every instance tested exactly once");
        assert!(ev.accuracy() > 0.95, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn cross_validation_of_majority_matches_base_rate() {
        let set = rule_set(200); // 50/50 split
        let ev = cross_validate(&set, 4, 7, MajorityClassifier::fit);
        assert!((ev.accuracy() - 0.5).abs() < 0.1, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn cv_is_deterministic_per_seed() {
        let set = rule_set(100);
        let a = cross_validate(&set, 5, 3, DecisionTree::fit_default);
        let b = cross_validate(&set, 5, 3, DecisionTree::fit_default);
        assert_eq!(a, b);
    }
}
