//! Random forests, including the balanced and weighted variants.
//!
//! Footnote 2 of the paper: "We also experimented with random forests;
//! neither balanced nor weighted random forests improve the accuracy for
//! the minority classes beyond the improvements we are already able to
//! achieve with boosting and oversampling." The benches reproduce that
//! comparison, so all three variants are implemented:
//!
//! * [`ForestVariant::Plain`] — bootstrap sample per tree, random feature
//!   subset (√p) considered at tree level.
//! * [`ForestVariant::Balanced`] — per-tree training set is a balanced
//!   bootstrap: an equal number of samples drawn (with replacement) from
//!   each class.
//! * [`ForestVariant::Weighted`] — classes are weighted inversely to their
//!   frequency, so minority errors cost more during tree induction.

use crate::data::{Classifier, Instance, LearnSet};
use crate::tree::{DecisionTree, TreeConfig};
use mpa_stats::Sampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Forest flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForestVariant {
    /// Plain bootstrap forest.
    Plain,
    /// Balanced bootstrap per tree.
    Balanced,
    /// Inverse-frequency class weights.
    Weighted,
}

/// Forest configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Variant.
    pub variant: ForestVariant,
    /// RNG seed for bootstraps and feature masking.
    pub seed: u64,
    /// Per-tree configuration (forests typically grow deep, lightly pruned
    /// trees, so the default α here is much smaller than a lone tree's).
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 25,
            variant: ForestVariant::Plain,
            seed: 0x666F_7265,
            tree: TreeConfig { alpha_fraction: 0.002, max_depth: 30 },
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>,
    n_classes: u8,
}

impl RandomForest {
    /// Train a forest.
    ///
    /// # Panics
    /// Panics on an empty dataset or zero trees.
    pub fn fit(set: &LearnSet, config: ForestConfig) -> Self {
        assert!(!set.is_empty(), "cannot train a forest on an empty dataset");
        assert!(config.n_trees >= 1, "need at least one tree");
        let n = set.len();
        let p = set.n_features();
        let subset_size = (p as f64).sqrt().ceil() as usize;

        // Per-class index pools (for balanced bootstraps) and inverse
        // frequency weights (for the weighted variant).
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); usize::from(set.n_classes())];
        for (i, inst) in set.instances().iter().enumerate() {
            // mpa-lint: allow(R7) -- instance labels are < n_classes, the by_class vec's length
            by_class[usize::from(inst.label)].push(i);
        }
        let class_weight: Vec<f64> = by_class
            .iter()
            .map(|pool| if pool.is_empty() { 0.0 } else { n as f64 / pool.len() as f64 })
            .collect();

        // Each tree draws from its own RNG stream keyed by (forest seed,
        // tree index), so trees can be fitted on any number of threads and
        // the forest comes out identical.
        let tree_ixs: Vec<u64> = (0..config.n_trees as u64).collect();
        let trees = mpa_exec::par_map(&tree_ixs, |_, &tree_ix| {
            let mut rng = StdRng::seed_from_u64(mpa_exec::stream_seed(config.seed, tree_ix));
            let mut s = Sampler::new(&mut rng);
            // Bootstrap.
            let sample_ix: Vec<usize> = match config.variant {
                ForestVariant::Plain | ForestVariant::Weighted => {
                    (0..n).map(|_| s.uniform_range(0, n as u64 - 1) as usize).collect()
                }
                ForestVariant::Balanced => {
                    let nonempty: Vec<&Vec<usize>> =
                        by_class.iter().filter(|pool| !pool.is_empty()).collect();
                    let per_class = (n / nonempty.len()).max(1);
                    let mut sample = Vec::with_capacity(per_class * nonempty.len());
                    for pool in &nonempty {
                        // `nonempty` filtered zero-member pools out above,
                        // so the draw bound cannot underflow.
                        let last = pool.len() as u64 - 1;
                        for _ in 0..per_class {
                            sample.extend(pool.get(s.uniform_range(0, last) as usize).copied());
                        }
                    }
                    sample
                }
            };

            // Random feature subset: non-selected features are masked to a
            // constant so the tree cannot split on them.
            let feature_ix = s.sample_indices(p, subset_size.clamp(1, p));
            let mask: Vec<bool> = {
                let mut m = vec![false; p];
                for &f in &feature_ix {
                    m[f] = true;
                }
                m
            };
            let instances: Vec<Instance> = sample_ix
                .iter()
                .map(|&i| {
                    let src = &set.instances()[i];
                    Instance {
                        features: src
                            .features
                            .iter()
                            .enumerate()
                            .map(|(j, &v)| if mask[j] { v } else { 0 })
                            .collect(),
                        label: src.label,
                        weight: match config.variant {
                            // mpa-lint: allow(R7) -- instance labels are < n_classes, the class_weight vec's length
                            ForestVariant::Weighted => class_weight[usize::from(src.label)],
                            _ => 1.0,
                        },
                    }
                })
                .collect();
            let boot = set.with_instances(instances);
            (DecisionTree::fit(&boot, config.tree), feature_ix)
        });
        Self { trees, n_classes: set.n_classes() }
    }

    /// Train with defaults.
    pub fn fit_default(set: &LearnSet) -> Self {
        Self::fit(set, ForestConfig::default())
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[u8]) -> u8 {
        let mut votes = vec![0usize; usize::from(self.n_classes)];
        for (tree, feature_ix) in &self.trees {
            // Re-apply the tree's feature mask.
            let mut masked = vec![0u8; features.len()];
            for &f in feature_ix {
                masked[f] = features[f];
            }
            // mpa-lint: allow(R7) -- trees emit labels < n_classes, the votes vec's length
            votes[usize::from(tree.predict(&masked))] += 1;
        }
        votes.iter().enumerate().max_by_key(|(_, &v)| v).expect("non-empty").0 as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    fn noisy_rule_set(n: usize) -> LearnSet {
        // label depends on features 0 and 1; features 2..5 are noise.
        let instances = (0..n)
            .map(|i| {
                let f0 = (i % 5) as u8;
                let f1 = ((i / 5) % 5) as u8;
                Instance {
                    features: vec![f0, f1, (i % 3) as u8, ((i * 7) % 5) as u8, ((i * 11) % 5) as u8],
                    label: u8::from(f0 + f1 >= 5),
                    weight: 1.0,
                }
            })
            .collect();
        LearnSet::new(instances, vec![5, 5, 3, 5, 5], 2)
    }

    #[test]
    fn forest_learns_the_rule() {
        let set = noisy_rule_set(500);
        let forest = RandomForest::fit_default(&set);
        let ev = evaluate(&forest, &set);
        assert!(ev.accuracy() > 0.9, "accuracy {}", ev.accuracy());
        assert_eq!(forest.n_trees(), 25);
    }

    #[test]
    fn balanced_forest_improves_minority_recall_on_skewed_data() {
        // 95:5 skew; minority lives at f0=4,f1=4.
        let mut instances = Vec::new();
        for i in 0..400 {
            instances.push(Instance {
                features: vec![(i % 4) as u8, (i % 3) as u8],
                label: 0,
                weight: 1.0,
            });
        }
        for _ in 0..20 {
            instances.push(Instance { features: vec![4, 4], label: 1, weight: 1.0 });
        }
        let set = LearnSet::new(instances, vec![5, 5], 2);
        let balanced = RandomForest::fit(
            &set,
            ForestConfig { variant: ForestVariant::Balanced, ..ForestConfig::default() },
        );
        let ev = evaluate(&balanced, &set);
        assert!(ev.recall(1) > 0.9, "balanced recall {}", ev.recall(1));
    }

    #[test]
    fn weighted_forest_runs_and_is_reasonable() {
        let set = noisy_rule_set(300);
        let weighted = RandomForest::fit(
            &set,
            ForestConfig { variant: ForestVariant::Weighted, ..ForestConfig::default() },
        );
        assert!(evaluate(&weighted, &set).accuracy() > 0.85);
    }

    #[test]
    fn deterministic_per_seed() {
        let set = noisy_rule_set(200);
        let a = RandomForest::fit(&set, ForestConfig::default());
        let b = RandomForest::fit(&set, ForestConfig::default());
        assert_eq!(a, b);
        let c = RandomForest::fit(&set, ForestConfig { seed: 99, ..ForestConfig::default() });
        assert_ne!(a, c);
    }
}
