//! Learning datasets: weighted instances over small categorical features.
//!
//! Prior to learning, MPA bins every practice metric into 5 equal-width
//! bins and network health into 2 or 5 classes (§6.1). A feature value is
//! therefore a small integer, which keeps decision-tree splitting exact and
//! fast (one child per bin, no threshold search).

use serde::{Deserialize, Serialize};

/// One training/test example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Binned feature values; `features[j] < feature_arity[j]`.
    pub features: Vec<u8>,
    /// Class label, `< n_classes`.
    pub label: u8,
    /// Instance weight (1.0 unless reweighted by boosting/oversampling).
    pub weight: f64,
}

/// A dataset with fixed feature arities and class count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnSet {
    instances: Vec<Instance>,
    feature_arity: Vec<u8>,
    n_classes: u8,
}

/// Anything that predicts a class from binned features.
pub trait Classifier {
    /// Predict the class of one feature vector.
    fn predict(&self, features: &[u8]) -> u8;

    /// Predict every instance of a set.
    ///
    /// Instances are independent, so prediction is chunked across the
    /// configured worker threads; outputs stay in instance order.
    fn predict_all(&self, set: &LearnSet) -> Vec<u8>
    where
        Self: Sync + Sized,
    {
        mpa_exec::par_chunk_map(set.instances(), 512, |chunk| {
            chunk.iter().map(|i| self.predict(&i.features)).collect()
        })
    }
}

impl LearnSet {
    /// Build a dataset, validating feature/label ranges.
    ///
    /// # Panics
    /// Panics on ragged rows, out-of-range features/labels, or non-positive
    /// weights.
    pub fn new(instances: Vec<Instance>, feature_arity: Vec<u8>, n_classes: u8) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        for inst in &instances {
            assert_eq!(inst.features.len(), feature_arity.len(), "ragged feature row");
            for (f, &a) in inst.features.iter().zip(&feature_arity) {
                assert!(*f < a, "feature value {f} out of arity {a}");
            }
            assert!(inst.label < n_classes, "label {} out of range", inst.label);
            assert!(inst.weight > 0.0, "weights must be positive");
        }
        Self { instances, feature_arity, n_classes }
    }

    /// Instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_arity.len()
    }

    /// Arity (bin count) of each feature.
    pub fn feature_arity(&self) -> &[u8] {
        &self.feature_arity
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u8 {
        self.n_classes
    }

    /// Total instance weight.
    pub fn total_weight(&self) -> f64 {
        self.instances.iter().map(|i| i.weight).sum()
    }

    /// Per-class weight totals.
    pub fn class_weights(&self) -> Vec<f64> {
        let mut w = vec![0.0; usize::from(self.n_classes)];
        for i in &self.instances {
            // mpa-lint: allow(R7) -- instance labels are < n_classes by LearnSet construction
            w[usize::from(i.label)] += i.weight;
        }
        w
    }

    /// Per-class instance counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; usize::from(self.n_classes)];
        for i in &self.instances {
            c[usize::from(i.label)] += 1;
        }
        c
    }

    /// A new set with the same schema but a subset of instances (cloned).
    pub fn subset(&self, indices: &[usize]) -> LearnSet {
        LearnSet {
            instances: indices.iter().map(|&i| self.instances[i].clone()).collect(),
            feature_arity: self.feature_arity.clone(),
            n_classes: self.n_classes,
        }
    }

    /// A new set with the same schema and the given instances.
    pub fn with_instances(&self, instances: Vec<Instance>) -> LearnSet {
        LearnSet::new(instances, self.feature_arity.clone(), self.n_classes)
    }

    /// Replace every weight (used by boosting). Length must match.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.instances.len(), "weight vector length");
        for (inst, &w) in self.instances.iter_mut().zip(weights) {
            assert!(w > 0.0, "weights must be positive");
            inst.weight = w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy() -> LearnSet {
        // label = feature0 > 1
        let instances = (0..4u8)
            .flat_map(|f0| {
                (0..3u8).map(move |f1| Instance {
                    features: vec![f0, f1],
                    label: u8::from(f0 > 1),
                    weight: 1.0,
                })
            })
            .collect();
        LearnSet::new(instances, vec![4, 3], 2)
    }

    #[test]
    fn construction_and_accessors() {
        let s = toy();
        assert_eq!(s.len(), 12);
        assert_eq!(s.n_features(), 2);
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.total_weight(), 12.0);
        assert_eq!(s.class_counts(), vec![6, 6]);
        assert_eq!(s.class_weights(), vec![6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of arity")]
    fn out_of_range_feature_panics() {
        LearnSet::new(
            vec![Instance { features: vec![5], label: 0, weight: 1.0 }],
            vec![4],
            2,
        );
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        LearnSet::new(
            vec![Instance { features: vec![0], label: 3, weight: 1.0 }],
            vec![4],
            2,
        );
    }

    #[test]
    fn subset_preserves_schema() {
        let s = toy();
        let sub = s.subset(&[0, 5, 11]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.feature_arity(), s.feature_arity());
        assert_eq!(sub.n_classes(), 2);
    }

    #[test]
    fn set_weights_roundtrip() {
        let mut s = toy();
        let w: Vec<f64> = (1..=12).map(f64::from).collect();
        s.set_weights(&w);
        assert_eq!(s.total_weight(), 78.0);
    }
}
