//! Minority-class oversampling (§6.1).
//!
//! > "Oversampling directly addresses skew as it repeats the minority class
//! > examples during training. When building a 2-class model we replicate
//! > samples from the unhealthy class twice, and when building a 5-class
//! > model we replicate samples from the poor class twice and the moderate
//! > and good classes thrice."
//!
//! [`oversample`] takes a per-class replication factor: factor 1 keeps a
//! class as-is, factor `k` makes each of its instances appear `k` times.

use crate::data::{Instance, LearnSet};

/// Replicate instances per class. `factors[c]` is the total number of copies
/// of each class-`c` instance in the output (so 1 = unchanged).
///
/// # Panics
/// Panics if `factors` does not cover all classes or contains a zero.
pub fn oversample(set: &LearnSet, factors: &[usize]) -> LearnSet {
    assert_eq!(factors.len(), usize::from(set.n_classes()), "one factor per class");
    assert!(factors.iter().all(|&f| f >= 1), "factors must be >= 1");
    let mut out: Vec<Instance> = Vec::new();
    for inst in set.instances() {
        // mpa-lint: allow(R7) -- one factor per class is asserted above; labels are < n_classes
        let copies = factors[usize::from(inst.label)];
        for _ in 0..copies {
            out.push(inst.clone());
        }
    }
    set.with_instances(out)
}

/// The paper's 2-class rule: unhealthy (class 1) replicated twice.
pub fn oversample_2class(set: &LearnSet) -> LearnSet {
    assert_eq!(set.n_classes(), 2, "2-class rule on a non-2-class set");
    oversample(set, &[1, 2])
}

/// The paper's 5-class rule: good (1) and moderate (2) replicated thrice,
/// poor (3) twice; excellent (0) and very poor (4) untouched.
pub fn oversample_5class(set: &LearnSet) -> LearnSet {
    assert_eq!(set.n_classes(), 5, "5-class rule on a non-5-class set");
    oversample(set, &[1, 3, 3, 2, 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_with_counts(counts: &[usize]) -> LearnSet {
        let mut instances = Vec::new();
        for (label, &count) in counts.iter().enumerate() {
            for i in 0..count {
                instances.push(Instance {
                    features: vec![(i % 3) as u8],
                    label: label as u8,
                    weight: 1.0,
                });
            }
        }
        LearnSet::new(instances, vec![3], counts.len() as u8)
    }

    #[test]
    fn two_class_rule_doubles_unhealthy() {
        let set = set_with_counts(&[10, 4]);
        let over = oversample_2class(&set);
        assert_eq!(over.class_counts(), vec![10, 8]);
    }

    #[test]
    fn five_class_rule_matches_paper() {
        let set = set_with_counts(&[100, 10, 8, 5, 7]);
        let over = oversample_5class(&set);
        assert_eq!(over.class_counts(), vec![100, 30, 24, 10, 7]);
    }

    #[test]
    fn factor_one_is_identity() {
        let set = set_with_counts(&[3, 3]);
        let over = oversample(&set, &[1, 1]);
        assert_eq!(over.instances(), set.instances());
    }

    #[test]
    #[should_panic(expected = "one factor per class")]
    fn wrong_factor_count_panics() {
        oversample(&set_with_counts(&[2, 2]), &[1]);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_factor_panics() {
        oversample(&set_with_counts(&[2, 2]), &[1, 0]);
    }
}
