//! AdaBoost for multi-class problems (SAMME), §6.1.
//!
//! > "Over many iterations (we use 15) AdaBoost increases (decreases) the
//! > weight of examples that were classified incorrectly (correctly) by the
//! > learner; the final learner (i.e., decision tree) is built from the last
//! > iteration's weighted examples."
//!
//! The paper's variant therefore returns a *single* tree trained on the
//! final weights ([`BoostMode::LastTree`]); the conventional weighted
//! ensemble vote is also provided ([`BoostMode::Ensemble`]) since it is the
//! textbook SAMME formulation.

use crate::data::{Classifier, LearnSet};
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Which final model AdaBoost returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoostMode {
    /// The paper's variant: one tree trained on the last iteration's weights.
    LastTree,
    /// Standard SAMME: weighted vote over all iteration trees.
    Ensemble,
}

/// Boosting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostConfig {
    /// Boosting iterations (the paper uses 15).
    pub iterations: usize,
    /// Mode of the final model.
    pub mode: BoostMode,
    /// Configuration of each weak tree.
    pub tree: TreeConfig,
}

impl Default for BoostConfig {
    fn default() -> Self {
        Self { iterations: 15, mode: BoostMode::LastTree, tree: TreeConfig::default() }
    }
}

/// A trained AdaBoost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaBoost {
    mode: BoostMode,
    n_classes: u8,
    /// `(tree, alpha)` per iteration (Ensemble mode keeps all; LastTree mode
    /// keeps only the final tree with a dummy alpha).
    members: Vec<(DecisionTree, f64)>,
}

impl AdaBoost {
    /// Train with the given configuration.
    pub fn fit(set: &LearnSet, config: BoostConfig) -> Self {
        assert!(!set.is_empty(), "cannot boost an empty dataset");
        assert!(config.iterations >= 1, "need at least one iteration");
        let k = f64::from(set.n_classes());
        let n = set.len();

        let mut work = set.clone();
        let mut weights = vec![1.0 / n as f64; n];
        let mut members: Vec<(DecisionTree, f64)> = Vec::new();

        for _ in 0..config.iterations {
            mpa_obs::counters::BOOST_ROUNDS.incr();
            work.set_weights(&weights);
            let tree = DecisionTree::fit(&work, config.tree);
            let preds = tree.predict_all(&work);
            let err: f64 = work
                .instances()
                .iter()
                .zip(&preds)
                .filter(|(inst, &p)| inst.label != p)
                .map(|(inst, _)| inst.weight)
                .sum::<f64>()
                / work.total_weight();

            // SAMME requires err < 1 − 1/K; a perfect learner ends boosting.
            if err <= 1e-12 {
                mpa_obs::counters::BOOST_EARLY_STOPS.incr();
                members.push((tree, 10.0)); // overwhelming vote
                break;
            }
            if err >= 1.0 - 1.0 / k {
                // Weak learner is no better than chance: stop; keep what we
                // have (or this tree if it is the first).
                mpa_obs::counters::BOOST_EARLY_STOPS.incr();
                if members.is_empty() {
                    members.push((tree, 1.0));
                }
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();

            // Reweight and renormalize.
            for ((w, inst), &p) in weights.iter_mut().zip(work.instances()).zip(&preds) {
                if inst.label != p {
                    *w *= alpha.exp();
                }
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
                // Floor: LearnSet requires strictly positive weights.
                *w = w.max(1e-300);
            }
            members.push((tree, alpha));
        }

        match config.mode {
            BoostMode::Ensemble => {
                Self { mode: BoostMode::Ensemble, n_classes: set.n_classes(), members }
            }
            BoostMode::LastTree => {
                // Train the final tree on the last iteration's weights.
                work.set_weights(&weights);
                let final_tree = DecisionTree::fit(&work, config.tree);
                Self {
                    mode: BoostMode::LastTree,
                    n_classes: set.n_classes(),
                    members: vec![(final_tree, 1.0)],
                }
            }
        }
    }

    /// Train with the default configuration (15 iterations, LastTree mode).
    pub fn fit_default(set: &LearnSet) -> Self {
        Self::fit(set, BoostConfig::default())
    }

    /// Number of member trees (1 in LastTree mode).
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// The mode the model was trained in.
    pub fn mode(&self) -> BoostMode {
        self.mode
    }

    /// Access the final/only tree (useful for rendering Figure 10 from a
    /// boosted model).
    pub fn final_tree(&self) -> &DecisionTree {
        &self.members.last().expect("at least one member").0
    }
}

impl Classifier for AdaBoost {
    fn predict(&self, features: &[u8]) -> u8 {
        match self.mode {
            BoostMode::LastTree => self.members[0].0.predict(features),
            BoostMode::Ensemble => {
                let mut votes = vec![0.0; usize::from(self.n_classes)];
                for (tree, alpha) in &self.members {
                    // mpa-lint: allow(R7) -- trees emit labels < n_classes, the votes vec's length
                    votes[usize::from(tree.predict(features))] += alpha;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty")
                    .0 as u8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;
    use crate::eval::evaluate;

    /// An imbalanced set where the minority class is the *local minority* of
    /// its own pocket: cell (4,4) holds 8 minority and 12 majority instances
    /// with identical features. No tree structure can separate them — only
    /// reweighting can flip the pocket's majority label. This isolates
    /// exactly the mechanism §6.1 relies on: boosting "increases the weight
    /// of examples that were classified incorrectly" until the final tree's
    /// leaf majority changes.
    fn skewed() -> LearnSet {
        let mut instances = Vec::new();
        for a in 0..5u8 {
            for b in 0..5u8 {
                if a == 4 && b == 4 {
                    for i in 0..20u8 {
                        instances.push(Instance {
                            features: vec![a, b],
                            label: u8::from(i < 8),
                            weight: 1.0,
                        });
                    }
                } else {
                    for _ in 0..16u8 {
                        instances.push(Instance { features: vec![a, b], label: 0, weight: 1.0 });
                    }
                }
            }
        }
        LearnSet::new(instances, vec![5, 5], 2)
    }

    #[test]
    fn boosting_recovers_a_pruned_away_minority() {
        let set = skewed();
        let cfg_tree = TreeConfig { alpha_fraction: 0.01, max_depth: 10 };
        let plain = DecisionTree::fit(&set, cfg_tree);
        let plain_eval = evaluate(&plain, &set);
        assert_eq!(
            plain_eval.recall(1),
            0.0,
            "the pocket's local majority is healthy, so a plain tree misses the minority"
        );

        // Boosting upweights the 8 misclassified instances each round until
        // the pocket's *weighted* majority flips in the final tree.
        let boosted = AdaBoost::fit(
            &set,
            BoostConfig { iterations: 15, mode: BoostMode::LastTree, tree: cfg_tree },
        );
        let eval = evaluate(&boosted, &set);
        assert!(eval.recall(1) > 0.9, "boosted recall {}", eval.recall(1));
    }

    #[test]
    fn ensemble_mode_votes() {
        let set = skewed();
        let model = AdaBoost::fit(
            &set,
            BoostConfig {
                iterations: 10,
                mode: BoostMode::Ensemble,
                tree: TreeConfig { alpha_fraction: 0.05, max_depth: 10 },
            },
        );
        assert!(model.n_members() >= 1);
        let eval = evaluate(&model, &set);
        assert!(eval.accuracy() > 0.9, "accuracy {}", eval.accuracy());
    }

    #[test]
    fn perfect_learner_short_circuits() {
        // Perfectly separable: first tree is exact; boosting stops early.
        let instances: Vec<Instance> = (0..40)
            .map(|i| Instance { features: vec![(i % 2) as u8], label: (i % 2) as u8, weight: 1.0 })
            .collect();
        let set = LearnSet::new(instances, vec![2], 2);
        let model = AdaBoost::fit(
            &set,
            BoostConfig {
                iterations: 15,
                mode: BoostMode::Ensemble,
                tree: TreeConfig { alpha_fraction: 0.0, max_depth: 5 },
            },
        );
        assert_eq!(model.n_members(), 1);
        assert_eq!(evaluate(&model, &set).accuracy(), 1.0);
    }

    #[test]
    fn multiclass_boosting() {
        let instances: Vec<Instance> = (0..5u8)
            .flat_map(|a| {
                std::iter::repeat_n(
                    Instance { features: vec![a], label: a.min(2), weight: 1.0 },
                    12,
                )
            })
            .collect();
        let set = LearnSet::new(instances, vec![5], 3);
        let model = AdaBoost::fit_default(&set);
        assert_eq!(evaluate(&model, &set).accuracy(), 1.0);
        assert_eq!(model.mode(), BoostMode::LastTree);
        assert_eq!(model.n_members(), 1);
    }
}
