//! The majority-class baseline (§6.1's comparison predictor: 64.8% accuracy
//! for 2-class health, with "no precision or recall for the unhealthy
//! class").

use crate::data::{Classifier, LearnSet};
use serde::{Deserialize, Serialize};

/// Predicts the training set's (weighted) majority class for every input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MajorityClassifier {
    label: u8,
}

impl MajorityClassifier {
    /// Fit: record the weighted majority class.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(set: &LearnSet) -> Self {
        assert!(!set.is_empty(), "cannot fit on an empty dataset");
        let w = set.class_weights();
        let label = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0 as u8;
        Self { label }
    }

    /// The majority label.
    pub fn label(&self) -> u8 {
        self.label
    }
}

impl Classifier for MajorityClassifier {
    fn predict(&self, _features: &[u8]) -> u8 {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    #[test]
    fn predicts_the_weighted_majority() {
        let set = LearnSet::new(
            vec![
                Instance { features: vec![0], label: 0, weight: 1.0 },
                Instance { features: vec![1], label: 0, weight: 1.0 },
                Instance { features: vec![2], label: 1, weight: 5.0 },
            ],
            vec![3],
            2,
        );
        let m = MajorityClassifier::fit(&set);
        assert_eq!(m.label(), 1, "weight beats count");
        assert_eq!(m.predict(&[0]), 1);
        assert_eq!(m.predict(&[2]), 1);
    }
}
