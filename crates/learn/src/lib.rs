//! # mpa-learn — learning substrate for Management Plane Analytics
//!
//! Everything §6 of the paper needs, implemented from scratch on binned
//! categorical features:
//!
//! * [`data`] — the learning dataset: weighted instances with small
//!   categorical features (the 5-bin discretization of §6.1).
//! * [`tree`] — C4.5-style decision trees: multiway splits chosen by gain
//!   ratio, weighted instances (for boosting), and the paper's α-pruning
//!   ("each branch where the number of data points ... is below a threshold
//!   α is replaced with a leaf", α = 1% of all data). Trees render to text
//!   for Figure 10.
//! * [`boost`] — AdaBoost (multi-class SAMME), 15 iterations; both the
//!   paper's variant (the final tree is trained on the last iteration's
//!   weights) and a conventional ensemble vote.
//! * [`sampling`] — minority-class oversampling (§6.1's replication rules).
//! * [`forest`] — random forests, plus the balanced and weighted variants
//!   the paper's footnote 2 compares against.
//! * [`svm`] — a linear one-vs-rest SVM (Pegasos); the baseline §6.1 found
//!   performs worse than a majority classifier.
//! * [`baseline`] — the majority-class predictor.
//! * [`eval`] — accuracy / per-class precision & recall / confusion
//!   matrices, and seeded k-fold cross-validation.

pub mod baseline;
pub mod boost;
pub mod data;
pub mod eval;
pub mod forest;
pub mod sampling;
pub mod svm;
pub mod tree;

pub use baseline::MajorityClassifier;
pub use boost::{AdaBoost, BoostMode};
pub use data::{Classifier, Instance, LearnSet};
pub use eval::{cross_validate, evaluate, Evaluation};
pub use forest::{ForestConfig, ForestVariant, RandomForest};
pub use sampling::oversample;
pub use svm::LinearSvm;
pub use tree::{DecisionTree, TreeConfig};
