//! C4.5-style decision trees (§6.1).
//!
//! The paper: "we turn to decision tree classifiers (the C4.5 algorithm).
//! Decision trees are better equipped to capture the limited set of
//! unhealthy cases, because they can model arbitrary boundaries between
//! cases. Furthermore, they are intuitive for operators to understand."
//!
//! Implementation notes:
//!
//! * Features are categorical bins → **multiway splits**, one child per bin.
//! * Split selection by **gain ratio** (information gain / split info), the
//!   C4.5 criterion; features with non-positive gain are never split on.
//! * Instances carry **weights** so the same builder serves AdaBoost.
//! * **α-pruning**: a branch reached by less than `alpha_fraction` of the
//!   total training weight becomes a leaf labelled with the majority class
//!   of the data reaching it (the paper sets α = 1 % of all data).
//! * Prediction for a bin never seen during training falls back to the
//!   node's majority class.

use crate::data::{Classifier, LearnSet};
use serde::{Deserialize, Serialize};

/// Tree-building configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Branches reached by less than this fraction of total training weight
    /// are pruned to leaves (the paper's α = 0.01).
    pub alpha_fraction: f64,
    /// Hard depth cap (safety net; the α rule terminates long before).
    pub max_depth: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { alpha_fraction: 0.01, max_depth: 30 }
    }
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: u8,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: u8,
    },
    Split {
        feature: usize,
        /// Majority label at this node (fallback for unseen bins).
        majority: u8,
        /// One child per feature bin.
        children: Vec<Node>,
    },
}

impl DecisionTree {
    /// Train on a weighted dataset.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(set: &LearnSet, config: TreeConfig) -> Self {
        assert!(!set.is_empty(), "cannot train a tree on an empty dataset");
        let indices: Vec<usize> = (0..set.len()).collect();
        let min_weight = config.alpha_fraction * set.total_weight();
        let root = build(set, &indices, min_weight, config.max_depth);
        Self { root, n_classes: set.n_classes() }
    }

    /// Train with the default configuration (α = 1 %).
    pub fn fit_default(set: &LearnSet) -> Self {
        Self::fit(set, TreeConfig::default())
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> u8 {
        self.n_classes
    }

    /// Total node count (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => 1 + children.iter().map(count).sum::<usize>(),
            }
        }
        count(&self.root)
    }

    /// Maximum depth (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { children, .. } => {
                    1 + children.iter().map(depth).max().unwrap_or(0)
                }
            }
        }
        depth(&self.root)
    }

    /// The feature index at the root split, if the tree is not a single leaf.
    /// §6.2: "the management practice with the strongest statistical
    /// dependence ... is the root of the tree".
    pub fn root_feature(&self) -> Option<usize> {
        match &self.root {
            Node::Leaf { .. } => None,
            Node::Split { feature, .. } => Some(*feature),
        }
    }

    /// Render the top `depth_limit` levels as indented text (Figure 10).
    /// `feature_names` and `class_names` give human-readable labels.
    pub fn render(&self, depth_limit: usize, feature_names: &[&str], class_names: &[&str]) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, depth_limit, feature_names, class_names, &mut out, "");
        out
    }
}

fn render_node(
    node: &Node,
    depth: usize,
    limit: usize,
    features: &[&str],
    classes: &[&str],
    out: &mut String,
    prefix: &str,
) {
    match node {
        Node::Leaf { label } => {
            out.push_str(&format!("{prefix}→ {}\n", classes[usize::from(*label)]));
        }
        Node::Split { feature, majority, children } => {
            if depth >= limit {
                out.push_str(&format!(
                    "{prefix}[{}] … (subtree elided; majority {})\n",
                    features[*feature],
                    classes[usize::from(*majority)]
                ));
                return;
            }
            out.push_str(&format!("{prefix}[{}]\n", features[*feature]));
            let bins = ["very low", "low", "medium", "high", "very high"];
            for (bin, child) in children.iter().enumerate() {
                let bin_name = bins.get(bin).copied().unwrap_or("bin");
                out.push_str(&format!("{prefix}  {bin_name}:\n"));
                render_node(child, depth + 1, limit, features, classes, out, &format!("{prefix}    "));
            }
        }
    }
}

/// Weighted majority label among `indices`.
fn majority(set: &LearnSet, indices: &[usize]) -> u8 {
    let mut w = vec![0.0; usize::from(set.n_classes())];
    for &i in indices {
        let inst = &set.instances()[i];
        // mpa-lint: allow(R7) -- instance labels are < n_classes, the weight vec's length
        w[usize::from(inst.label)] += inst.weight;
    }
    w.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("at least one class")
        .0 as u8
}

/// Weighted Shannon entropy (nats would do; bits for consistency).
fn entropy_of(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.log2()
        })
        .sum()
}

fn node_entropy(set: &LearnSet, indices: &[usize]) -> f64 {
    let mut w = vec![0.0; usize::from(set.n_classes())];
    for &i in indices {
        let inst = &set.instances()[i];
        // mpa-lint: allow(R7) -- instance labels are < n_classes, the weight vec's length
        w[usize::from(inst.label)] += inst.weight;
    }
    entropy_of(&w)
}

/// Gain ratio of splitting `indices` on `feature`; `None` when the split is
/// degenerate (single populated bin or non-positive gain).
fn gain_ratio(set: &LearnSet, indices: &[usize], feature: usize) -> Option<f64> {
    let arity = usize::from(set.feature_arity()[feature]);
    let n_classes = usize::from(set.n_classes());
    let mut bin_class = vec![vec![0.0; n_classes]; arity];
    let mut bin_w = vec![0.0; arity];
    let mut total = 0.0;
    for &i in indices {
        let inst = &set.instances()[i];
        let b = usize::from(inst.features[feature]);
        // mpa-lint: allow(R7) -- b < the feature's arity and labels are < n_classes, the table's dimensions
        bin_class[b][usize::from(inst.label)] += inst.weight;
        bin_w[b] += inst.weight;
        total += inst.weight;
    }
    let populated = bin_w.iter().filter(|&&w| w > 0.0).count();
    if populated < 2 || total <= 0.0 {
        return None;
    }
    let parent = {
        let mut w = vec![0.0; n_classes];
        for bc in &bin_class {
            for (a, b) in w.iter_mut().zip(bc) {
                *a += b;
            }
        }
        entropy_of(&w)
    };
    let children: f64 =
        bin_w.iter().zip(&bin_class).map(|(&w, bc)| w / total * entropy_of(bc)).sum();
    let gain = parent - children;
    if gain <= 1e-12 {
        return None;
    }
    let split_info = entropy_of(&bin_w);
    if split_info <= 1e-12 {
        return None;
    }
    Some(gain / split_info)
}

fn build(set: &LearnSet, indices: &[usize], min_weight: f64, depth_left: usize) -> Node {
    let maj = majority(set, indices);
    let weight: f64 = indices.iter().map(|&i| set.instances()[i].weight).sum();

    // α-pruning and stopping rules.
    if depth_left == 0 || weight < min_weight || node_entropy(set, indices) <= 1e-12 {
        return Node::Leaf { label: maj };
    }

    // Best feature by gain ratio.
    let best = (0..set.n_features())
        .filter_map(|f| gain_ratio(set, indices, f).map(|g| (f, g)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    let Some((feature, _)) = best else {
        return Node::Leaf { label: maj };
    };

    let arity = usize::from(set.feature_arity()[feature]);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); arity];
    for &i in indices {
        // mpa-lint: allow(R7) -- feature values are < the feature's arity, the buckets vec's length
        buckets[usize::from(set.instances()[i].features[feature])].push(i);
    }
    let children = buckets
        .iter()
        .map(|bucket| {
            if bucket.is_empty() {
                Node::Leaf { label: maj }
            } else {
                build(set, bucket, min_weight, depth_left - 1)
            }
        })
        .collect();
    Node::Split { feature, majority: maj, children }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[u8]) -> u8 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split { feature, majority, children } => {
                    let b = usize::from(features[*feature]);
                    match children.get(b) {
                        Some(child) => node = child,
                        None => return *majority,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    fn set_from(rows: &[(&[u8], u8)], arity: Vec<u8>, n_classes: u8) -> LearnSet {
        LearnSet::new(
            rows.iter()
                .map(|(f, l)| Instance { features: f.to_vec(), label: *l, weight: 1.0 })
                .collect(),
            arity,
            n_classes,
        )
    }

    #[test]
    fn learns_a_single_feature_rule() {
        let rows: Vec<(Vec<u8>, u8)> =
            (0..5u8).flat_map(|a| (0..5u8).map(move |b| (vec![a, b], u8::from(a >= 3)))).collect();
        let refs: Vec<(&[u8], u8)> = rows.iter().map(|(f, l)| (f.as_slice(), *l)).collect();
        let set = set_from(&refs, vec![5, 5], 2);
        let tree = DecisionTree::fit(&set, TreeConfig { alpha_fraction: 0.0, max_depth: 10 });
        assert_eq!(tree.root_feature(), Some(0), "feature 0 is the informative one");
        for inst in set.instances() {
            assert_eq!(tree.predict(&inst.features), inst.label);
        }
    }

    #[test]
    fn learns_a_conjunction_which_needs_two_levels() {
        // label = (a == 1 && b == 1). Unlike XOR, each feature has positive
        // marginal gain (a true C4.5 can never split on zero-gain XOR), but
        // no single split suffices.
        let rows: Vec<(Vec<u8>, u8)> = (0..2u8)
            .flat_map(|a| (0..2u8).map(move |b| (vec![a, b], a & b)))
            .flat_map(|r| std::iter::repeat_n(r, 10))
            .collect();
        let refs: Vec<(&[u8], u8)> = rows.iter().map(|(f, l)| (f.as_slice(), *l)).collect();
        let set = set_from(&refs, vec![2, 2], 2);
        let tree = DecisionTree::fit(&set, TreeConfig { alpha_fraction: 0.0, max_depth: 10 });
        for inst in set.instances() {
            assert_eq!(tree.predict(&inst.features), inst.label, "{:?}", inst.features);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn c45_cannot_split_on_pure_xor() {
        // Documents the classic C4.5 behaviour: XOR has zero marginal gain
        // for every feature, so the root never splits.
        let rows: Vec<(Vec<u8>, u8)> = (0..2u8)
            .flat_map(|a| (0..2u8).map(move |b| (vec![a, b], a ^ b)))
            .flat_map(|r| std::iter::repeat_n(r, 10))
            .collect();
        let refs: Vec<(&[u8], u8)> = rows.iter().map(|(f, l)| (f.as_slice(), *l)).collect();
        let set = set_from(&refs, vec![2, 2], 2);
        let tree = DecisionTree::fit(&set, TreeConfig { alpha_fraction: 0.0, max_depth: 10 });
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn alpha_pruning_stops_splitting_small_branches() {
        // Bin 4 of feature 0 holds 10 instances (6 label-1, 4 label-0,
        // separable by feature 1). With α = 5% of 200 = weight 10... set
        // α = 10% so the 10-instance branch is below threshold: it becomes
        // a leaf labelled with *its own* majority (the paper: "a leaf whose
        // label is the majority class among the data points reaching that
        // leaf"), not the global majority.
        // Majority mass alternates feature 1 so it carries no gain at the
        // root (otherwise the tree may legitimately split on it first).
        let mut rows: Vec<(Vec<u8>, u8)> =
            (0..190).map(|i| (vec![0u8, (i % 2) as u8], 0u8)).collect();
        for i in 0..10u8 {
            // feature1 = 1 → label 1 (6 of them); feature1 = 0 → label 0 (4).
            let f1 = u8::from(i < 6);
            rows.push((vec![4, f1], f1));
        }
        let refs: Vec<(&[u8], u8)> = rows.iter().map(|(f, l)| (f.as_slice(), *l)).collect();
        let set = set_from(&refs, vec![5, 2], 2);

        let pruned = DecisionTree::fit(&set, TreeConfig { alpha_fraction: 0.1, max_depth: 10 });
        // The small branch may not be refined: both feature-1 values predict
        // the branch majority (label 1).
        assert_eq!(pruned.predict(&[4, 0]), 1, "pruned to branch majority");
        assert_eq!(pruned.predict(&[4, 1]), 1);

        let unpruned = DecisionTree::fit(&set, TreeConfig { alpha_fraction: 0.0, max_depth: 10 });
        assert_eq!(unpruned.predict(&[4, 0]), 0, "unpruned tree refines the branch");
        assert_eq!(unpruned.predict(&[4, 1]), 1);
        assert!(pruned.n_nodes() < unpruned.n_nodes());
    }

    #[test]
    fn respects_instance_weights() {
        // Two contradictory labelings of the same feature value; weights
        // decide the majority.
        let set = LearnSet::new(
            vec![
                Instance { features: vec![0], label: 0, weight: 1.0 },
                Instance { features: vec![0], label: 1, weight: 10.0 },
            ],
            vec![2],
            2,
        );
        let tree = DecisionTree::fit_default(&set);
        assert_eq!(tree.predict(&[0]), 1);
    }

    #[test]
    fn pure_node_is_a_leaf() {
        let set = set_from(&[(&[0u8][..], 1), (&[1u8][..], 1), (&[2u8][..], 1)], vec![3], 2);
        let tree = DecisionTree::fit_default(&set);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[2]), 1);
    }

    #[test]
    fn render_shows_feature_names_and_elides_deep_levels() {
        let rows: Vec<(Vec<u8>, u8)> = (0..3u8)
            .flat_map(|a| (0..3u8).map(move |b| (vec![a, b], u8::from(a == 2 && b == 2))))
            .flat_map(|r| std::iter::repeat_n(r, 5))
            .collect();
        let refs: Vec<(&[u8], u8)> = rows.iter().map(|(f, l)| (f.as_slice(), *l)).collect();
        let set = set_from(&refs, vec![3, 3], 2);
        let tree = DecisionTree::fit(&set, TreeConfig { alpha_fraction: 0.0, max_depth: 10 });
        let text = tree.render(1, &["No. of devices", "No. of roles"], &["healthy", "unhealthy"]);
        assert!(text.contains("No. of devices") || text.contains("No. of roles"), "{text}");
        assert!(text.contains("elided") || text.lines().count() > 3);
    }

    #[test]
    fn multiclass_prediction() {
        let rows: Vec<(Vec<u8>, u8)> =
            (0..4u8).flat_map(|a| std::iter::repeat_n((vec![a], a), 20)).collect();
        let refs: Vec<(&[u8], u8)> = rows.iter().map(|(f, l)| (f.as_slice(), *l)).collect();
        let set = set_from(&refs, vec![4], 4);
        let tree = DecisionTree::fit_default(&set);
        for c in 0..4u8 {
            assert_eq!(tree.predict(&[c]), c);
        }
    }
}
