//! Linear SVM baseline (Pegasos), §6.1.
//!
//! "An intuitive place to start is support vector machines ... However, we
//! found the SVMs performed worse than a simple majority classifier. This
//! is due to unhealthy cases being concentrated in a small part of the
//! management practice space." — the benches reproduce that comparison.
//!
//! Features are one-hot encoded (bin b of feature j → one indicator), which
//! is the honest linear treatment of categorical bins; multi-class is
//! one-vs-rest with the margin argmax.

use crate::data::{Classifier, LearnSet};
use mpa_stats::Sampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SVM training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Regularization parameter λ of Pegasos.
    pub lambda: f64,
    /// Number of stochastic iterations (per class).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-4, iterations: 50_000, seed: 0x53564D }
    }
}

/// A trained linear one-vs-rest SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// One weight vector (plus bias as last element) per class.
    weights: Vec<Vec<f64>>,
    /// Offsets of each feature's one-hot block.
    offsets: Vec<usize>,
    dim: usize,
}

impl LinearSvm {
    /// Train with the given configuration.
    pub fn fit(set: &LearnSet, config: SvmConfig) -> Self {
        assert!(!set.is_empty(), "cannot train an SVM on an empty dataset");
        let mut offsets = Vec::with_capacity(set.n_features());
        let mut dim = 0usize;
        for &a in set.feature_arity() {
            offsets.push(dim);
            dim += usize::from(a);
        }

        let n = set.len();
        let mut weights = Vec::with_capacity(usize::from(set.n_classes()));
        for class in 0..set.n_classes() {
            let mut rng = StdRng::seed_from_u64(config.seed ^ u64::from(class));
            let mut s = Sampler::new(&mut rng);
            let mut w = vec![0.0; dim + 1]; // +1 bias
            for t in 1..=config.iterations {
                let i = s.uniform_range(0, n as u64 - 1) as usize;
                let inst = &set.instances()[i];
                let y = if inst.label == class { 1.0 } else { -1.0 };
                let eta = 1.0 / (config.lambda * t as f64);
                // margin = w·x + b over the active one-hot indices.
                let mut margin = w[dim];
                for (j, &v) in inst.features.iter().enumerate() {
                    // mpa-lint: allow(R7) -- offsets[j] + v indexes feature j's one-hot block; v < its arity by encoding
                    margin += w[offsets[j] + usize::from(v)];
                }
                // Regularization shrink (not applied to bias).
                let shrink = 1.0 - eta * config.lambda;
                for wj in w[..dim].iter_mut() {
                    *wj *= shrink;
                }
                if y * margin < 1.0 {
                    for (j, &v) in inst.features.iter().enumerate() {
                        // mpa-lint: allow(R7) -- offsets[j] + v indexes feature j's one-hot block; v < its arity by encoding
                        w[offsets[j] + usize::from(v)] += eta * y;
                    }
                    w[dim] += eta * y * 0.1; // damped bias update
                }
            }
            weights.push(w);
        }
        Self { weights, offsets, dim }
    }

    /// Train with defaults.
    pub fn fit_default(set: &LearnSet) -> Self {
        Self::fit(set, SvmConfig::default())
    }

    fn margin(&self, class: usize, features: &[u8]) -> f64 {
        let w = &self.weights[class];
        let mut m = w[self.dim];
        for (j, &v) in features.iter().enumerate() {
            // mpa-lint: allow(R7) -- offsets[j] + v indexes feature j's one-hot block; v < its arity by encoding
            m += w[self.offsets[j] + usize::from(v)];
        }
        m
    }
}

impl Classifier for LinearSvm {
    fn predict(&self, features: &[u8]) -> u8 {
        (0..self.weights.len())
            .max_by(|&a, &b| {
                self.margin(a, features).total_cmp(&self.margin(b, features))
            })
            .expect("at least one class") as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;
    use crate::eval::evaluate;

    #[test]
    fn learns_a_linearly_separable_rule() {
        let instances: Vec<Instance> = (0..5u8)
            .flat_map(|a| {
                std::iter::repeat_n(
                    Instance { features: vec![a], label: u8::from(a >= 3), weight: 1.0 },
                    20,
                )
            })
            .collect();
        let set = LearnSet::new(instances, vec![5], 2);
        let svm = LinearSvm::fit(&set, SvmConfig { iterations: 20_000, ..SvmConfig::default() });
        let ev = evaluate(&svm, &set);
        assert!(ev.accuracy() > 0.95, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let instances: Vec<Instance> = (0..3u8)
            .flat_map(|a| {
                std::iter::repeat_n(Instance { features: vec![a, a], label: a, weight: 1.0 }, 30)
            })
            .collect();
        let set = LearnSet::new(instances, vec![3, 3], 3);
        let svm = LinearSvm::fit_default(&set);
        let ev = evaluate(&svm, &set);
        assert!(ev.accuracy() > 0.95, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn struggles_when_minority_is_a_small_pocket() {
        // The paper's observation: a linear separator cannot carve out a
        // small pocket of unhealthy cases inside the healthy mass. The
        // pocket (f0=2, f1=2 exactly) is not linearly separable from its
        // neighbours in one-hot space with a dominant majority.
        let mut instances = Vec::new();
        for a in 0..5u8 {
            for b in 0..5u8 {
                let minority = a == 2 && b == 2;
                for _ in 0..(if minority { 3 } else { 20 }) {
                    instances.push(Instance {
                        features: vec![a, b],
                        label: u8::from(minority),
                        weight: 1.0,
                    });
                }
            }
        }
        let set = LearnSet::new(instances, vec![5, 5], 2);
        let svm = LinearSvm::fit_default(&set);
        let ev = evaluate(&svm, &set);
        assert!(
            ev.recall(1) < 0.5,
            "linear model should miss most of the pocket, recall {}",
            ev.recall(1)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let instances: Vec<Instance> = (0..40)
            .map(|i| Instance { features: vec![(i % 5) as u8], label: (i % 2) as u8, weight: 1.0 })
            .collect();
        let set = LearnSet::new(instances, vec![5], 2);
        let cfg = SvmConfig { iterations: 5_000, ..SvmConfig::default() };
        assert_eq!(LinearSvm::fit(&set, cfg), LinearSvm::fit(&set, cfg));
    }
}
