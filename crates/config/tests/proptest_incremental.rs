//! Property-based oracle equivalence for delta-native inference: on
//! arbitrary snapshot histories — both dialects, reverts to earlier
//! states, trailing-newline variants, unparseable states mixed in — the
//! incremental engine must classify every state's parseability exactly as
//! the full parser does, assemble identical parsed configs for parseable
//! states, and emit stanza changes identical to `diff_configs` over the
//! full parses for every adjacent parseable pair.

use mpa_config::snapshot::{Login, Snapshot, SnapshotMeta};
use mpa_config::{diff_configs, parse_config, DeltaInference, LineClasses, SnapshotArchive};
use mpa_model::device::Dialect;
use mpa_model::{DeviceId, Timestamp};
use proptest::prelude::*;

/// A config-shaped line for the block-keyword dialect: headers, bodies,
/// comments, hostname declarations (including the bare reset) and blanks.
/// Random draws produce a healthy mix of parseable states and full-parser
/// errors (orphan indents, missing hostname) — both regimes must agree.
fn arb_block_line() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u8..3).prop_map(|i| format!("hostname h{i}")),
        Just("hostname".to_string()),
        (0u8..4).prop_map(|i| format!("interface eth{i}")),
        (0u8..4).prop_map(|i| format!(" description d{i}")),
        (0u8..2).prop_map(|i| format!("ip access-list acl{i}")),
        (0u8..4).prop_map(|i| format!(" permit 10.0.0.{i}")),
        Just("!".to_string()),
        Just(String::new()),
    ]
}

/// A brace-dialect fragment: balanced stanzas most of the time, plus
/// stray open/close noise so unparseable states (unbalanced braces,
/// missing hostname) are exercised too.
fn arb_brace_fragment() -> impl Strategy<Value = Vec<String>> {
    prop_oneof![
        (0u8..6).prop_map(|i| {
            vec!["system {".to_string(), format!("host-name h{};", i % 3), "}".to_string()]
        }),
        (0u8..8, 0u8..4).prop_map(|(i, u)| {
            vec![format!("eth{} {{", i % 4), format!("unit {u};"), "}".to_string()]
        }),
        Just(vec![String::new()]),
        Just(vec!["}".to_string()]),
        Just(vec!["interfaces {".to_string()]),
    ]
}

fn join(lines: Vec<String>, trail: bool) -> String {
    let mut t = lines.join("\n");
    if trail && !t.is_empty() {
        t.push('\n');
    }
    t
}

fn arb_block_text() -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_block_line(), 0..12), any::<bool>())
        .prop_map(|(lines, trail)| join(lines, trail))
}

fn arb_brace_text() -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_brace_fragment(), 0..5), any::<bool>())
        .prop_map(|(frags, trail)| join(frags.into_iter().flatten().collect(), trail))
}

/// The oracle check: push `history` for one device, replay it through the
/// delta engine, and compare every judgement against the full parser.
fn assert_matches_oracle(dialect: Dialect, history: &[String]) {
    let mut archive = SnapshotArchive::new();
    for (i, text) in history.iter().enumerate() {
        archive
            .push(Snapshot {
                meta: SnapshotMeta {
                    device: DeviceId(1),
                    time: Timestamp(i as u64),
                    login: Login::new("p"),
                },
                text: text.clone(),
            })
            .unwrap();
    }
    let classes = LineClasses::new(&archive);
    let mut engine = DeltaInference::new(&archive, &classes);
    let replay = engine.replay_device(DeviceId(1), dialect).expect("device has snapshots");
    assert_eq!(replay.n_snapshots(), history.len());

    let oracle: Vec<_> = history.iter().map(|t| parse_config(t, dialect).ok()).collect();
    for (ix, parse) in oracle.iter().enumerate() {
        let slot = replay.slot(ix);
        assert_eq!(
            replay.parseable(slot),
            parse.is_some(),
            "snapshot {ix} parseability diverged: {:?}",
            history[ix]
        );
        if let Some(parse) = parse {
            let assembled = engine.state_config(&replay, slot).expect("parseable");
            assert_eq!(&assembled, parse, "snapshot {ix} assembled config diverged");
        }
    }

    // Adjacent parseable pairs, bridging over unparseable snapshots —
    // the exact walk the pipeline's change-record loop performs.
    let mut prev: Option<usize> = None;
    for ix in 0..history.len() {
        if oracle[ix].is_none() {
            continue;
        }
        if let Some(pi) = prev {
            let expected =
                diff_configs(oracle[pi].as_ref().unwrap(), oracle[ix].as_ref().unwrap());
            let got = engine.stanza_changes(&replay, replay.slot(pi), replay.slot(ix));
            assert_eq!(got, expected, "changes {pi} -> {ix} diverged");
        }
        prev = Some(ix);
    }
}

/// Texts plus reverts to earlier states: reverts are where state dedup
/// and empty diffs between distinct snapshots actually fire.
fn with_reverts(texts: Vec<String>, reverts: Vec<usize>) -> Vec<String> {
    let mut history = texts.clone();
    history.extend(reverts.iter().map(|&r| texts[r % texts.len()].clone()));
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn block_histories_match_full_parse_oracle(
        texts in proptest::collection::vec(arb_block_text(), 1..8),
        reverts in proptest::collection::vec(0usize..8, 0..5),
    ) {
        assert_matches_oracle(Dialect::BlockKeyword, &with_reverts(texts, reverts));
    }

    #[test]
    fn brace_histories_match_full_parse_oracle(
        texts in proptest::collection::vec(arb_brace_text(), 1..8),
        reverts in proptest::collection::vec(0usize..8, 0..5),
    ) {
        assert_matches_oracle(Dialect::BraceHierarchy, &with_reverts(texts, reverts));
    }

    #[test]
    fn trailing_newline_only_edits_are_no_ops(
        lines in proptest::collection::vec(arb_block_line(), 1..8),
    ) {
        // "a\nb" and "a\nb\n" are distinct states (different byte length)
        // with identical parses: the engine must keep them in separate
        // dedup slots yet report an empty diff between them.
        let bare = join(lines, false);
        let with_nl = format!("{bare}\n");
        assert_matches_oracle(Dialect::BlockKeyword, &[bare, with_nl]);
    }
}
