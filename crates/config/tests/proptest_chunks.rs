//! Property tests for the chunk decomposition (`mpa_config::chunk`): over
//! arbitrary mutation sequences in both dialects,
//!
//! * concatenating `render_chunk` over `chunk_keys` equals `render_config`
//!   byte for byte (the two paths share the per-chunk renderers, so this
//!   pins the enumeration order and exhaustiveness);
//! * `chunk_keys` stays strictly sorted (document order = key order);
//! * re-rendering only the chunks the `mark_*` helpers flag for each edit
//!   — the delta-native generator's exact bookkeeping — reproduces the
//!   full render (i.e. the dirty sets are *complete*; over-approximation
//!   is allowed, under-approximation would desynchronize `--gen-mode
//!   delta`).

use mpa_config::chunk::{self, chunk_keys, render_chunk, ChunkKey};
use mpa_config::render::render_config;
use mpa_config::semantic::{AclRule, DeviceConfig};
use mpa_model::device::Dialect;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One step of an arbitrary edit script. Mirrors the op mix of the
/// simulator (`mpa_synth::ops::apply_op`) including the item-creating
/// variants, with small item spaces so creations, edits and deletions of
/// the *same* item happen often.
#[derive(Debug, Clone)]
enum Edit {
    Describe(u16, u8),
    Mtu(u16, bool),
    AssignVlan(u16, u16),
    RemoveVlan(u16),
    AclRule(u8, u16, bool),
    AclApply(u16, u8),
    PoolMember(u8, u8, bool),
    User(u8, bool),
    Bgp(u8, bool),
    Ospf(u8),
    Sflow(u16),
    Qos(u8),
    Enabled(u16, bool),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    let port = 1u16..6;
    prop_oneof![
        (port.clone(), 0u8..=255).prop_map(|(p, d)| Edit::Describe(p, d)),
        (port.clone(), any::<bool>()).prop_map(|(p, up)| Edit::Mtu(p, up)),
        (port.clone(), 10u16..14).prop_map(|(p, v)| Edit::AssignVlan(p, v)),
        (10u16..14).prop_map(Edit::RemoveVlan),
        (0u8..3, 1u16..1024, any::<bool>()).prop_map(|(a, pt, ok)| Edit::AclRule(a, pt, ok)),
        (port.clone(), 0u8..3).prop_map(|(p, a)| Edit::AclApply(p, a)),
        (0u8..2, 0u8..4, any::<bool>()).prop_map(|(pl, m, add)| Edit::PoolMember(pl, m, add)),
        (0u8..3, any::<bool>()).prop_map(|(u, add)| Edit::User(u, add)),
        (0u8..3, any::<bool>()).prop_map(|(n, add)| Edit::Bgp(n, add)),
        (0u8..4).prop_map(Edit::Ospf),
        (256u16..4096).prop_map(Edit::Sflow),
        (0u8..64).prop_map(Edit::Qos),
        (port, any::<bool>()).prop_map(|(p, e)| Edit::Enabled(p, e)),
    ]
}

/// Apply one edit, inserting the affected chunk keys into `dirty` via the
/// same `mark_*` calls the simulator makes.
fn apply_edit(cfg: &mut DeviceConfig, e: &Edit, dirty: &mut BTreeSet<ChunkKey>) {
    let d = cfg.dialect;
    match e {
        Edit::Describe(p, txt) => {
            cfg.set_description(*p, format!("desc {txt}"));
            chunk::mark_iface(d, *p, dirty);
        }
        Edit::Mtu(p, up) => {
            cfg.set_mtu(*p, if *up { 9000 } else { 1500 });
            chunk::mark_iface(d, *p, dirty);
        }
        Edit::AssignVlan(p, v) => {
            let old = cfg.interfaces.get(p).and_then(|i| i.access_vlan);
            cfg.assign_interface_vlan(*p, *v);
            chunk::mark_iface(d, *p, dirty);
            chunk::mark_vlan(d, *v, dirty);
            if let Some(old) = old {
                chunk::mark_vlan(d, old, dirty);
            }
        }
        Edit::RemoveVlan(v) => {
            let members = cfg.vlan_members(*v);
            cfg.remove_vlan(*v);
            chunk::mark_vlan(d, *v, dirty);
            for p in members {
                chunk::mark_iface(d, p, dirty);
            }
        }
        Edit::AclRule(a, port, permit) => {
            let name = format!("acl{a}");
            cfg.acl_add_rule(
                &name,
                AclRule { permit: *permit, protocol: "tcp".into(), port: *port },
            );
            chunk::mark_acl(d, &name, dirty);
        }
        Edit::AclApply(p, a) => {
            let name = format!("acl{a}");
            cfg.acl_add_rule(&name, AclRule { permit: true, protocol: "udp".into(), port: 53 });
            chunk::mark_acl(d, &name, dirty);
            cfg.apply_acl(*p, &name);
            chunk::mark_iface(d, *p, dirty);
        }
        Edit::PoolMember(pl, m, add) => {
            let name = format!("pool{pl}");
            cfg.add_pool(&name, "http");
            let member = format!("10.0.0.{m}:80");
            if *add {
                cfg.pool_add_member(&name, &member);
            } else {
                cfg.pool_remove_member(&name, &member);
            }
            chunk::mark_pool(d, &name, dirty);
        }
        Edit::User(u, add) => {
            let name = format!("user{u}");
            if *add {
                cfg.add_user(&name, "operator");
            } else {
                cfg.remove_user(&name);
            }
            chunk::mark_user(d, &name, dirty);
        }
        Edit::Bgp(n, add) => {
            let ip = format!("10.9.0.{n}");
            if *add {
                cfg.bgp_add_neighbor(65000, &ip, 65001 + *n as u32);
            } else {
                cfg.bgp_remove_neighbor(&ip);
            }
            chunk::mark_bgp(d, dirty);
        }
        Edit::Ospf(n) => {
            cfg.ospf_advertise(1, &format!("10.{n}.0.0/16"));
            chunk::mark_ospf(d, dirty);
        }
        Edit::Sflow(rate) => {
            cfg.set_sflow("192.0.2.9", *rate as u32);
            chunk::mark_sflow(d, dirty);
        }
        Edit::Qos(dscp) => {
            cfg.set_qos_class("voice", *dscp % 64);
            chunk::mark_qos(d, "voice", dirty);
        }
        Edit::Enabled(p, en) => {
            cfg.set_enabled(*p, *en);
            chunk::mark_iface(d, *p, dirty);
        }
    }
}

fn concat_chunks(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    for key in chunk_keys(cfg) {
        render_chunk(cfg, &key, &mut out);
    }
    out
}

/// The live-document model the delta generator maintains: a sorted map of
/// chunk key → current text, updated by re-rendering dirty keys only.
fn flush(cfg: &DeviceConfig, dirty: &mut BTreeSet<ChunkKey>, doc: &mut BTreeMap<ChunkKey, String>) {
    for key in std::mem::take(dirty) {
        let mut text = String::new();
        render_chunk(cfg, &key, &mut text);
        if text.is_empty() {
            doc.remove(&key);
        } else {
            doc.insert(key, text);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn chunk_concat_and_dirty_tracking_match_full_render(
        dialect_brace in any::<bool>(),
        edits in proptest::collection::vec(arb_edit(), 0..40),
    ) {
        let dialect = if dialect_brace { Dialect::BraceHierarchy } else { Dialect::BlockKeyword };
        let mut cfg = DeviceConfig::new("prop-dev", dialect);

        // Live document seeded from the initial full decomposition.
        let mut doc: BTreeMap<ChunkKey, String> = BTreeMap::new();
        let mut dirty: BTreeSet<ChunkKey> = chunk_keys(&cfg).into_iter().collect();
        flush(&cfg, &mut dirty, &mut doc);

        for edit in &edits {
            apply_edit(&mut cfg, edit, &mut dirty);

            // Enumeration stays sorted and exhaustive after every edit.
            let keys = chunk_keys(&cfg);
            prop_assert!(keys.windows(2).all(|w| w[0] < w[1]), "chunk_keys not sorted");
            let full = render_config(&cfg);
            prop_assert_eq!(&concat_chunks(&cfg), &full, "chunk concat != full render");

            // Dirty-tracked incremental document equals the full render.
            flush(&cfg, &mut dirty, &mut doc);
            let incremental: String = doc.values().map(String::as_str).collect();
            prop_assert_eq!(&incremental, &full, "dirty set was incomplete for {:?}", edit);

            // Self-delimitation: non-empty chunks end with one newline and
            // contain no blank lines, so per-chunk splitting is safe.
            for text in doc.values() {
                prop_assert!(text.ends_with('\n'));
                prop_assert!(!text.contains("\n\n"));
            }
        }
    }
}
