//! Sharded-merge equivalence: `SnapshotArchive::merge_all` (table union +
//! parallel id remap) must yield an archive **byte-identical** to folding
//! the sequential two-archive `merge` over the same shards, at every
//! worker-thread count — same device texts, same `total_bytes`, same serde
//! encoding (which pins the global line table's id assignment, not just
//! the reconstructed text).
//!
//! One test function: the thread count is process-global, so sweeping
//! 1/2/8 inside a single test avoids races with a concurrent harness.

use mpa_config::snapshot::{Login, Snapshot, SnapshotMeta};
use mpa_config::SnapshotArchive;
use mpa_model::{DeviceId, Timestamp};

/// A deterministic fleet of device-disjoint shard archives with heavy
/// cross-shard line overlap (shared boilerplate) plus per-shard and
/// per-device unique lines, including multi-snapshot histories and a
/// revert to an earlier state.
fn make_shards(n_shards: u32, devices_per_shard: u32) -> Vec<SnapshotArchive> {
    let mut shards = Vec::new();
    for s in 0..n_shards {
        let mut a = SnapshotArchive::new();
        for d in 0..devices_per_shard {
            let dev = DeviceId(s * devices_per_shard + d);
            let base = format!(
                "hostname h{s}-{d}\n!\nshared boilerplate\ncommon line\nshard {s} local\n!\n"
            );
            let edited = format!("{base}vlan {d}\n name v{d}\n!\n");
            a.push(snap(dev, 0, "alice", &base)).unwrap();
            a.push(snap(dev, 10, "bob", &edited)).unwrap();
            // Exact revert to the base state (a real archive shape the
            // delta encoding must survive through the remap).
            a.push(snap(dev, 20, "alice", &base)).unwrap();
        }
        shards.push(a);
    }
    shards
}

fn snap(dev: DeviceId, t: u64, login: &str, text: &str) -> Snapshot {
    Snapshot {
        meta: SnapshotMeta { device: dev, time: Timestamp(t), login: Login::new(login) },
        text: text.to_string(),
    }
}

#[test]
fn merge_all_is_byte_identical_to_sequential_merge_at_1_2_and_8_threads() {
    let shards = make_shards(7, 3);

    // Reference: the sequential fold the scenario generator used to run.
    let mut sequential = SnapshotArchive::new();
    for shard in shards.clone() {
        sequential.merge(shard);
    }
    let sequential_json = serde_json::to_string(&sequential).expect("serializes");

    let saved = mpa_exec::threads();
    for threads in [1usize, 2, 8] {
        mpa_exec::set_threads(threads);
        let merged = SnapshotArchive::merge_all(shards.clone());

        assert_eq!(merged, sequential, "structural divergence at {threads} threads");
        assert_eq!(merged.n_snapshots(), sequential.n_snapshots());
        assert_eq!(merged.total_bytes(), sequential.total_bytes());
        assert_eq!(merged.text_bytes(), sequential.text_bytes());
        for dev in sequential.devices() {
            assert_eq!(
                merged.device_texts(dev),
                sequential.device_texts(dev),
                "device {dev:?} texts diverged at {threads} threads"
            );
        }
        let merged_json = serde_json::to_string(&merged).expect("serializes");
        assert_eq!(
            merged_json, sequential_json,
            "serde encoding (line-table id assignment) diverged at {threads} threads"
        );
        // Round-trip the sharded result for good measure.
        let back: SnapshotArchive = serde_json::from_str(&merged_json).expect("deserializes");
        assert_eq!(back, merged);
    }
    mpa_exec::set_threads(saved);
}

#[test]
#[should_panic(expected = "present in multiple")]
fn merge_all_panics_on_device_collision() {
    let mut a = SnapshotArchive::new();
    a.push(snap(DeviceId(1), 0, "x", "a\n")).unwrap();
    let mut b = SnapshotArchive::new();
    b.push(snap(DeviceId(1), 0, "y", "b\n")).unwrap();
    SnapshotArchive::merge_all(vec![a, b]);
}
