//! Sharded-merge invariants: `SnapshotArchive::merge_all` uses
//! **offset-partitioned** global id allocation (shard `s`'s local id `i`
//! becomes `base(s) + i`), so its global id values differ from a
//! sequential pairwise-`merge` fold by design. What must hold instead:
//!
//! * **Observable equivalence to the sequential fold** — same devices,
//!   same metadata, same reconstructed texts, same `total_bytes` (all id
//!   choices are internal naming).
//! * **Thread-count byte-identity** — the merged archive's serde bytes
//!   are identical at 1/2/8 workers (the determinism contract the whole
//!   pipeline rides on).
//! * **No per-id remap** — `archive_merge_remapped_lines` stays zero and
//!   the successor cost counter `archive_merge_table_lines` equals the
//!   sum of shard table sizes (O(distinct lines), not O(delta-stream
//!   ids)).
//! * **Post-merge interning still canonicalizes** — pushing a line that
//!   several shards duplicated resolves to the lowest matching id and
//!   does not grow the table (the serve-session ingest path).
//!
//! One test function for the thread sweep: the thread count is
//! process-global, so sweeping 1/2/8 inside a single test avoids races
//! with a concurrent harness.

use mpa_config::snapshot::{Login, Snapshot, SnapshotMeta};
use mpa_config::SnapshotArchive;
use mpa_model::{DeviceId, Timestamp};

/// A deterministic fleet of device-disjoint shard archives with heavy
/// cross-shard line overlap (shared boilerplate) plus per-shard and
/// per-device unique lines, including multi-snapshot histories and a
/// revert to an earlier state.
fn make_shards(n_shards: u32, devices_per_shard: u32) -> Vec<SnapshotArchive> {
    let mut shards = Vec::new();
    for s in 0..n_shards {
        let mut a = SnapshotArchive::new();
        for d in 0..devices_per_shard {
            let dev = DeviceId(s * devices_per_shard + d);
            let base = format!(
                "hostname h{s}-{d}\n!\nshared boilerplate\ncommon line\nshard {s} local\n!\n"
            );
            let edited = format!("{base}vlan {d}\n name v{d}\n!\n");
            a.push(snap(dev, 0, "alice", &base)).unwrap();
            a.push(snap(dev, 10, "bob", &edited)).unwrap();
            // Exact revert to the base state (a real archive shape the
            // delta encoding must survive through the offset shift).
            a.push(snap(dev, 20, "alice", &base)).unwrap();
        }
        shards.push(a);
    }
    shards
}

fn snap(dev: DeviceId, t: u64, login: &str, text: &str) -> Snapshot {
    Snapshot {
        meta: SnapshotMeta { device: dev, time: Timestamp(t), login: Login::new(login) },
        text: text.to_string(),
    }
}

#[test]
fn merge_all_matches_sequential_fold_observably_at_1_2_and_8_threads() {
    let shards = make_shards(7, 3);
    let shard_table_lines: usize = shards.iter().map(|s| s.n_interned_lines()).sum();

    // Reference: the sequential pairwise fold (still used by serve-session
    // composition). Ids differ; every observable must agree.
    let mut sequential = SnapshotArchive::new();
    for shard in shards.clone() {
        sequential.merge(shard);
    }

    let saved = mpa_exec::threads();
    let mut reference_json: Option<String> = None;
    for threads in [1usize, 2, 8] {
        mpa_exec::set_threads(threads);
        let before = mpa_obs::counters::snapshot();
        let merged = SnapshotArchive::merge_all(shards.clone());
        let diff = mpa_obs::counters::snapshot_diff(&before, &mpa_obs::counters::snapshot());
        let get = |name: &str| diff.iter().find(|(n, _)| *n == name).unwrap().1;

        assert_eq!(get("archive_merge_remapped_lines"), 0, "no per-id remap at {threads}t");
        // Lower bound: the collision test in this binary may merge
        // concurrently and add a few lines of its own.
        assert!(
            get("archive_merge_table_lines") >= shard_table_lines as u64,
            "phase-1 cost must cover the shard tables' distinct lines at {threads}t"
        );

        // Observable equivalence to the sequential fold.
        assert_eq!(merged.n_snapshots(), sequential.n_snapshots());
        assert_eq!(merged.total_bytes(), sequential.total_bytes());
        assert_eq!(
            merged.devices().collect::<Vec<_>>(),
            sequential.devices().collect::<Vec<_>>()
        );
        for dev in sequential.devices() {
            assert_eq!(merged.device_metas(dev), sequential.device_metas(dev));
            assert_eq!(
                merged.device_texts(dev),
                sequential.device_texts(dev),
                "device {dev:?} texts diverged at {threads} threads"
            );
        }

        // Thread-count byte-identity of the sharded result itself.
        let merged_json = serde_json::to_string(&merged).expect("serializes");
        match &reference_json {
            None => reference_json = Some(merged_json.clone()),
            Some(reference) => assert_eq!(
                &merged_json, reference,
                "serde bytes diverged across thread counts at {threads} threads"
            ),
        }
        let back: SnapshotArchive = serde_json::from_str(&merged_json).expect("deserializes");
        assert_eq!(back, merged, "round-trip must rebuild the offset-partitioned table");

        // Post-merge interning canonicalizes: "shared boilerplate" exists
        // once per shard, yet a fresh push resolves to an existing id.
        let mut ingest = merged;
        let lines_before = ingest.n_interned_lines();
        ingest.push(snap(DeviceId(900 + threads as u32), 1, "z", "shared boilerplate\n")).unwrap();
        assert_eq!(ingest.n_interned_lines(), lines_before, "duplicate line must not grow table");
        assert_eq!(
            ingest.device_texts(DeviceId(900 + threads as u32)),
            vec!["shared boilerplate\n"]
        );
    }
    mpa_exec::set_threads(saved);
}

#[test]
#[should_panic(expected = "present in multiple")]
fn merge_all_panics_on_device_collision() {
    let mut a = SnapshotArchive::new();
    a.push(snap(DeviceId(1), 0, "x", "a\n")).unwrap();
    let mut b = SnapshotArchive::new();
    b.push(snap(DeviceId(1), 0, "y", "b\n")).unwrap();
    SnapshotArchive::merge_all(vec![a, b]);
}
