//! Property-based round-trip tests for the configuration substrate:
//! arbitrary semantic configs must render, parse, diff-to-nothing against
//! themselves, and yield facts consistent with the semantic state — in both
//! dialects.

use mpa_config::facts::extract_facts;
use mpa_config::semantic::{AclRule, DeviceConfig};
use mpa_config::{diff_configs, parse_config, render_config};
use mpa_model::device::Dialect;
use proptest::prelude::*;

/// A strategy producing structurally arbitrary (but valid) device configs.
fn arb_config() -> impl Strategy<Value = DeviceConfig> {
    let dialect = prop_oneof![Just(Dialect::BlockKeyword), Just(Dialect::BraceHierarchy)];
    (
        dialect,
        proptest::collection::vec((1u16..40, 1u16..300), 0..12), // (port, vlan)
        proptest::collection::vec((0u8..4, 1u16..1000, any::<bool>()), 0..10), // acl rules
        proptest::collection::vec(0u8..26, 0..5),                // users
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec((0u8..200, 0u8..200), 0..8), // bgp ext peers
        proptest::collection::vec((0u8..6, 0u8..30), 0..12),   // pool members
    )
        .prop_map(|(dialect, vlans, acl_rules, users, stp, sflow, peers, members)| {
            let mut c = DeviceConfig::new("prop-dev", dialect);
            for (port, vlan) in vlans {
                c.assign_interface_vlan(port, vlan);
            }
            for (acl_ix, port, permit) in acl_rules {
                c.acl_add_rule(
                    &format!("acl-{acl_ix}"),
                    AclRule {
                        permit,
                        protocol: if port % 2 == 0 { "tcp".into() } else { "udp".into() },
                        port,
                    },
                );
            }
            for u in users {
                c.add_user(format!("user-{u}"), "operator");
            }
            c.features.spanning_tree = stp;
            if sflow {
                c.set_sflow("192.0.2.9", 1024);
            }
            for (a, b) in peers {
                c.bgp_add_neighbor(65_000, &format!("172.18.{a}.{}", b.max(1)), 64_512);
            }
            for (pool, m) in members {
                c.pool_add_member(&format!("pool-{pool}"), &format!("192.168.9.{m}:443"));
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rendered_configs_always_parse(cfg in arb_config()) {
        let text = render_config(&cfg);
        let parsed = parse_config(&text, cfg.dialect);
        prop_assert!(parsed.is_ok(), "render output failed to parse:\n{text}");
        prop_assert_eq!(parsed.unwrap().hostname, "prop-dev");
    }

    #[test]
    fn self_diff_is_empty(cfg in arb_config()) {
        let text = render_config(&cfg);
        let parsed = parse_config(&text, cfg.dialect).unwrap();
        prop_assert!(diff_configs(&parsed, &parsed).is_empty());
    }

    #[test]
    fn render_parse_render_is_stable(cfg in arb_config()) {
        // Parsing is lossy upward (text → stanzas), but rendering the same
        // semantic state twice must be byte-identical, and two parses of
        // that text must be structurally identical.
        let text = render_config(&cfg);
        prop_assert_eq!(&text, &render_config(&cfg));
        let a = parse_config(&text, cfg.dialect).unwrap();
        let b = parse_config(&text, cfg.dialect).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn facts_agree_with_semantic_state(cfg in arb_config()) {
        let text = render_config(&cfg);
        let facts = extract_facts(&parse_config(&text, cfg.dialect).unwrap());

        let expected_vlans: std::collections::BTreeSet<u16> =
            cfg.vlans.keys().copied().collect();
        prop_assert_eq!(&facts.vlan_ids, &expected_vlans);
        prop_assert_eq!(facts.acl_count, cfg.acls.len());
        let expected_rules: usize = cfg.acls.values().map(|a| a.rules.len()).sum();
        prop_assert_eq!(facts.acl_rule_count, expected_rules);
        prop_assert_eq!(facts.user_count, cfg.users.len());
        prop_assert_eq!(facts.pool_count, cfg.pools.len());
        let expected_members: usize = cfg.pools.values().map(|p| p.members.len()).sum();
        prop_assert_eq!(facts.pool_member_count, expected_members);
        prop_assert_eq!(facts.bgp_local_as.is_some(), cfg.bgp.is_some());
        prop_assert_eq!(facts.has_sflow, cfg.sflow.is_some());
        prop_assert_eq!(facts.iface_count, cfg.interfaces.len());
        // Every VLAN membership is an intra-device reference in both dialects.
        let memberships =
            cfg.interfaces.values().filter(|i| i.access_vlan.is_some()).count();
        prop_assert!(facts.intra_refs >= memberships);
    }

    #[test]
    fn single_semantic_edit_produces_a_diff(cfg in arb_config(), vlan in 1u16..300) {
        let before_text = render_config(&cfg);
        let mut edited = cfg.clone();
        // Pick a guaranteed-new vlan id (above the strategy's range).
        edited.add_vlan(1000 + vlan);
        let after_text = render_config(&edited);
        let changes = diff_configs(
            &parse_config(&before_text, cfg.dialect).unwrap(),
            &parse_config(&after_text, edited.dialect).unwrap(),
        );
        prop_assert!(!changes.is_empty());
        prop_assert!(changes
            .iter()
            .all(|c| c.change_type == mpa_config::ChangeType::Vlan));
    }
}
