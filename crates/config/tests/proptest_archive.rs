//! Property-based tests for the delta-encoded archive and the naming
//! helpers: delta apply/revert must be exact inverses on arbitrary line
//! sequences, arbitrary snapshot sequences must reconstruct bit-for-bit,
//! and interface names must round-trip through both dialects' renderers.

use mpa_config::render::{interface_name, parse_interface_name};
use mpa_config::snapshot::{Login, Snapshot, SnapshotMeta};
use mpa_config::{LineDelta, LineId, ReplayBuffer, SnapshotArchive};
use mpa_model::device::Dialect;
use mpa_model::{DeviceId, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

/// Arbitrary line-id sequences (small alphabet so prefixes/suffixes collide
/// often — the interesting regime for hunk trimming).
fn arb_ids() -> impl Strategy<Value = Vec<LineId>> {
    proptest::collection::vec((0u32..12).prop_map(LineId), 0..24)
}

/// Arbitrary snapshot texts from a small line alphabet, with and without a
/// trailing newline, including empty texts and blank interior lines.
fn arb_text() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        Just(String::new()),
        (0u8..8).prop_map(|i| format!("line {i}")),
        (0u8..8).prop_map(|i| format!(" indented {i}")),
    ];
    (proptest::collection::vec(line, 0..10), any::<bool>()).prop_map(|(lines, trail)| {
        let mut t = lines.join("\n");
        if trail && !t.is_empty() {
            t.push('\n');
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delta_apply_then_revert_is_identity(old in arb_ids(), new in arb_ids()) {
        let d = LineDelta::between(&old, &new);
        let mut cur = old.clone();
        d.apply(&mut cur);
        prop_assert_eq!(&cur, &new, "apply must produce the target sequence");
        d.revert(&mut cur);
        prop_assert_eq!(&cur, &old, "revert must restore the source sequence");
    }

    #[test]
    fn delta_between_identical_sequences_is_empty(ids in arb_ids()) {
        prop_assert!(LineDelta::between(&ids, &ids).is_empty());
    }

    #[test]
    fn archive_reconstructs_arbitrary_texts_exactly(
        texts in proptest::collection::vec(arb_text(), 1..12),
    ) {
        let mut archive = SnapshotArchive::new();
        for (i, text) in texts.iter().enumerate() {
            archive.push(Snapshot {
                meta: SnapshotMeta {
                    device: DeviceId(1),
                    time: Timestamp(i as u64),
                    login: Login::new("p"),
                },
                text: text.clone(),
            }).unwrap();
        }
        let back = archive.device_texts(DeviceId(1));
        prop_assert_eq!(&back, &texts, "bit-for-bit reconstruction");
        // And the random-access path agrees with the replay path.
        for (i, text) in texts.iter().enumerate() {
            let snap = archive.latest_at(DeviceId(1), Timestamp(i as u64)).unwrap();
            prop_assert_eq!(&snap.text, text);
        }
        prop_assert_eq!(archive.total_bytes(), texts.iter().map(String::len).sum::<usize>());
    }

    #[test]
    fn distinct_replay_agrees_with_full_text_dedup(
        texts in proptest::collection::vec(arb_text(), 1..10),
        reverts in proptest::collection::vec(0usize..10, 0..8),
    ) {
        // History = arbitrary texts followed by arbitrary reverts to
        // earlier states (the regime where dedup actually fires); the
        // small alphabet in `arb_text` also makes two independently drawn
        // texts collide often.
        let mut history: Vec<String> = texts.clone();
        history.extend(reverts.iter().map(|&r| texts[r % texts.len()].clone()));
        let mut archive = SnapshotArchive::new();
        for (i, text) in history.iter().enumerate() {
            archive.push(Snapshot {
                meta: SnapshotMeta {
                    device: DeviceId(1),
                    time: Timestamp(i as u64),
                    login: Login::new("p"),
                },
                text: text.clone(),
            }).unwrap();
        }

        // Reference canonicalization: full-text first-seen dedup over the
        // materializing replay path.
        let full = archive.device_texts(DeviceId(1));
        let mut first: HashMap<&str, usize> = HashMap::new();
        let mut canon_ref: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::new(); // slot -> first snapshot ix
        for (ix, t) in full.iter().enumerate() {
            let slot = *first.entry(t.as_str()).or_insert_with(|| {
                slot_of.push(ix);
                slot_of.len() - 1
            });
            canon_ref.push(slot);
        }

        let mut buf = ReplayBuffer::new();
        archive.device_distinct_texts(DeviceId(1), &mut buf);
        prop_assert_eq!(buf.n_snapshots(), full.len());
        prop_assert_eq!(buf.canon(), &canon_ref[..], "line-id dedup must equal text dedup");
        prop_assert_eq!(buf.n_distinct(), slot_of.len());
        for (slot, &ix) in slot_of.iter().enumerate() {
            prop_assert_eq!(buf.text(slot), full[ix].as_str());
        }
        for (ix, text) in full.iter().enumerate() {
            prop_assert_eq!(buf.snapshot_text(ix), text.as_str());
        }

        // Buffer reuse across devices must not leak state: fill for a
        // second device and check again.
        let mut archive2 = SnapshotArchive::new();
        archive2.push(Snapshot {
            meta: SnapshotMeta {
                device: DeviceId(2),
                time: Timestamp(0),
                login: Login::new("p"),
            },
            text: "unrelated\n".to_string(),
        }).unwrap();
        archive2.device_distinct_texts(DeviceId(2), &mut buf);
        prop_assert_eq!(buf.n_snapshots(), 1);
        prop_assert_eq!(buf.text(0), "unrelated\n");
        // And a device absent from the archive yields an empty fill.
        archive2.device_distinct_texts(DeviceId(9), &mut buf);
        prop_assert_eq!(buf.n_snapshots(), 0);
        prop_assert_eq!(buf.n_distinct(), 0);
    }

    #[test]
    fn interface_name_round_trips_in_both_dialects(port in 0u16..u16::MAX) {
        for dialect in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let name = interface_name(dialect, port);
            prop_assert_eq!(
                parse_interface_name(&name),
                Some(port),
                "{:?}: {}",
                dialect,
                name
            );
        }
    }
}
