//! Synthetic addressing scheme.
//!
//! Each device owns a deterministic loopback address derived from its id,
//! `10.H.L.1` with `H = id / 256` and `L = id % 256`. BGP neighbor
//! statements reference the *peer's* loopback, which is what makes
//! inter-device configuration references (paper Table 1, line D6)
//! resolvable during fact extraction: seeing `neighbor 10.0.3.1` in a config
//! tells the analyzer the stanza references device 3.
//!
//! Device ids above 65535 would collide with the scheme, so construction is
//! checked; the synthetic OSP stays well below that (O(10K) devices).

use mpa_model::DeviceId;

/// Loopback address of a device.
///
/// # Panics
/// Panics if the device id exceeds 65535 (outside the 10.H.L.1 scheme).
pub fn device_loopback(dev: DeviceId) -> String {
    assert!(dev.0 <= 0xFFFF, "device id {} outside the 10.H.L.1 address plan", dev.0);
    format!("10.{}.{}.1", dev.0 >> 8, dev.0 & 0xFF)
}

/// Reverse lookup: parse a loopback produced by [`device_loopback`].
/// Returns `None` for anything else (external peers, malformed text).
pub fn parse_loopback(ip: &str) -> Option<DeviceId> {
    let mut parts = ip.split('.');
    let a: u32 = parts.next()?.parse().ok()?;
    let h: u32 = parts.next()?.parse().ok()?;
    let l: u32 = parts.next()?.parse().ok()?;
    let last: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || a != 10 || last != 1 || h > 255 || l > 255 {
        return None;
    }
    Some(DeviceId(h << 8 | l))
}

/// Address of a server-pool member (load-balancer pools point at compute,
/// not at managed devices): `192.168.S.M`.
pub fn pool_member_addr(subnet: u8, member: u8) -> String {
    format!("192.168.{subnet}.{member}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        for id in [0u32, 1, 255, 256, 4095, 65535] {
            let ip = device_loopback(DeviceId(id));
            assert_eq!(parse_loopback(&ip), Some(DeviceId(id)), "{ip}");
        }
    }

    #[test]
    fn loopback_formats() {
        assert_eq!(device_loopback(DeviceId(0)), "10.0.0.1");
        assert_eq!(device_loopback(DeviceId(259)), "10.1.3.1");
    }

    #[test]
    #[should_panic(expected = "address plan")]
    fn oversized_id_panics() {
        device_loopback(DeviceId(0x1_0000));
    }

    #[test]
    fn parse_rejects_foreign_addresses() {
        assert_eq!(parse_loopback("192.168.1.1"), None);
        assert_eq!(parse_loopback("10.0.0.2"), None);
        assert_eq!(parse_loopback("10.0.0"), None);
        assert_eq!(parse_loopback("10.0.0.1.5"), None);
        assert_eq!(parse_loopback("10.999.0.1"), None);
        assert_eq!(parse_loopback("not-an-ip"), None);
    }

    #[test]
    fn pool_member_format() {
        assert_eq!(pool_member_addr(3, 17), "192.168.3.17");
    }
}
