//! Vendor-agnostic change typing (§2.2 of the paper).
//!
//! > "Type names differ between vendors: e.g., an ACL is defined in Cisco
//! > IOS using an `ip access-list` stanza, while a `firewall filter` stanza
//! > is used in Juniper JunOS. We address this by manually identifying
//! > stanza types on different vendors that serve the same purpose, and we
//! > convert these to a vendor-agnostic type identifier."
//!
//! [`ChangeType`] is that identifier. The mapping is intentionally a *manual
//! table*, mirroring the paper's manual identification, and it intentionally
//! does **not** repair the second quirk the paper describes: a semantically
//! identical change (assigning an interface to a VLAN) still maps to
//! [`ChangeType::Interface`] on the block-keyword dialect and
//! [`ChangeType::Vlan`] on the brace dialect, because the *stanza* that
//! changed differs.

use mpa_model::device::Dialect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Vendor-agnostic configuration change type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChangeType {
    /// Physical/logical port settings.
    Interface,
    /// VLAN definitions and membership (brace dialect).
    Vlan,
    /// Access-control lists / firewall filters.
    Acl,
    /// Routing processes (BGP or OSPF).
    Router,
    /// Load-balancer server pools.
    Pool,
    /// Local user accounts.
    User,
    /// sFlow export settings.
    Sflow,
    /// QoS / class-of-service.
    Qos,
    /// Spanning-tree settings.
    SpanningTree,
    /// Link aggregation.
    LinkAgg,
    /// Unidirectional link detection.
    Udld,
    /// DHCP relay.
    DhcpRelay,
    /// System-level settings (hostname, banners).
    System,
    /// NTP configuration.
    Ntp,
    /// SNMP configuration.
    Snmp,
    /// Anything the table does not recognize.
    Other,
}

impl ChangeType {
    /// Whether changes of this type touch middlebox-specific function
    /// (pools live only on load balancers and ADCs).
    pub fn is_middlebox_type(self) -> bool {
        matches!(self, ChangeType::Pool)
    }

    /// Short lowercase label used in reports (matches Fig 12(c)'s legend
    /// vocabulary: iface, pool, acl, router, user).
    pub fn label(self) -> &'static str {
        match self {
            ChangeType::Interface => "iface",
            ChangeType::Vlan => "vlan",
            ChangeType::Acl => "acl",
            ChangeType::Router => "router",
            ChangeType::Pool => "pool",
            ChangeType::User => "user",
            ChangeType::Sflow => "sflow",
            ChangeType::Qos => "qos",
            ChangeType::SpanningTree => "stp",
            ChangeType::LinkAgg => "lacp",
            ChangeType::Udld => "udld",
            ChangeType::DhcpRelay => "dhcp-relay",
            ChangeType::System => "system",
            ChangeType::Ntp => "ntp",
            ChangeType::Snmp => "snmp",
            ChangeType::Other => "other",
        }
    }

    /// All change types, fixed order.
    pub const ALL: [ChangeType; 16] = [
        ChangeType::Interface,
        ChangeType::Vlan,
        ChangeType::Acl,
        ChangeType::Router,
        ChangeType::Pool,
        ChangeType::User,
        ChangeType::Sflow,
        ChangeType::Qos,
        ChangeType::SpanningTree,
        ChangeType::LinkAgg,
        ChangeType::Udld,
        ChangeType::DhcpRelay,
        ChangeType::System,
        ChangeType::Ntp,
        ChangeType::Snmp,
        ChangeType::Other,
    ];
}

impl fmt::Display for ChangeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Map a vendor-native stanza kind to the vendor-agnostic change type.
pub fn map_stanza_kind(dialect: Dialect, kind: &str) -> ChangeType {
    match dialect {
        Dialect::BlockKeyword => match kind {
            "interface" => ChangeType::Interface,
            "vlan" => ChangeType::Vlan,
            "ip access-list" => ChangeType::Acl,
            "router bgp" | "router ospf" => ChangeType::Router,
            "pool" => ChangeType::Pool,
            "username" => ChangeType::User,
            "sflow" => ChangeType::Sflow,
            "class-map" => ChangeType::Qos,
            "spanning-tree" => ChangeType::SpanningTree,
            "lacp" => ChangeType::LinkAgg,
            "udld" => ChangeType::Udld,
            "ip dhcp relay" => ChangeType::DhcpRelay,
            "hostname" => ChangeType::System,
            "ntp" => ChangeType::Ntp,
            "snmp-server" => ChangeType::Snmp,
            _ => ChangeType::Other,
        },
        Dialect::BraceHierarchy => match kind {
            "interfaces" => ChangeType::Interface,
            "vlans" => ChangeType::Vlan,
            "firewall filter" => ChangeType::Acl,
            "protocols bgp" | "protocols ospf" => ChangeType::Router,
            "load-balance pool" => ChangeType::Pool,
            "system login user" => ChangeType::User,
            "protocols sflow" => ChangeType::Sflow,
            "class-of-service" => ChangeType::Qos,
            "protocols rstp" => ChangeType::SpanningTree,
            "protocols lacp" => ChangeType::LinkAgg,
            "protocols udld" => ChangeType::Udld,
            "forwarding-options dhcp-relay" => ChangeType::DhcpRelay,
            "system" => ChangeType::System,
            "system ntp" => ChangeType::Ntp,
            "snmp" => ChangeType::Snmp,
            _ => ChangeType::Other,
        },
    }
}

/// The vendor-native stanza kinds the table above recognizes for a
/// dialect, in table order. This is the stanza-kind *universe* for the
/// scenario coverage report: a generated corpus should exercise every
/// entry, and CI gates on entries dropping to zero.
pub fn known_stanza_kinds(dialect: Dialect) -> &'static [&'static str] {
    match dialect {
        Dialect::BlockKeyword => &[
            "interface",
            "vlan",
            "ip access-list",
            "router bgp",
            "router ospf",
            "pool",
            "username",
            "sflow",
            "class-map",
            "spanning-tree",
            "lacp",
            "udld",
            "ip dhcp relay",
            "hostname",
            "ntp",
            "snmp-server",
        ],
        Dialect::BraceHierarchy => &[
            "interfaces",
            "vlans",
            "firewall filter",
            "protocols bgp",
            "protocols ospf",
            "load-balance pool",
            "system login user",
            "protocols sflow",
            "class-of-service",
            "protocols rstp",
            "protocols lacp",
            "protocols udld",
            "forwarding-options dhcp-relay",
            "system",
            "system ntp",
            "snmp",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_kinds_match_the_mapping_table() {
        // Every known kind must map to a non-Other type, and the two lists
        // must stay in sync with the match arms above.
        for dialect in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            for kind in known_stanza_kinds(dialect) {
                assert_ne!(
                    map_stanza_kind(dialect, kind),
                    ChangeType::Other,
                    "{dialect:?} kind '{kind}' is listed as known but maps to Other"
                );
            }
            // One entry per non-Other change type, plus one (Router absorbs
            // both the BGP and OSPF stanzas).
            assert_eq!(known_stanza_kinds(dialect).len(), ChangeType::ALL.len());
        }
    }

    #[test]
    fn acl_unifies_across_vendors() {
        assert_eq!(map_stanza_kind(Dialect::BlockKeyword, "ip access-list"), ChangeType::Acl);
        assert_eq!(map_stanza_kind(Dialect::BraceHierarchy, "firewall filter"), ChangeType::Acl);
    }

    #[test]
    fn router_unifies_bgp_and_ospf() {
        for k in ["router bgp", "router ospf"] {
            assert_eq!(map_stanza_kind(Dialect::BlockKeyword, k), ChangeType::Router);
        }
        for k in ["protocols bgp", "protocols ospf"] {
            assert_eq!(map_stanza_kind(Dialect::BraceHierarchy, k), ChangeType::Router);
        }
    }

    #[test]
    fn vlan_membership_quirk_is_preserved() {
        // Same semantic operation, different stanza kinds per dialect — the
        // typemap must NOT unify them (it maps stanzas, not semantics).
        assert_eq!(map_stanza_kind(Dialect::BlockKeyword, "interface"), ChangeType::Interface);
        assert_eq!(map_stanza_kind(Dialect::BraceHierarchy, "vlans"), ChangeType::Vlan);
    }

    #[test]
    fn unknown_kinds_map_to_other() {
        assert_eq!(map_stanza_kind(Dialect::BlockKeyword, "fancy-feature"), ChangeType::Other);
        assert_eq!(map_stanza_kind(Dialect::BraceHierarchy, "routing-options"), ChangeType::Other);
    }

    #[test]
    fn every_type_has_distinct_label() {
        let mut labels: Vec<_> = ChangeType::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ChangeType::ALL.len());
    }

    #[test]
    fn pool_is_the_middlebox_type() {
        assert!(ChangeType::Pool.is_middlebox_type());
        assert!(!ChangeType::Interface.is_middlebox_type());
    }
}
