//! Stable chunk decomposition of rendered configs.
//!
//! A *chunk* is the smallest unit of config text the delta-native generator
//! re-renders when an op touches a device: one top-level stanza in the
//! block-keyword dialect, or one stanza / wrapper line in the brace dialect
//! (`interfaces {`, a single interface body, `}`, …). The decomposition is
//! exhaustive and ordered: concatenating `render_chunk` over `chunk_keys`
//! reproduces [`crate::render::render_config`] byte-for-byte, because both
//! paths call the *same* per-chunk renderers in `crate::render` — there is
//! no second rendering implementation to drift.
//!
//! Invariants the generator relies on (asserted by the tests here and the
//! property suite in `tests/proptest_chunks.rs`):
//!
//! * **Exhaustive, ordered**: `chunk_keys` is sorted by `ChunkKey`'s derived
//!   `Ord`, and that order *is* document order. Flushing dirty chunks in
//!   sorted order therefore interns new lines in the same order a full
//!   render would — the foundation of `--gen-mode delta ≡ full`.
//! * **Self-delimited**: every non-empty chunk ends with exactly one `\n`
//!   and contains no blank lines, so splitting per-chunk and splitting the
//!   concatenated document yield the same line sequence.
//! * **Absent renders empty**: rendering a key whose item no longer exists
//!   (deleted vlan, removed user) appends nothing, which is how deletions
//!   flow through the same path as edits.
//!
//! The `mark_*` helpers translate a semantic edit ("interface 3 changed")
//! into the set of chunk keys whose text may have changed, *including* the
//! dialect-specific wrapper lines (adding the first ACL in the brace dialect
//! materializes `firewall {` / `}`). Over-approximation is safe — an
//! unchanged chunk re-renders to identical text and hits the render cache —
//! but under-approximation would silently desynchronize delta mode, so the
//! helpers err on the side of marking wrappers whenever membership of the
//! wrapped collection may have changed.

use crate::render::{block_keyword as bk, brace_hierarchy as bh};
use crate::semantic::DeviceConfig;
use mpa_model::device::Dialect;
use std::collections::BTreeSet;

/// Per-rank payload distinguishing sibling chunks (the vlan id, the acl
/// name). Singleton chunks use `None`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChunkItem {
    /// Singleton chunk (hostname, wrappers, feature blocks).
    None,
    /// Numeric item: a vlan id or interface port.
    Num(u16),
    /// Named item: a user, ACL, QoS class or pool name.
    Name(String),
}

/// Identity of one chunk within a device document. The derived `Ord`
/// (rank-major, then item) is document order within a dialect: ranks are
/// assigned in the order the dialect's `render` emits chunks, and sibling
/// items are emitted in BTree (= `ChunkItem` `Ord`) order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkKey {
    /// Position of the chunk's stanza class in the dialect's document
    /// order (see `rk_bk` / `rk_bh`).
    pub rank: u16,
    /// Which sibling within the rank (vlan id, ACL name, …).
    pub item: ChunkItem,
}

impl ChunkKey {
    fn bare(rank: u16) -> Self {
        ChunkKey { rank, item: ChunkItem::None }
    }

    fn num(rank: u16, n: u16) -> Self {
        ChunkKey { rank, item: ChunkItem::Num(n) }
    }

    fn name(rank: u16, s: &str) -> Self {
        ChunkKey { rank, item: ChunkItem::Name(s.to_owned()) }
    }
}

/// Block-keyword dialect ranks, in document order.
mod rk_bk {
    pub const HOSTNAME: u16 = 0;
    pub const NTP: u16 = 1;
    pub const SNMP: u16 = 2;
    pub const USER: u16 = 3;
    pub const SFLOW: u16 = 4;
    pub const FEATURES: u16 = 5;
    pub const VLAN: u16 = 6;
    pub const ACL: u16 = 7;
    pub const QOS: u16 = 8;
    pub const IFACE: u16 = 9;
    pub const OSPF: u16 = 10;
    pub const BGP: u16 = 11;
    pub const POOL: u16 = 12;
}

/// Brace-hierarchy dialect ranks, in document order. Wrapper lines
/// (`interfaces {` … `}`) are chunks of their own so that membership
/// changes of the wrapped collection stay local.
mod rk_bh {
    pub const SYSTEM: u16 = 0;
    pub const SNMP: u16 = 1;
    pub const IF_OPEN: u16 = 2;
    pub const IFACE: u16 = 3;
    pub const IF_CLOSE: u16 = 4;
    pub const VL_OPEN: u16 = 5;
    pub const VLAN: u16 = 6;
    pub const VL_CLOSE: u16 = 7;
    pub const FW_OPEN: u16 = 8;
    pub const ACL: u16 = 9;
    pub const FW_CLOSE: u16 = 10;
    pub const COS_OPEN: u16 = 11;
    pub const QOS: u16 = 12;
    pub const COS_CLOSE: u16 = 13;
    pub const PROTO_OPEN: u16 = 14;
    pub const OSPF: u16 = 15;
    pub const BGP: u16 = 16;
    pub const RSTP: u16 = 17;
    pub const LACP: u16 = 18;
    pub const UDLD: u16 = 19;
    pub const SFLOW: u16 = 20;
    pub const PROTO_CLOSE: u16 = 21;
    pub const FWD: u16 = 22;
    pub const LB_OPEN: u16 = 23;
    pub const POOL: u16 = 24;
    pub const LB_CLOSE: u16 = 25;
}

/// Every chunk of `cfg`'s document, in document order (sorted by key).
/// Singleton chunks are always present even when they currently render
/// empty; item-keyed chunks are enumerated from the live collections.
pub fn chunk_keys(cfg: &DeviceConfig) -> Vec<ChunkKey> {
    let mut keys = Vec::with_capacity(
        16 + cfg.users.len()
            + cfg.vlans.len()
            + cfg.acls.len()
            + cfg.qos.len()
            + cfg.interfaces.len()
            + cfg.pools.len(),
    );
    match cfg.dialect {
        Dialect::BlockKeyword => {
            use rk_bk::*;
            keys.push(ChunkKey::bare(HOSTNAME));
            keys.push(ChunkKey::bare(NTP));
            keys.push(ChunkKey::bare(SNMP));
            for name in cfg.users.keys() {
                keys.push(ChunkKey::name(USER, name));
            }
            keys.push(ChunkKey::bare(SFLOW));
            keys.push(ChunkKey::bare(FEATURES));
            for &id in cfg.vlans.keys() {
                keys.push(ChunkKey::num(VLAN, id));
            }
            for name in cfg.acls.keys() {
                keys.push(ChunkKey::name(ACL, name));
            }
            for name in cfg.qos.keys() {
                keys.push(ChunkKey::name(QOS, name));
            }
            for &port in cfg.interfaces.keys() {
                keys.push(ChunkKey::num(IFACE, port));
            }
            keys.push(ChunkKey::bare(OSPF));
            keys.push(ChunkKey::bare(BGP));
            for name in cfg.pools.keys() {
                keys.push(ChunkKey::name(POOL, name));
            }
        }
        Dialect::BraceHierarchy => {
            use rk_bh::*;
            keys.push(ChunkKey::bare(SYSTEM));
            keys.push(ChunkKey::bare(SNMP));
            keys.push(ChunkKey::bare(IF_OPEN));
            for &port in cfg.interfaces.keys() {
                keys.push(ChunkKey::num(IFACE, port));
            }
            keys.push(ChunkKey::bare(IF_CLOSE));
            keys.push(ChunkKey::bare(VL_OPEN));
            for &id in cfg.vlans.keys() {
                keys.push(ChunkKey::num(VLAN, id));
            }
            keys.push(ChunkKey::bare(VL_CLOSE));
            keys.push(ChunkKey::bare(FW_OPEN));
            for name in cfg.acls.keys() {
                keys.push(ChunkKey::name(ACL, name));
            }
            keys.push(ChunkKey::bare(FW_CLOSE));
            keys.push(ChunkKey::bare(COS_OPEN));
            for name in cfg.qos.keys() {
                keys.push(ChunkKey::name(QOS, name));
            }
            keys.push(ChunkKey::bare(COS_CLOSE));
            keys.push(ChunkKey::bare(PROTO_OPEN));
            keys.push(ChunkKey::bare(OSPF));
            keys.push(ChunkKey::bare(BGP));
            keys.push(ChunkKey::bare(RSTP));
            keys.push(ChunkKey::bare(LACP));
            keys.push(ChunkKey::bare(UDLD));
            keys.push(ChunkKey::bare(SFLOW));
            keys.push(ChunkKey::bare(PROTO_CLOSE));
            keys.push(ChunkKey::bare(FWD));
            keys.push(ChunkKey::bare(LB_OPEN));
            for name in cfg.pools.keys() {
                keys.push(ChunkKey::name(POOL, name));
            }
            keys.push(ChunkKey::bare(LB_CLOSE));
        }
    }
    debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "chunk_keys must be strictly sorted");
    keys
}

/// Append the current text of one chunk to `out` (does NOT clear it).
/// A key whose item no longer exists appends nothing.
pub fn render_chunk(cfg: &DeviceConfig, key: &ChunkKey, out: &mut String) {
    match cfg.dialect {
        Dialect::BlockKeyword => {
            use rk_bk::*;
            match (key.rank, &key.item) {
                (HOSTNAME, _) => bk::hostname(cfg, out),
                (NTP, _) => bk::ntp(cfg, out),
                (SNMP, _) => bk::snmp(cfg, out),
                (USER, ChunkItem::Name(n)) => bk::user(cfg, n, out),
                (SFLOW, _) => bk::sflow(cfg, out),
                (FEATURES, _) => bk::features(cfg, out),
                (VLAN, ChunkItem::Num(id)) => bk::vlan(cfg, *id, out),
                (ACL, ChunkItem::Name(n)) => bk::acl(cfg, n, out),
                (QOS, ChunkItem::Name(n)) => bk::qos(cfg, n, out),
                (IFACE, ChunkItem::Num(p)) => bk::iface(cfg, *p, out),
                (OSPF, _) => bk::ospf(cfg, out),
                (BGP, _) => bk::bgp(cfg, out),
                (POOL, ChunkItem::Name(n)) => bk::pool(cfg, n, out),
                // mpa-lint: allow(R7) -- keys come only from this module's mark_* constructors; the arm is exhaustiveness bookkeeping
                _ => unreachable!("malformed block-keyword chunk key {key:?}"),
            }
        }
        Dialect::BraceHierarchy => {
            use rk_bh::*;
            match (key.rank, &key.item) {
                (SYSTEM, _) => bh::system(cfg, out),
                (SNMP, _) => bh::snmp(cfg, out),
                (IF_OPEN, _) => bh::if_open(cfg, out),
                (IFACE, ChunkItem::Num(p)) => bh::iface(cfg, *p, out),
                (IF_CLOSE, _) => bh::if_close(cfg, out),
                (VL_OPEN, _) => bh::vl_open(cfg, out),
                (VLAN, ChunkItem::Num(id)) => bh::vlan(cfg, *id, out),
                (VL_CLOSE, _) => bh::vl_close(cfg, out),
                (FW_OPEN, _) => bh::fw_open(cfg, out),
                (ACL, ChunkItem::Name(n)) => bh::acl(cfg, n, out),
                (FW_CLOSE, _) => bh::fw_close(cfg, out),
                (COS_OPEN, _) => bh::cos_open(cfg, out),
                (QOS, ChunkItem::Name(n)) => bh::qos(cfg, n, out),
                (COS_CLOSE, _) => bh::cos_close(cfg, out),
                (PROTO_OPEN, _) => bh::proto_open(cfg, out),
                (OSPF, _) => bh::ospf(cfg, out),
                (BGP, _) => bh::bgp(cfg, out),
                (RSTP, _) => bh::rstp(cfg, out),
                (LACP, _) => bh::lacp(cfg, out),
                (UDLD, _) => bh::udld(cfg, out),
                (SFLOW, _) => bh::sflow(cfg, out),
                (PROTO_CLOSE, _) => bh::proto_close(cfg, out),
                (FWD, _) => bh::fwd(cfg, out),
                (LB_OPEN, _) => bh::lb_open(cfg, out),
                (POOL, ChunkItem::Name(n)) => bh::pool(cfg, n, out),
                (LB_CLOSE, _) => bh::lb_close(cfg, out),
                // mpa-lint: allow(R7) -- keys come only from this module's mark_* constructors; the arm is exhaustiveness bookkeeping
                _ => unreachable!("malformed brace-hierarchy chunk key {key:?}"),
            }
        }
    }
}

/// Mark the chunks affected by an edit to interface `port`.
pub fn mark_iface(dialect: Dialect, port: u16, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::num(rk_bk::IFACE, port));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::IF_OPEN));
            dirty.insert(ChunkKey::num(rk_bh::IFACE, port));
            dirty.insert(ChunkKey::bare(rk_bh::IF_CLOSE));
        }
    }
}

/// Mark the chunks affected by a vlan's creation, deletion, or membership
/// change (member lists render inside the vlan stanza in the brace dialect).
pub fn mark_vlan(dialect: Dialect, id: u16, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::num(rk_bk::VLAN, id));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::VL_OPEN));
            dirty.insert(ChunkKey::num(rk_bh::VLAN, id));
            dirty.insert(ChunkKey::bare(rk_bh::VL_CLOSE));
        }
    }
}

/// Mark the chunks affected by an ACL edit (creation included).
pub fn mark_acl(dialect: Dialect, name: &str, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::name(rk_bk::ACL, name));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::FW_OPEN));
            dirty.insert(ChunkKey::name(rk_bh::ACL, name));
            dirty.insert(ChunkKey::bare(rk_bh::FW_CLOSE));
        }
    }
}

/// Mark the chunks affected by a QoS class edit.
pub fn mark_qos(dialect: Dialect, name: &str, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::name(rk_bk::QOS, name));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::COS_OPEN));
            dirty.insert(ChunkKey::name(rk_bh::QOS, name));
            dirty.insert(ChunkKey::bare(rk_bh::COS_CLOSE));
        }
    }
}

/// Mark the chunks affected by adding/removing a user (the brace dialect
/// renders users inside the `system` block).
pub fn mark_user(dialect: Dialect, name: &str, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::name(rk_bk::USER, name));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::SYSTEM));
        }
    }
}

/// Mark the chunks affected by a pool edit.
pub fn mark_pool(dialect: Dialect, name: &str, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::name(rk_bk::POOL, name));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::LB_OPEN));
            dirty.insert(ChunkKey::name(rk_bh::POOL, name));
            dirty.insert(ChunkKey::bare(rk_bh::LB_CLOSE));
        }
    }
}

/// Mark the chunks affected by a BGP change (the brace `protocols` wrapper
/// may appear or vanish with it).
pub fn mark_bgp(dialect: Dialect, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::bare(rk_bk::BGP));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::PROTO_OPEN));
            dirty.insert(ChunkKey::bare(rk_bh::BGP));
            dirty.insert(ChunkKey::bare(rk_bh::PROTO_CLOSE));
        }
    }
}

/// Mark the chunks affected by an OSPF change.
pub fn mark_ospf(dialect: Dialect, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::bare(rk_bk::OSPF));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::PROTO_OPEN));
            dirty.insert(ChunkKey::bare(rk_bh::OSPF));
            dirty.insert(ChunkKey::bare(rk_bh::PROTO_CLOSE));
        }
    }
}

/// Mark the chunks affected by an sFlow tuning change.
pub fn mark_sflow(dialect: Dialect, dirty: &mut BTreeSet<ChunkKey>) {
    match dialect {
        Dialect::BlockKeyword => {
            dirty.insert(ChunkKey::bare(rk_bk::SFLOW));
        }
        Dialect::BraceHierarchy => {
            dirty.insert(ChunkKey::bare(rk_bh::PROTO_OPEN));
            dirty.insert(ChunkKey::bare(rk_bh::SFLOW));
            dirty.insert(ChunkKey::bare(rk_bh::PROTO_CLOSE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_config;
    use crate::semantic::AclRule;

    fn sample(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("net0-sw-dev0", dialect);
        c.set_description(1, "link to net0-rtr-dev1");
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 10);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.apply_acl(1, "edge");
        c.bgp_add_neighbor(65001, "10.0.0.1", 65002);
        c.ospf_advertise(1, "10.0.0.0/8");
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.add_user("ops1", "operator");
        c.features.spanning_tree = true;
        c.features.dhcp_relay = true;
        c.set_sflow("192.0.2.9", 2048);
        c.set_qos_class("voice", 46);
        c.ntp_servers.push("192.0.2.1".into());
        c.snmp_community = Some("public".into());
        c
    }

    fn concat_chunks(cfg: &DeviceConfig) -> String {
        let mut out = String::new();
        for key in chunk_keys(cfg) {
            render_chunk(cfg, &key, &mut out);
        }
        out
    }

    #[test]
    fn chunk_concat_equals_full_render() {
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let cfg = sample(d);
            assert_eq!(concat_chunks(&cfg), render_config(&cfg), "{d:?}");
            let empty = DeviceConfig::new("empty", d);
            assert_eq!(concat_chunks(&empty), render_config(&empty), "{d:?} empty");
        }
    }

    #[test]
    fn chunks_are_self_delimited() {
        // Every non-empty chunk ends with exactly one newline and contains
        // no blank interior lines — the property that makes per-chunk line
        // splitting equal whole-document line splitting.
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let cfg = sample(d);
            for key in chunk_keys(&cfg) {
                let mut text = String::new();
                render_chunk(&cfg, &key, &mut text);
                if text.is_empty() {
                    continue;
                }
                assert!(text.ends_with('\n'), "{d:?} {key:?} must end with newline");
                assert!(!text.contains("\n\n"), "{d:?} {key:?} has a blank line");
            }
        }
    }

    #[test]
    fn absent_items_render_empty() {
        let cfg = sample(Dialect::BlockKeyword);
        let mut out = String::new();
        render_chunk(&cfg, &ChunkKey::num(rk_bk::VLAN, 999), &mut out);
        render_chunk(&cfg, &ChunkKey::name(rk_bk::ACL, "nope"), &mut out);
        render_chunk(&cfg, &ChunkKey::num(rk_bk::IFACE, 999), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mark_helpers_cover_membership_wrappers() {
        let mut dirty = BTreeSet::new();
        mark_acl(Dialect::BraceHierarchy, "edge", &mut dirty);
        assert!(dirty.contains(&ChunkKey::bare(rk_bh::FW_OPEN)));
        assert!(dirty.contains(&ChunkKey::bare(rk_bh::FW_CLOSE)));
        let mut dirty = BTreeSet::new();
        mark_bgp(Dialect::BraceHierarchy, &mut dirty);
        assert!(dirty.contains(&ChunkKey::bare(rk_bh::PROTO_OPEN)));
    }

    #[test]
    fn dirty_rerender_tracks_an_edit() {
        // Apply an edit, re-render only the marked chunks on top of the
        // unchanged ones, and compare against a full render.
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let mut cfg = sample(d);
            let before: std::collections::BTreeMap<ChunkKey, String> = chunk_keys(&cfg)
                .into_iter()
                .map(|k| {
                    let mut s = String::new();
                    render_chunk(&cfg, &k, &mut s);
                    (k, s)
                })
                .collect();

            let mut dirty = BTreeSet::new();
            let old = cfg.interfaces.get(&2).and_then(|i| i.access_vlan);
            cfg.assign_interface_vlan(2, 20);
            mark_iface(d, 2, &mut dirty);
            if let Some(v) = old {
                mark_vlan(d, v, &mut dirty);
            }
            mark_vlan(d, 20, &mut dirty);

            let mut chunks = before;
            for key in &dirty {
                let mut s = String::new();
                render_chunk(&cfg, key, &mut s);
                chunks.insert(key.clone(), s);
            }
            // Newly created items may introduce keys not present before.
            for key in chunk_keys(&cfg) {
                chunks.entry(key.clone()).or_insert_with(|| {
                    let mut s = String::new();
                    render_chunk(&cfg, &key, &mut s);
                    s
                });
            }
            let rebuilt: String = chunks.values().map(String::as_str).collect();
            assert_eq!(rebuilt, render_config(&cfg), "{d:?}");
        }
    }
}
