//! Design-fact extraction from parsed configurations.
//!
//! The paper's design metrics (Table 1, lines D4–D6) require understanding a
//! config's *logical* content: which data-plane constructs are in use, which
//! routing processes run, and how many configuration references exist within
//! and across devices. The paper extends Batfish for this; [`ConfigFacts`]
//! is our equivalent, computed strictly from [`ParsedConfig`] (i.e., from
//! the rendered text — never from the simulator's semantic intent).
//!
//! Reference conventions:
//!
//! * **Intra-device** references: an interface referencing a VLAN
//!   (`switchport access vlan N`) or an ACL (`ip access-group NAME` /
//!   `filter input NAME`); a VLAN stanza referencing member interfaces
//!   (brace dialect). Only references whose target stanza exists are
//!   counted, following Benson et al.'s referential-complexity definition.
//! * **Inter-device** references: BGP neighbor statements whose address is
//!   another device's loopback, and link descriptions naming a peer device
//!   (`description link to <hostname>`).

use crate::addr::parse_loopback;
use crate::parse::ParsedConfig;
use mpa_model::device::Dialect;
use mpa_model::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A layer-2 data-plane protocol in use (paper line D4; Fig 11(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum L2Protocol {
    /// Virtual LANs.
    Vlan,
    /// Spanning tree.
    SpanningTree,
    /// Link aggregation.
    LinkAgg,
    /// Unidirectional link detection.
    Udld,
    /// DHCP relay.
    DhcpRelay,
}

/// Facts extracted from one device's configuration text.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigFacts {
    /// Number of interface stanzas.
    pub iface_count: usize,
    /// Number of VLAN stanzas.
    pub vlan_count: usize,
    /// The VLAN ids configured on this device (for network-wide distinct
    /// counting; line D4's "number of VLANs configured").
    pub vlan_ids: BTreeSet<u16>,
    /// Number of ACL/filter stanzas.
    pub acl_count: usize,
    /// Total ACL rules across all ACLs.
    pub acl_rule_count: usize,
    /// Number of load-balancer pools.
    pub pool_count: usize,
    /// Total pool members.
    pub pool_member_count: usize,
    /// Number of local user accounts.
    pub user_count: usize,
    /// Number of QoS classes.
    pub qos_class_count: usize,
    /// Whether sFlow export is configured.
    pub has_sflow: bool,
    /// Layer-2 protocols in use.
    pub l2_protocols: BTreeSet<L2Protocol>,
    /// Whether BGP runs, and its local AS if declared.
    pub bgp_local_as: Option<u32>,
    /// BGP neighbors resolved to other managed devices.
    pub bgp_neighbor_devices: Vec<DeviceId>,
    /// BGP neighbors outside the managed address plan.
    pub bgp_external_neighbors: usize,
    /// OSPF process id, if OSPF runs.
    pub ospf_process: Option<u32>,
    /// Intra-device configuration references.
    pub intra_refs: usize,
    /// Devices referenced from this config (BGP neighbors + link
    /// descriptions), with multiplicity.
    pub inter_ref_devices: Vec<DeviceId>,
}

impl ConfigFacts {
    /// Number of distinct layer-3 routing protocols in use (0–2).
    pub fn l3_protocol_count(&self) -> usize {
        usize::from(self.bgp_local_as.is_some()) + usize::from(self.ospf_process.is_some())
    }

    /// Total protocols in use (L2 + L3), the per-device contribution to the
    /// paper's Fig 11(b).
    pub fn protocol_count(&self) -> usize {
        self.l2_protocols.len() + self.l3_protocol_count()
    }

    /// Number of inter-device references.
    pub fn inter_refs(&self) -> usize {
        self.inter_ref_devices.len()
    }
}

/// Extract facts from a parsed configuration.
pub fn extract_facts(cfg: &ParsedConfig<'_>) -> ConfigFacts {
    match cfg.dialect {
        Dialect::BlockKeyword => extract_block(cfg),
        Dialect::BraceHierarchy => extract_brace(cfg),
    }
}

/// Pull the peer device out of a `description ... link to <hostname>` line.
/// Hostnames end in `dev<ID>` (see `Device::hostname`).
fn description_peer(line: &str) -> Option<DeviceId> {
    let (_, rest) = line.split_once("link to ")?;
    let host = rest.trim().trim_matches('"');
    let dev_pos = host.rfind("dev")?;
    host[dev_pos + 3..].parse().ok().map(DeviceId)
}

fn extract_block(cfg: &ParsedConfig<'_>) -> ConfigFacts {
    let mut f = ConfigFacts::default();

    let vlan_ids: BTreeSet<&str> = cfg.of_kind("vlan").map(|s| s.name.as_ref()).collect();
    let acl_names: BTreeSet<&str> = cfg.of_kind("ip access-list").map(|s| s.name.as_ref()).collect();

    f.vlan_ids = vlan_ids.iter().filter_map(|n| n.parse().ok()).collect();
    f.vlan_count = vlan_ids.len();
    f.acl_count = acl_names.len();
    f.acl_rule_count = cfg
        .of_kind("ip access-list")
        .map(|s| s.lines.iter().filter(|l| l.starts_with("permit") || l.starts_with("deny")).count())
        .sum();
    f.user_count = cfg.count_kind("username");
    f.qos_class_count = cfg.count_kind("class-map");
    f.has_sflow = cfg.count_kind("sflow") > 0;

    if f.vlan_count > 0 {
        f.l2_protocols.insert(L2Protocol::Vlan);
    }
    if cfg.count_kind("spanning-tree") > 0 {
        f.l2_protocols.insert(L2Protocol::SpanningTree);
    }
    if cfg.count_kind("lacp") > 0 {
        f.l2_protocols.insert(L2Protocol::LinkAgg);
    }
    if cfg.count_kind("udld") > 0 {
        f.l2_protocols.insert(L2Protocol::Udld);
    }
    if cfg.count_kind("ip dhcp relay") > 0 {
        f.l2_protocols.insert(L2Protocol::DhcpRelay);
    }

    for s in cfg.of_kind("interface") {
        f.iface_count += 1;
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("switchport access vlan ") {
                if vlan_ids.contains(rest.trim()) {
                    f.intra_refs += 1;
                }
            } else if let Some(rest) = line.strip_prefix("ip access-group ") {
                let name = rest.split_whitespace().next().unwrap_or_default();
                if acl_names.contains(name) {
                    f.intra_refs += 1;
                }
            } else if line.starts_with("description") {
                if let Some(dev) = description_peer(line) {
                    f.inter_ref_devices.push(dev);
                }
            }
        }
    }

    for s in cfg.of_kind("router bgp") {
        f.bgp_local_as = s.name.parse().ok();
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("neighbor ") {
                let ip = rest.split_whitespace().next().unwrap_or_default();
                match parse_loopback(ip) {
                    Some(dev) => {
                        f.bgp_neighbor_devices.push(dev);
                        f.inter_ref_devices.push(dev);
                    }
                    None => f.bgp_external_neighbors += 1,
                }
            }
        }
    }
    for s in cfg.of_kind("router ospf") {
        f.ospf_process = s.name.parse().ok();
    }

    for s in cfg.of_kind("pool") {
        f.pool_count += 1;
        f.pool_member_count += s.lines.iter().filter(|l| l.starts_with("member ")).count();
    }

    f
}

fn extract_brace(cfg: &ParsedConfig<'_>) -> ConfigFacts {
    let mut f = ConfigFacts::default();

    let iface_names: BTreeSet<&str> = cfg.of_kind("interfaces").map(|s| s.name.as_ref()).collect();
    let filter_names: BTreeSet<&str> =
        cfg.of_kind("firewall filter").map(|s| s.name.as_ref()).collect();

    f.iface_count = iface_names.len();
    f.vlan_count = cfg.count_kind("vlans");
    for s in cfg.of_kind("vlans") {
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("vlan-id ") {
                if let Ok(id) = rest.trim().parse() {
                    f.vlan_ids.insert(id);
                }
            }
        }
    }
    f.acl_count = filter_names.len();
    f.acl_rule_count = cfg
        .of_kind("firewall filter")
        .map(|s| s.lines.iter().filter(|l| l.contains("from protocol")).count())
        .sum();
    f.user_count = cfg.count_kind("system login user");
    f.qos_class_count = cfg.count_kind("class-of-service");
    f.has_sflow = cfg.count_kind("protocols sflow") > 0;

    if f.vlan_count > 0 {
        f.l2_protocols.insert(L2Protocol::Vlan);
    }
    if cfg.count_kind("protocols rstp") > 0 {
        f.l2_protocols.insert(L2Protocol::SpanningTree);
    }
    if cfg.count_kind("protocols lacp") > 0 {
        f.l2_protocols.insert(L2Protocol::LinkAgg);
    }
    if cfg.count_kind("protocols udld") > 0 {
        f.l2_protocols.insert(L2Protocol::Udld);
    }
    if cfg.count_kind("forwarding-options dhcp-relay") > 0 {
        f.l2_protocols.insert(L2Protocol::DhcpRelay);
    }

    for s in cfg.of_kind("interfaces") {
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("filter input ") {
                if filter_names.contains(rest.trim()) {
                    f.intra_refs += 1;
                }
            } else if line.starts_with("description") {
                if let Some(dev) = description_peer(line) {
                    f.inter_ref_devices.push(dev);
                }
            }
        }
    }

    // VLAN member lists reference interfaces (the reverse direction of the
    // block dialect — same underlying complexity, counted the same way).
    for s in cfg.of_kind("vlans") {
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("interface ") {
                if iface_names.contains(rest.trim()) {
                    f.intra_refs += 1;
                }
            }
        }
    }

    for s in cfg.of_kind("protocols bgp") {
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("local-as ") {
                f.bgp_local_as = rest.trim().parse().ok();
            } else if let Some(rest) = line.strip_prefix("neighbor ") {
                let ip = rest.split_whitespace().next().unwrap_or_default();
                match parse_loopback(ip) {
                    Some(dev) => {
                        f.bgp_neighbor_devices.push(dev);
                        f.inter_ref_devices.push(dev);
                    }
                    None => f.bgp_external_neighbors += 1,
                }
            }
        }
    }
    for s in cfg.of_kind("protocols ospf") {
        for line in &s.lines {
            if let Some(rest) = line.strip_prefix("process ") {
                f.ospf_process = rest.trim().parse().ok();
            }
        }
    }

    for s in cfg.of_kind("load-balance pool") {
        f.pool_count += 1;
        f.pool_member_count += s.lines.iter().filter(|l| l.starts_with("member ")).count();
    }

    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::device_loopback;
    use crate::parse::parse_config;
    use crate::render::render_config;
    use crate::semantic::{AclRule, DeviceConfig};

    fn rich(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("net0-sw-dev0", dialect);
        c.set_description(1, "link to net0-rtr-dev7");
        c.set_description(2, "link to net0-rtr-dev8");
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 10);
        c.assign_interface_vlan(3, 20);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.acl_add_rule("edge", AclRule { permit: false, protocol: "udp".into(), port: 53 });
        c.apply_acl(1, "edge");
        c.bgp_add_neighbor(65001, &device_loopback(DeviceId(7)), 65007);
        c.bgp_add_neighbor(65001, "172.16.0.9", 64512); // external peer
        c.ospf_advertise(1, "10.0.0.0/8");
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.pool_add_member("web", "192.168.1.11:443");
        c.add_user("ops1", "operator");
        c.features.spanning_tree = true;
        c.features.udld = true;
        c.set_sflow("192.0.2.9", 2048);
        c.set_qos_class("voice", 46);
        c
    }

    fn facts(dialect: Dialect) -> ConfigFacts {
        let cfg = rich(dialect);
        extract_facts(&parse_config(&render_config(&cfg), dialect).unwrap())
    }

    #[test]
    fn facts_agree_across_dialects() {
        let a = facts(Dialect::BlockKeyword);
        let b = facts(Dialect::BraceHierarchy);
        assert_eq!(a.iface_count, 3);
        assert_eq!(b.iface_count, 3);
        assert_eq!(a.vlan_count, 2);
        assert_eq!(b.vlan_count, 2);
        assert_eq!(a.vlan_ids, [10, 20].into_iter().collect());
        assert_eq!(b.vlan_ids, [10, 20].into_iter().collect());
        assert_eq!(a.acl_count, 1);
        assert_eq!(b.acl_count, 1);
        assert_eq!(a.acl_rule_count, 2);
        assert_eq!(b.acl_rule_count, 2);
        assert_eq!(a.pool_count, 1);
        assert_eq!(b.pool_count, 1);
        assert_eq!(a.pool_member_count, 2);
        assert_eq!(b.pool_member_count, 2);
        assert_eq!(a.user_count, 1);
        assert_eq!(b.user_count, 1);
        assert_eq!(a.qos_class_count, 1);
        assert_eq!(b.qos_class_count, 1);
        assert!(a.has_sflow && b.has_sflow);
        assert_eq!(a.bgp_local_as, Some(65001));
        assert_eq!(b.bgp_local_as, Some(65001));
        assert_eq!(a.ospf_process, Some(1));
        assert_eq!(b.ospf_process, Some(1));
        assert_eq!(a.bgp_external_neighbors, 1);
        assert_eq!(b.bgp_external_neighbors, 1);
        assert_eq!(a.bgp_neighbor_devices, vec![DeviceId(7)]);
        assert_eq!(b.bgp_neighbor_devices, vec![DeviceId(7)]);
    }

    #[test]
    fn protocol_counts() {
        let f = facts(Dialect::BlockKeyword);
        // L2: vlan + stp + udld = 3; L3: bgp + ospf = 2.
        assert_eq!(f.l2_protocols.len(), 3);
        assert_eq!(f.l3_protocol_count(), 2);
        assert_eq!(f.protocol_count(), 5);
    }

    #[test]
    fn intra_refs_count_reference_edges_in_both_dialects() {
        // Block dialect: 3 vlan memberships (iface→vlan) + 1 acl binding = 4.
        let a = facts(Dialect::BlockKeyword);
        assert_eq!(a.intra_refs, 4);
        // Brace dialect: memberships live in the vlans stanza (vlan→iface),
        // same 3 edges + 1 filter binding = 4.
        let b = facts(Dialect::BraceHierarchy);
        assert_eq!(b.intra_refs, 4);
    }

    #[test]
    fn inter_refs_combine_bgp_and_descriptions() {
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let f = facts(d);
            // 2 link descriptions (dev7, dev8) + 1 managed BGP neighbor (dev7).
            assert_eq!(f.inter_refs(), 3, "{d:?}");
            assert!(f.inter_ref_devices.contains(&DeviceId(8)));
        }
    }

    #[test]
    fn description_peer_parsing() {
        assert_eq!(description_peer("description link to net0-rtr-dev7"), Some(DeviceId(7)));
        assert_eq!(description_peer("description \"link to net3-sw-dev42\""), Some(DeviceId(42)));
        assert_eq!(description_peer("description uplink to core"), None);
        assert_eq!(description_peer("mtu 1500"), None);
    }

    #[test]
    fn dangling_references_are_not_counted() {
        // An interface referencing a non-existent VLAN should not count.
        let text = "hostname h\n!\ninterface Eth0/1\n switchport access vlan 99\n!\n";
        let f = extract_facts(&parse_config(text, Dialect::BlockKeyword).unwrap());
        assert_eq!(f.intra_refs, 0);
        assert_eq!(f.vlan_count, 0);
    }

    #[test]
    fn empty_config_yields_zero_facts() {
        let c = DeviceConfig::new("h", Dialect::BlockKeyword);
        let text = render_config(&c);
        let f = extract_facts(&parse_config(&text, Dialect::BlockKeyword).unwrap());
        assert_eq!(f.protocol_count(), 0);
        assert_eq!(f.intra_refs, 0);
        assert_eq!(f.inter_refs(), 0);
        assert_eq!(f.iface_count, 0);
    }
}
