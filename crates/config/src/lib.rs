//! # mpa-config — configuration substrate for Management Plane Analytics
//!
//! The paper infers operational practices from *device configuration
//! snapshots* (§2.1, data source 2): a network-management system archives a
//! device's configuration text every time the device reports a change, along
//! with metadata (timestamp and login). Practices are then inferred by
//! **parsing** the text (a Batfish extension in the paper) and **diffing**
//! successive snapshots at stanza granularity (§2.2).
//!
//! This crate provides that whole substrate:
//!
//! * [`semantic`] — [`semantic::DeviceConfig`]: the structured,
//!   vendor-neutral configuration state of a device, with semantic mutators
//!   (assign interface to VLAN, edit an ACL, resize a load-balancer pool, …)
//!   used by the operational simulator.
//! * [`render`] — deterministic rendering of a `DeviceConfig` to
//!   configuration *text* in one of two dialects: a flat, `!`-terminated
//!   block-keyword dialect (Cisco-IOS-flavoured) and a nested brace-hierarchy
//!   dialect (JunOS-flavoured).
//! * [`parse`] — the reverse direction: text → [`parse::ParsedConfig`], a
//!   stanza-level structural model. This is the only path the *inference*
//!   layer is allowed to use — it must work from the wire format, exactly as
//!   the paper's pipeline does.
//! * [`typemap`] — vendor-native stanza kinds mapped to a vendor-agnostic
//!   [`typemap::ChangeType`], including the paper's cross-vendor quirks
//!   (`ip access-list` vs `firewall filter`; interface-to-VLAN assignment
//!   typed as an *interface* change on one dialect and a *vlan* change on
//!   the other).
//! * [`diff`] — stanza-level diff between two parsed configs ("if at least
//!   one stanza differs, we count this as a configuration change").
//! * [`snapshot`] — snapshot value types with login metadata and the user
//!   directory that classifies logins as automation accounts.
//! * [`archive`] — the delta-encoded snapshot store: per-archive line
//!   interning, base-plus-deltas histories, exact bit-for-bit
//!   reconstruction.
//! * [`chunk`] — stable chunk decomposition of rendered documents: one key
//!   per stanza/wrapper, ordered like the document, with dirty-marking
//!   helpers. This is the substrate of delta-native *generation*
//!   (`--gen-mode delta`): the simulator re-renders only dirty chunks.
//! * [`incremental`] — delta-native inference: an incremental stanza index
//!   over the archive's line-id deltas that derives `diff_configs`-
//!   equivalent change records while re-parsing only changed segments.
//! * [`facts`] — extraction of design-practice facts (VLAN counts, protocol
//!   sets, routing processes, intra-/inter-device references) from parsed
//!   configs.
//! * [`addr`] — the synthetic addressing scheme that lets inter-device
//!   references (BGP neighbor IPs) be resolved back to devices.

pub mod addr;
pub mod archive;
pub mod chunk;
pub mod diff;
pub mod error;
pub mod facts;
pub mod incremental;
pub mod parse;
pub mod render;
pub mod semantic;
pub mod snapshot;
pub mod typemap;

pub use archive::{
    ArchiveBuilder, DeltaCursor, DeltaRef, LineDelta, LineId, RenderCache, ReplayBuffer,
    SnapshotArchive,
};
/// Compatibility alias: the archive is the delta-encoded store.
pub use archive::SnapshotArchive as Archive;
pub use diff::{diff_configs, ChangeAction, StanzaChange};
pub use error::ConfigError;
pub use facts::ConfigFacts;
pub use incremental::{DeltaInference, DeviceReplay, KeyId, LineClasses};
pub use parse::{parse_config, ParsedConfig, ParsedStanza};
pub use render::{render_config, render_config_into};
pub use semantic::DeviceConfig;
pub use snapshot::{Login, Snapshot, SnapshotMeta, UserDirectory};
pub use typemap::{known_stanza_kinds, ChangeType};
