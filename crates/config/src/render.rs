//! Rendering a [`DeviceConfig`] to configuration text.
//!
//! Two dialects are supported, matching the two config-language families the
//! paper parses with its Batfish extension:
//!
//! * **Block-keyword** (Cisco-IOS-flavoured): flat stanzas introduced by a
//!   keyword at column zero, indented option lines, `!` separators.
//! * **Brace-hierarchy** (JunOS-flavoured): nested `{}` blocks with
//!   `;`-terminated leaves.
//!
//! Rendering is *deterministic*: all collections in [`DeviceConfig`] are
//! ordered (BTree maps), so the same semantic state always produces the same
//! bytes — a property both the snapshot-diff tests and the paper's "if at
//! least one stanza differs" change definition rely on.
//!
//! Both dialects are factored into *chunk* renderers — one function per
//! top-level stanza (or wrapper line, in the brace dialect) — and
//! [`render_config`] is nothing more than the chunks emitted in document
//! order. [`crate::chunk`] exposes the same chunk functions keyed by
//! [`crate::chunk::ChunkKey`], which is what makes delta-native generation
//! (`--gen-mode delta`) byte-identical to the full render by construction:
//! there is exactly one renderer per chunk, shared by both paths.
//!
//! The two dialects deliberately disagree about where VLAN membership lives:
//! the block-keyword dialect puts `switchport access vlan N` inside the
//! *interface* stanza, while the brace dialect lists member interfaces
//! inside the *vlans* stanza. The paper calls out exactly this quirk (§2.2):
//! the same semantic change is typed `interface` on one vendor and `vlan` on
//! the other.

use crate::semantic::DeviceConfig;
use mpa_model::device::Dialect;

/// Render a device config to text in its own dialect.
pub fn render_config(cfg: &DeviceConfig) -> String {
    let mut out = String::with_capacity(1024);
    render_config_into(cfg, &mut out);
    out
}

/// Render into a caller-owned buffer (cleared first). The simulator renders
/// one snapshot per device change; reusing one buffer keeps that hot loop
/// allocation-free.
pub fn render_config_into(cfg: &DeviceConfig, out: &mut String) {
    out.clear();
    match cfg.dialect {
        Dialect::BlockKeyword => block_keyword::render(cfg, out),
        Dialect::BraceHierarchy => brace_hierarchy::render(cfg, out),
    }
}

/// Interface name for a port number in the given dialect
/// (`Eth0/7` vs `xe-0/0/7`).
pub fn interface_name(dialect: Dialect, port: u16) -> String {
    match dialect {
        Dialect::BlockKeyword => format!("Eth0/{port}"),
        Dialect::BraceHierarchy => format!("xe-0/0/{port}"),
    }
}

/// Parse a port number back out of an interface name in either dialect.
pub fn parse_interface_name(name: &str) -> Option<u16> {
    let tail = name.strip_prefix("Eth0/").or_else(|| name.strip_prefix("xe-0/0/"))?;
    tail.parse().ok()
}

pub(crate) mod block_keyword {
    use super::*;

    /// Append one flat stanza followed by the `!` separator line.
    fn sect(out: &mut String, s: &str) {
        out.push_str(s);
        if !s.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("!\n");
    }

    pub(crate) fn hostname(cfg: &DeviceConfig, out: &mut String) {
        sect(out, &format!("hostname {}", cfg.hostname));
    }

    pub(crate) fn ntp(cfg: &DeviceConfig, out: &mut String) {
        for server in &cfg.ntp_servers {
            sect(out, &format!("ntp server {server}"));
        }
    }

    pub(crate) fn snmp(cfg: &DeviceConfig, out: &mut String) {
        if let Some(comm) = &cfg.snmp_community {
            sect(out, &format!("snmp-server community {comm}"));
        }
    }

    pub(crate) fn user(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(u) = cfg.users.get(name) {
            sect(out, &format!("username {name} role {}", u.role));
        }
    }

    pub(crate) fn sflow(cfg: &DeviceConfig, out: &mut String) {
        if let Some(sf) = &cfg.sflow {
            sect(out, &format!("sflow collector {} rate {}", sf.collector, sf.rate));
        }
    }

    pub(crate) fn features(cfg: &DeviceConfig, out: &mut String) {
        if cfg.features.spanning_tree {
            sect(out, "spanning-tree mode rapid-pvst");
        }
        if cfg.features.lacp {
            sect(out, "lacp system-priority 32768");
        }
        if cfg.features.udld {
            sect(out, "udld enable");
        }
        if cfg.features.dhcp_relay {
            sect(out, "ip dhcp relay enable");
        }
    }

    pub(crate) fn vlan(cfg: &DeviceConfig, id: u16, out: &mut String) {
        if let Some(v) = cfg.vlans.get(&id) {
            sect(out, &format!("vlan {id}\n name {}", v.name));
        }
    }

    pub(crate) fn acl(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(acl) = cfg.acls.get(name) {
            let mut s = format!("ip access-list extended {name}");
            for r in &acl.rules {
                let act = if r.permit { "permit" } else { "deny" };
                s.push_str(&format!("\n {} {} any any eq {}", act, r.protocol, r.port));
            }
            sect(out, &s);
        }
    }

    pub(crate) fn qos(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(q) = cfg.qos.get(name) {
            sect(out, &format!("class-map {name}\n set dscp {}", q.dscp));
        }
    }

    pub(crate) fn iface(cfg: &DeviceConfig, port: u16, out: &mut String) {
        if let Some(ifc) = cfg.interfaces.get(&port) {
            let mut s = format!("interface {}", interface_name(cfg.dialect, port));
            if !ifc.description.is_empty() {
                s.push_str(&format!("\n description {}", ifc.description));
            }
            s.push_str(&format!("\n mtu {}", ifc.mtu));
            if let Some(vlan) = ifc.access_vlan {
                s.push_str(&format!("\n switchport access vlan {vlan}"));
            }
            if let Some(acl) = &ifc.acl_in {
                s.push_str(&format!("\n ip access-group {acl} in"));
            }
            if !ifc.enabled {
                s.push_str("\n shutdown");
            }
            sect(out, &s);
        }
    }

    pub(crate) fn ospf(cfg: &DeviceConfig, out: &mut String) {
        if let Some(ospf) = &cfg.ospf {
            let mut s = format!("router ospf {}", ospf.process);
            for n in &ospf.networks {
                s.push_str(&format!("\n network {n} area 0"));
            }
            sect(out, &s);
        }
    }

    pub(crate) fn bgp(cfg: &DeviceConfig, out: &mut String) {
        if let Some(bgp) = &cfg.bgp {
            let mut s = format!("router bgp {}", bgp.local_as);
            for (ip, ras) in &bgp.neighbors {
                s.push_str(&format!("\n neighbor {ip} remote-as {ras}"));
            }
            sect(out, &s);
        }
    }

    pub(crate) fn pool(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(p) = cfg.pools.get(name) {
            let mut s = format!("pool {name}\n monitor {}", p.monitor);
            for m in &p.members {
                s.push_str(&format!("\n member {m}"));
            }
            sect(out, &s);
        }
    }

    /// Full render: the chunks above, in document order. `chunk_keys`
    /// enumerates exactly this sequence.
    pub fn render(cfg: &DeviceConfig, out: &mut String) {
        hostname(cfg, out);
        ntp(cfg, out);
        snmp(cfg, out);
        for name in cfg.users.keys() {
            user(cfg, name, out);
        }
        sflow(cfg, out);
        features(cfg, out);
        for &id in cfg.vlans.keys() {
            vlan(cfg, id, out);
        }
        for name in cfg.acls.keys() {
            acl(cfg, name, out);
        }
        for name in cfg.qos.keys() {
            qos(cfg, name, out);
        }
        for &port in cfg.interfaces.keys() {
            iface(cfg, port, out);
        }
        ospf(cfg, out);
        bgp(cfg, out);
        for name in cfg.pools.keys() {
            pool(cfg, name, out);
        }
    }
}

pub(crate) mod brace_hierarchy {
    use super::*;
    use std::fmt::Write as _;

    /// Does the `protocols { ... }` wrapper appear at all?
    pub(crate) fn has_protocols(cfg: &DeviceConfig) -> bool {
        cfg.bgp.is_some()
            || cfg.ospf.is_some()
            || cfg.sflow.is_some()
            || cfg.features.spanning_tree
            || cfg.features.lacp
            || cfg.features.udld
    }

    pub(crate) fn system(cfg: &DeviceConfig, out: &mut String) {
        let mut w = Writer::at(out, 0);
        w.open("system");
        w.leaf(&format!("host-name {}", cfg.hostname));
        if !cfg.users.is_empty() {
            w.open("login");
            for (name, u) in &cfg.users {
                w.open(&format!("user {name}"));
                w.leaf(&format!("class {}", u.role));
                w.close();
            }
            w.close();
        }
        if !cfg.ntp_servers.is_empty() {
            w.open("ntp");
            for s in &cfg.ntp_servers {
                w.leaf(&format!("server {s}"));
            }
            w.close();
        }
        w.close();
    }

    pub(crate) fn snmp(cfg: &DeviceConfig, out: &mut String) {
        if let Some(comm) = &cfg.snmp_community {
            let mut w = Writer::at(out, 0);
            w.open("snmp");
            w.leaf(&format!("community {comm}"));
            w.close();
        }
    }

    pub(crate) fn if_open(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.interfaces.is_empty() {
            out.push_str("interfaces {\n");
        }
    }

    pub(crate) fn iface(cfg: &DeviceConfig, port: u16, out: &mut String) {
        if let Some(ifc) = cfg.interfaces.get(&port) {
            let mut w = Writer::at(out, 1);
            w.open(&interface_name(cfg.dialect, port));
            if !ifc.description.is_empty() {
                w.leaf(&format!("description \"{}\"", ifc.description));
            }
            w.leaf(&format!("mtu {}", ifc.mtu));
            if let Some(acl) = &ifc.acl_in {
                w.leaf(&format!("filter input {acl}"));
            }
            if !ifc.enabled {
                w.leaf("disable");
            }
            w.close();
        }
    }

    pub(crate) fn if_close(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.interfaces.is_empty() {
            out.push_str("}\n");
        }
    }

    pub(crate) fn vl_open(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.vlans.is_empty() {
            out.push_str("vlans {\n");
        }
    }

    pub(crate) fn vlan(cfg: &DeviceConfig, id: u16, out: &mut String) {
        if let Some(v) = cfg.vlans.get(&id) {
            let mut w = Writer::at(out, 1);
            w.open(&v.name);
            w.leaf(&format!("vlan-id {id}"));
            for port in cfg.vlan_members(id) {
                w.leaf(&format!("interface {}", interface_name(cfg.dialect, port)));
            }
            w.close();
        }
    }

    pub(crate) fn vl_close(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.vlans.is_empty() {
            out.push_str("}\n");
        }
    }

    pub(crate) fn fw_open(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.acls.is_empty() {
            out.push_str("firewall {\n");
        }
    }

    pub(crate) fn acl(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(acl) = cfg.acls.get(name) {
            let mut w = Writer::at(out, 1);
            w.open(&format!("filter {name}"));
            for (i, r) in acl.rules.iter().enumerate() {
                w.open(&format!("term t{i}"));
                w.leaf(&format!("from protocol {} port {}", r.protocol, r.port));
                w.leaf(if r.permit { "then accept" } else { "then discard" });
                w.close();
            }
            w.close();
        }
    }

    pub(crate) fn fw_close(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.acls.is_empty() {
            out.push_str("}\n");
        }
    }

    pub(crate) fn cos_open(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.qos.is_empty() {
            out.push_str("class-of-service {\n");
        }
    }

    pub(crate) fn qos(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(q) = cfg.qos.get(name) {
            let mut w = Writer::at(out, 1);
            w.open(name);
            w.leaf(&format!("dscp {}", q.dscp));
            w.close();
        }
    }

    pub(crate) fn cos_close(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.qos.is_empty() {
            out.push_str("}\n");
        }
    }

    pub(crate) fn proto_open(cfg: &DeviceConfig, out: &mut String) {
        if has_protocols(cfg) {
            out.push_str("protocols {\n");
        }
    }

    pub(crate) fn ospf(cfg: &DeviceConfig, out: &mut String) {
        if let Some(ospf) = &cfg.ospf {
            let mut w = Writer::at(out, 1);
            w.open("ospf");
            w.leaf(&format!("process {}", ospf.process));
            for n in &ospf.networks {
                w.leaf(&format!("area 0 network {n}"));
            }
            w.close();
        }
    }

    pub(crate) fn bgp(cfg: &DeviceConfig, out: &mut String) {
        if let Some(bgp) = &cfg.bgp {
            let mut w = Writer::at(out, 1);
            w.open("bgp");
            w.leaf(&format!("local-as {}", bgp.local_as));
            for (ip, ras) in &bgp.neighbors {
                w.open(&format!("neighbor {ip}"));
                w.leaf(&format!("peer-as {ras}"));
                w.close();
            }
            w.close();
        }
    }

    pub(crate) fn rstp(cfg: &DeviceConfig, out: &mut String) {
        if cfg.features.spanning_tree {
            feature_block(out, "rstp");
        }
    }

    pub(crate) fn lacp(cfg: &DeviceConfig, out: &mut String) {
        if cfg.features.lacp {
            feature_block(out, "lacp");
        }
    }

    pub(crate) fn udld(cfg: &DeviceConfig, out: &mut String) {
        if cfg.features.udld {
            feature_block(out, "udld");
        }
    }

    fn feature_block(out: &mut String, name: &str) {
        let mut w = Writer::at(out, 1);
        w.open(name);
        w.leaf("enable");
        w.close();
    }

    pub(crate) fn sflow(cfg: &DeviceConfig, out: &mut String) {
        if let Some(sf) = &cfg.sflow {
            let mut w = Writer::at(out, 1);
            w.open("sflow");
            w.leaf(&format!("collector {}", sf.collector));
            w.leaf(&format!("rate {}", sf.rate));
            w.close();
        }
    }

    pub(crate) fn proto_close(cfg: &DeviceConfig, out: &mut String) {
        if has_protocols(cfg) {
            out.push_str("}\n");
        }
    }

    pub(crate) fn fwd(cfg: &DeviceConfig, out: &mut String) {
        if cfg.features.dhcp_relay {
            let mut w = Writer::at(out, 0);
            w.open("forwarding-options");
            w.open("dhcp-relay");
            w.leaf("enable");
            w.close();
            w.close();
        }
    }

    pub(crate) fn lb_open(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.pools.is_empty() {
            out.push_str("load-balance {\n");
        }
    }

    pub(crate) fn pool(cfg: &DeviceConfig, name: &str, out: &mut String) {
        if let Some(p) = cfg.pools.get(name) {
            let mut w = Writer::at(out, 1);
            w.open(&format!("pool {name}"));
            w.leaf(&format!("monitor {}", p.monitor));
            for m in &p.members {
                w.leaf(&format!("member {m}"));
            }
            w.close();
        }
    }

    pub(crate) fn lb_close(cfg: &DeviceConfig, out: &mut String) {
        if !cfg.pools.is_empty() {
            out.push_str("}\n");
        }
    }

    /// Full render: the chunks above, in document order. `chunk_keys`
    /// enumerates exactly this sequence.
    pub fn render(cfg: &DeviceConfig, out: &mut String) {
        system(cfg, out);
        snmp(cfg, out);
        if_open(cfg, out);
        for &port in cfg.interfaces.keys() {
            iface(cfg, port, out);
        }
        if_close(cfg, out);
        vl_open(cfg, out);
        for &id in cfg.vlans.keys() {
            vlan(cfg, id, out);
        }
        vl_close(cfg, out);
        fw_open(cfg, out);
        for name in cfg.acls.keys() {
            acl(cfg, name, out);
        }
        fw_close(cfg, out);
        cos_open(cfg, out);
        for name in cfg.qos.keys() {
            qos(cfg, name, out);
        }
        cos_close(cfg, out);
        proto_open(cfg, out);
        ospf(cfg, out);
        bgp(cfg, out);
        rstp(cfg, out);
        lacp(cfg, out);
        udld(cfg, out);
        sflow(cfg, out);
        proto_close(cfg, out);
        fwd(cfg, out);
        lb_open(cfg, out);
        for name in cfg.pools.keys() {
            pool(cfg, name, out);
        }
        lb_close(cfg, out);
    }

    /// Indentation-tracking writer for brace blocks, appending to a
    /// caller-owned buffer at a fixed starting depth (chunk renderers for
    /// nested stanzas start at depth 1, inside their wrapper).
    struct Writer<'a> {
        out: &'a mut String,
        depth: usize,
    }

    impl<'a> Writer<'a> {
        fn at(out: &'a mut String, depth: usize) -> Self {
            Writer { out, depth }
        }

        fn open(&mut self, header: &str) {
            let _ = writeln!(self.out, "{}{} {{", "    ".repeat(self.depth), header);
            self.depth += 1;
        }

        fn leaf(&mut self, line: &str) {
            let _ = writeln!(self.out, "{}{};", "    ".repeat(self.depth), line);
        }

        fn close(&mut self) {
            self.depth -= 1;
            let _ = writeln!(self.out, "{}}}", "    ".repeat(self.depth));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::AclRule;

    fn sample(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("net0-sw-dev0", dialect);
        c.set_description(1, "link to net0-rtr-dev1");
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 10);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.apply_acl(1, "edge");
        c.bgp_add_neighbor(65001, "10.0.0.1", 65002);
        c.ospf_advertise(1, "10.0.0.0/8");
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.add_user("ops1", "operator");
        c.features.spanning_tree = true;
        c.features.dhcp_relay = true;
        c.set_sflow("192.0.2.9", 2048);
        c.set_qos_class("voice", 46);
        c.ntp_servers.push("192.0.2.1".into());
        c.snmp_community = Some("public".into());
        c
    }

    #[test]
    fn interface_names_round_trip() {
        assert_eq!(interface_name(Dialect::BlockKeyword, 7), "Eth0/7");
        assert_eq!(interface_name(Dialect::BraceHierarchy, 7), "xe-0/0/7");
        assert_eq!(parse_interface_name("Eth0/7"), Some(7));
        assert_eq!(parse_interface_name("xe-0/0/7"), Some(7));
        assert_eq!(parse_interface_name("Gig1/1"), None);
    }

    #[test]
    fn block_keyword_places_vlan_membership_on_interface() {
        let text = render_config(&sample(Dialect::BlockKeyword));
        assert!(text.contains("interface Eth0/1"));
        assert!(text.contains(" switchport access vlan 10"));
        // The vlan stanza itself does NOT list members in this dialect.
        let vlan_stanza: Vec<&str> = text
            .split("!\n")
            .filter(|s| s.starts_with("vlan 10"))
            .collect();
        assert_eq!(vlan_stanza.len(), 1);
        assert!(!vlan_stanza[0].contains("Eth0/1"));
    }

    #[test]
    fn brace_hierarchy_places_vlan_membership_on_vlan() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        assert!(text.contains("vlans {"));
        assert!(text.contains("interface xe-0/0/1;"), "member listed in vlans block");
        // The interface block must NOT mention the vlan.
        let iface_region = text
            .split("interfaces {")
            .nth(1)
            .unwrap()
            .split("vlans {")
            .next()
            .unwrap();
        assert!(!iface_region.contains("vlan"), "no vlan membership under interfaces");
    }

    #[test]
    fn acl_naming_differs_across_dialects() {
        let cisco = render_config(&sample(Dialect::BlockKeyword));
        let junos = render_config(&sample(Dialect::BraceHierarchy));
        assert!(cisco.contains("ip access-list extended edge"));
        assert!(junos.contains("filter edge {"));
        assert!(junos.contains("firewall {"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_config(&sample(Dialect::BraceHierarchy));
        let b = render_config(&sample(Dialect::BraceHierarchy));
        assert_eq!(a, b);
    }

    #[test]
    fn brace_output_is_balanced() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert!(opens >= 10, "non-trivial structure, got {opens} blocks");
    }

    #[test]
    fn empty_config_renders_minimal_text() {
        let c = DeviceConfig::new("empty", Dialect::BlockKeyword);
        let text = render_config(&c);
        assert!(text.starts_with("hostname empty"));
        let c = DeviceConfig::new("empty", Dialect::BraceHierarchy);
        let text = render_config(&c);
        assert!(text.contains("host-name empty;"));
    }

    #[test]
    fn all_semantic_sections_appear() {
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let text = render_config(&sample(d));
            for needle in ["65001", "65002", "10.0.0.1", "192.168.1.10:443", "ops1", "2048", "46", "public", "192.0.2.1"] {
                assert!(text.contains(needle), "{d:?} output missing {needle}:\n{text}");
            }
        }
    }
}
