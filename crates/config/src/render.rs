//! Rendering a [`DeviceConfig`] to configuration text.
//!
//! Two dialects are supported, matching the two config-language families the
//! paper parses with its Batfish extension:
//!
//! * **Block-keyword** (Cisco-IOS-flavoured): flat stanzas introduced by a
//!   keyword at column zero, indented option lines, `!` separators.
//! * **Brace-hierarchy** (JunOS-flavoured): nested `{}` blocks with
//!   `;`-terminated leaves.
//!
//! Rendering is *deterministic*: all collections in [`DeviceConfig`] are
//! ordered (BTree maps), so the same semantic state always produces the same
//! bytes — a property both the snapshot-diff tests and the paper's "if at
//! least one stanza differs" change definition rely on.
//!
//! The two dialects deliberately disagree about where VLAN membership lives:
//! the block-keyword dialect puts `switchport access vlan N` inside the
//! *interface* stanza, while the brace dialect lists member interfaces
//! inside the *vlans* stanza. The paper calls out exactly this quirk (§2.2):
//! the same semantic change is typed `interface` on one vendor and `vlan` on
//! the other.

use crate::semantic::DeviceConfig;
use mpa_model::device::Dialect;

/// Render a device config to text in its own dialect.
pub fn render_config(cfg: &DeviceConfig) -> String {
    let mut out = String::with_capacity(1024);
    render_config_into(cfg, &mut out);
    out
}

/// Render into a caller-owned buffer (cleared first). The simulator renders
/// one snapshot per device change; reusing one buffer keeps that hot loop
/// allocation-free.
pub fn render_config_into(cfg: &DeviceConfig, out: &mut String) {
    out.clear();
    match cfg.dialect {
        Dialect::BlockKeyword => block_keyword::render(cfg, out),
        Dialect::BraceHierarchy => brace_hierarchy::render(cfg, out),
    }
}

/// Interface name for a port number in the given dialect
/// (`Eth0/7` vs `xe-0/0/7`).
pub fn interface_name(dialect: Dialect, port: u16) -> String {
    match dialect {
        Dialect::BlockKeyword => format!("Eth0/{port}"),
        Dialect::BraceHierarchy => format!("xe-0/0/{port}"),
    }
}

/// Parse a port number back out of an interface name in either dialect.
pub fn parse_interface_name(name: &str) -> Option<u16> {
    let tail = name.strip_prefix("Eth0/").or_else(|| name.strip_prefix("xe-0/0/"))?;
    tail.parse().ok()
}

mod block_keyword {
    use super::*;

    pub fn render(cfg: &DeviceConfig, out: &mut String) {
        let mut sect = |s: &str| {
            out.push_str(s);
            if !s.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("!\n");
        };

        sect(&format!("hostname {}", cfg.hostname));

        for server in &cfg.ntp_servers {
            sect(&format!("ntp server {server}"));
        }
        if let Some(comm) = &cfg.snmp_community {
            sect(&format!("snmp-server community {comm}"));
        }
        for (name, u) in &cfg.users {
            sect(&format!("username {name} role {}", u.role));
        }
        if let Some(sf) = &cfg.sflow {
            sect(&format!("sflow collector {} rate {}", sf.collector, sf.rate));
        }
        if cfg.features.spanning_tree {
            sect("spanning-tree mode rapid-pvst");
        }
        if cfg.features.lacp {
            sect("lacp system-priority 32768");
        }
        if cfg.features.udld {
            sect("udld enable");
        }
        if cfg.features.dhcp_relay {
            sect("ip dhcp relay enable");
        }

        for (id, v) in &cfg.vlans {
            sect(&format!("vlan {id}\n name {}", v.name));
        }

        for (name, acl) in &cfg.acls {
            let mut s = format!("ip access-list extended {name}");
            for r in &acl.rules {
                let act = if r.permit { "permit" } else { "deny" };
                s.push_str(&format!("\n {} {} any any eq {}", act, r.protocol, r.port));
            }
            sect(&s);
        }

        for (name, q) in &cfg.qos {
            sect(&format!("class-map {name}\n set dscp {}", q.dscp));
        }

        for (&port, ifc) in &cfg.interfaces {
            let mut s = format!("interface {}", interface_name(cfg.dialect, port));
            if !ifc.description.is_empty() {
                s.push_str(&format!("\n description {}", ifc.description));
            }
            s.push_str(&format!("\n mtu {}", ifc.mtu));
            if let Some(vlan) = ifc.access_vlan {
                s.push_str(&format!("\n switchport access vlan {vlan}"));
            }
            if let Some(acl) = &ifc.acl_in {
                s.push_str(&format!("\n ip access-group {acl} in"));
            }
            if !ifc.enabled {
                s.push_str("\n shutdown");
            }
            sect(&s);
        }

        if let Some(ospf) = &cfg.ospf {
            let mut s = format!("router ospf {}", ospf.process);
            for n in &ospf.networks {
                s.push_str(&format!("\n network {n} area 0"));
            }
            sect(&s);
        }
        if let Some(bgp) = &cfg.bgp {
            let mut s = format!("router bgp {}", bgp.local_as);
            for (ip, ras) in &bgp.neighbors {
                s.push_str(&format!("\n neighbor {ip} remote-as {ras}"));
            }
            sect(&s);
        }

        for (name, p) in &cfg.pools {
            let mut s = format!("pool {name}\n monitor {}", p.monitor);
            for m in &p.members {
                s.push_str(&format!("\n member {m}"));
            }
            sect(&s);
        }
    }
}

mod brace_hierarchy {
    use super::*;
    use std::fmt::Write as _;

    pub fn render(cfg: &DeviceConfig, out: &mut String) {
        let mut w = Writer { out, depth: 0 };

        w.open("system");
        w.leaf(&format!("host-name {}", cfg.hostname));
        if !cfg.users.is_empty() {
            w.open("login");
            for (name, u) in &cfg.users {
                w.open(&format!("user {name}"));
                w.leaf(&format!("class {}", u.role));
                w.close();
            }
            w.close();
        }
        if !cfg.ntp_servers.is_empty() {
            w.open("ntp");
            for s in &cfg.ntp_servers {
                w.leaf(&format!("server {s}"));
            }
            w.close();
        }
        w.close();

        if let Some(comm) = &cfg.snmp_community {
            w.open("snmp");
            w.leaf(&format!("community {comm}"));
            w.close();
        }

        if !cfg.interfaces.is_empty() {
            w.open("interfaces");
            for (&port, ifc) in &cfg.interfaces {
                w.open(&interface_name(cfg.dialect, port));
                if !ifc.description.is_empty() {
                    w.leaf(&format!("description \"{}\"", ifc.description));
                }
                w.leaf(&format!("mtu {}", ifc.mtu));
                if let Some(acl) = &ifc.acl_in {
                    w.leaf(&format!("filter input {acl}"));
                }
                if !ifc.enabled {
                    w.leaf("disable");
                }
                w.close();
            }
            w.close();
        }

        if !cfg.vlans.is_empty() {
            w.open("vlans");
            for (id, v) in &cfg.vlans {
                w.open(&v.name);
                w.leaf(&format!("vlan-id {id}"));
                for port in cfg.vlan_members(*id) {
                    w.leaf(&format!("interface {}", interface_name(cfg.dialect, port)));
                }
                w.close();
            }
            w.close();
        }

        if !cfg.acls.is_empty() {
            w.open("firewall");
            for (name, acl) in &cfg.acls {
                w.open(&format!("filter {name}"));
                for (i, r) in acl.rules.iter().enumerate() {
                    w.open(&format!("term t{i}"));
                    w.leaf(&format!("from protocol {} port {}", r.protocol, r.port));
                    w.leaf(if r.permit { "then accept" } else { "then discard" });
                    w.close();
                }
                w.close();
            }
            w.close();
        }

        if !cfg.qos.is_empty() {
            w.open("class-of-service");
            for (name, q) in &cfg.qos {
                w.open(name);
                w.leaf(&format!("dscp {}", q.dscp));
                w.close();
            }
            w.close();
        }

        let has_protocols = cfg.bgp.is_some()
            || cfg.ospf.is_some()
            || cfg.sflow.is_some()
            || cfg.features.spanning_tree
            || cfg.features.lacp
            || cfg.features.udld;
        if has_protocols {
            w.open("protocols");
            if let Some(ospf) = &cfg.ospf {
                w.open("ospf");
                w.leaf(&format!("process {}", ospf.process));
                for n in &ospf.networks {
                    w.leaf(&format!("area 0 network {n}"));
                }
                w.close();
            }
            if let Some(bgp) = &cfg.bgp {
                w.open("bgp");
                w.leaf(&format!("local-as {}", bgp.local_as));
                for (ip, ras) in &bgp.neighbors {
                    w.open(&format!("neighbor {ip}"));
                    w.leaf(&format!("peer-as {ras}"));
                    w.close();
                }
                w.close();
            }
            if cfg.features.spanning_tree {
                w.open("rstp");
                w.leaf("enable");
                w.close();
            }
            if cfg.features.lacp {
                w.open("lacp");
                w.leaf("enable");
                w.close();
            }
            if cfg.features.udld {
                w.open("udld");
                w.leaf("enable");
                w.close();
            }
            if let Some(sf) = &cfg.sflow {
                w.open("sflow");
                w.leaf(&format!("collector {}", sf.collector));
                w.leaf(&format!("rate {}", sf.rate));
                w.close();
            }
            w.close();
        }

        if cfg.features.dhcp_relay {
            w.open("forwarding-options");
            w.open("dhcp-relay");
            w.leaf("enable");
            w.close();
            w.close();
        }

        if !cfg.pools.is_empty() {
            w.open("load-balance");
            for (name, p) in &cfg.pools {
                w.open(&format!("pool {name}"));
                w.leaf(&format!("monitor {}", p.monitor));
                for m in &p.members {
                    w.leaf(&format!("member {m}"));
                }
                w.close();
            }
            w.close();
        }

        w.finish();
    }

    /// Indentation-tracking writer for brace blocks, appending to a
    /// caller-owned buffer.
    struct Writer<'a> {
        out: &'a mut String,
        depth: usize,
    }

    impl Writer<'_> {
        fn open(&mut self, header: &str) {
            let _ = writeln!(self.out, "{}{} {{", "    ".repeat(self.depth), header);
            self.depth += 1;
        }

        fn leaf(&mut self, line: &str) {
            let _ = writeln!(self.out, "{}{};", "    ".repeat(self.depth), line);
        }

        fn close(&mut self) {
            self.depth -= 1;
            let _ = writeln!(self.out, "{}}}", "    ".repeat(self.depth));
        }

        fn finish(self) {
            assert_eq!(self.depth, 0, "unbalanced braces in renderer");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::AclRule;

    fn sample(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("net0-sw-dev0", dialect);
        c.set_description(1, "link to net0-rtr-dev1");
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 10);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.apply_acl(1, "edge");
        c.bgp_add_neighbor(65001, "10.0.0.1", 65002);
        c.ospf_advertise(1, "10.0.0.0/8");
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.add_user("ops1", "operator");
        c.features.spanning_tree = true;
        c.features.dhcp_relay = true;
        c.set_sflow("192.0.2.9", 2048);
        c.set_qos_class("voice", 46);
        c.ntp_servers.push("192.0.2.1".into());
        c.snmp_community = Some("public".into());
        c
    }

    #[test]
    fn interface_names_round_trip() {
        assert_eq!(interface_name(Dialect::BlockKeyword, 7), "Eth0/7");
        assert_eq!(interface_name(Dialect::BraceHierarchy, 7), "xe-0/0/7");
        assert_eq!(parse_interface_name("Eth0/7"), Some(7));
        assert_eq!(parse_interface_name("xe-0/0/7"), Some(7));
        assert_eq!(parse_interface_name("Gig1/1"), None);
    }

    #[test]
    fn block_keyword_places_vlan_membership_on_interface() {
        let text = render_config(&sample(Dialect::BlockKeyword));
        assert!(text.contains("interface Eth0/1"));
        assert!(text.contains(" switchport access vlan 10"));
        // The vlan stanza itself does NOT list members in this dialect.
        let vlan_stanza: Vec<&str> = text
            .split("!\n")
            .filter(|s| s.starts_with("vlan 10"))
            .collect();
        assert_eq!(vlan_stanza.len(), 1);
        assert!(!vlan_stanza[0].contains("Eth0/1"));
    }

    #[test]
    fn brace_hierarchy_places_vlan_membership_on_vlan() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        assert!(text.contains("vlans {"));
        assert!(text.contains("interface xe-0/0/1;"), "member listed in vlans block");
        // The interface block must NOT mention the vlan.
        let iface_region = text
            .split("interfaces {")
            .nth(1)
            .unwrap()
            .split("vlans {")
            .next()
            .unwrap();
        assert!(!iface_region.contains("vlan"), "no vlan membership under interfaces");
    }

    #[test]
    fn acl_naming_differs_across_dialects() {
        let cisco = render_config(&sample(Dialect::BlockKeyword));
        let junos = render_config(&sample(Dialect::BraceHierarchy));
        assert!(cisco.contains("ip access-list extended edge"));
        assert!(junos.contains("filter edge {"));
        assert!(junos.contains("firewall {"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_config(&sample(Dialect::BraceHierarchy));
        let b = render_config(&sample(Dialect::BraceHierarchy));
        assert_eq!(a, b);
    }

    #[test]
    fn brace_output_is_balanced() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert!(opens >= 10, "non-trivial structure, got {opens} blocks");
    }

    #[test]
    fn empty_config_renders_minimal_text() {
        let c = DeviceConfig::new("empty", Dialect::BlockKeyword);
        let text = render_config(&c);
        assert!(text.starts_with("hostname empty"));
        let c = DeviceConfig::new("empty", Dialect::BraceHierarchy);
        let text = render_config(&c);
        assert!(text.contains("host-name empty;"));
    }

    #[test]
    fn all_semantic_sections_appear() {
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let text = render_config(&sample(d));
            for needle in ["65001", "65002", "10.0.0.1", "192.168.1.10:443", "ops1", "2048", "46", "public", "192.0.2.1"] {
                assert!(text.contains(needle), "{d:?} output missing {needle}:\n{text}");
            }
        }
    }
}
