//! Delta-native incremental inference over the snapshot archive.
//!
//! The full-parse pipeline materializes every distinct snapshot (~GBs of
//! text at paper scale), re-parses each one and diffs adjacent parses —
//! even though the archive already stores each history as base + line
//! deltas and successive snapshots differ in a handful of lines. This
//! module derives the same stanza-level change records **from the delta
//! stream**: string parsing happens only for stanza *segments* whose
//! interned line-id span has never been seen before, so the string-level
//! cost is proportional to changed bytes, not total bytes.
//!
//! The machinery, per network (one [`DeltaInference`] per
//! `infer_network` call, devices processed sequentially inside it):
//!
//! 1. **Line classification** ([`LineClasses`], built once per archive):
//!    every interned line is classified per dialect with a single byte —
//!    skip/indent/header for the block dialect, skip/leaf/open/close for
//!    the brace dialect. Classification agrees with the full parsers by
//!    construction (same trim/prefix rules, unit-tested against them).
//! 2. **Segmentation** (integer-only, per distinct snapshot state): the
//!    line-id sequence is cut into stanza segments — header to next
//!    header (block), balanced top-level brace group (brace). Malformed
//!    states (orphan indent, unbalanced braces, no hostname) are flagged
//!    unparseable exactly where the full parser errors.
//! 3. **Segment cache** (the incremental stanza index): segments are
//!    keyed by their exact id span; only novel spans are rendered and
//!    parsed — through the *same* parser cores as the full path
//!    (`parse_block_lines` / `parse_tree` + `brace_stanzas`) — into owned
//!    stanzas with interned `(dialect, kind, name)` keys ([`KeyId`]).
//!    Invalidation is automatic: any line change produces a different id
//!    span, which simply misses the cache; unchanged segments can never
//!    be stale because the key *is* the content.
//! 4. **Summaries + diff**: each parseable state keeps its key-sorted
//!    winner list (last stanza per key, matching the full diff's
//!    last-duplicate-wins indexing); diffing two states is a merge walk
//!    emitting `diff_configs`-equivalent added/removed/updated records
//!    without touching stanza text unless a key's winner moved.
//!
//! Equivalence with the full path is enforced by property tests
//! (arbitrary histories, both dialects, reverts, trailing-newline edge
//! cases) and by the pipeline-level oracle gate (`--infer-mode full`).

use crate::archive::{LineId, SnapshotArchive};
use crate::diff::{ChangeAction, StanzaChange};
use crate::parse::{brace_stanzas, parse_block_lines, parse_tree, BlockLines};
use crate::parse::{ParsedConfig, ParsedStanza};
use crate::typemap::{map_stanza_kind, ChangeType};
use mpa_model::device::Dialect;
use mpa_model::DeviceId;
use std::borrow::Cow;
use std::collections::HashMap;

// Per-line classes, one byte per interned line per dialect.
const BLOCK_SKIP: u8 = 0; // blank or `!` comment — ignored by the parser
const BLOCK_INDENT: u8 = 1; // indented body line — attaches to the stanza above
const BLOCK_HEADER: u8 = 2; // column-zero header — starts a stanza
const BLOCK_HOSTNAME: u8 = 3; // header whose kind is `hostname`
const BRACE_SKIP: u8 = 0; // blank — ignored
const BRACE_LEAF: u8 = 1; // statement line
const BRACE_OPEN: u8 = 2; // `... {` — opens a block
const BRACE_CLOSE: u8 = 3; // `}` — closes a block

/// Per-dialect structural class of every interned line in an archive.
///
/// Built once (before the per-network fan-out) and shared read-only by all
/// workers: classification is a pure function of line text, so a single
/// `Vec<u8>` lookup replaces all string inspection in the per-snapshot
/// segmentation scans.
#[derive(Debug)]
pub struct LineClasses {
    block: Vec<u8>,
    brace: Vec<u8>,
}

impl LineClasses {
    /// Classify every interned line of `archive`, for both dialects.
    pub fn new(archive: &SnapshotArchive) -> Self {
        let n = archive.n_interned_lines();
        let mut block = Vec::with_capacity(n);
        let mut brace = Vec::with_capacity(n);
        for i in 0..n {
            let line = archive.line_text(LineId(i as u32));
            block.push(classify_block(line));
            brace.push(classify_brace(line));
        }
        Self { block, brace }
    }

    fn of(&self, dialect: Dialect) -> &[u8] {
        match dialect {
            Dialect::BlockKeyword => &self.block,
            Dialect::BraceHierarchy => &self.brace,
        }
    }
}

/// Block-dialect class of one line, mirroring `parse_block_lines` exactly:
/// the skip check runs before the indent check, and a header is a
/// `hostname` header iff its first whitespace token is `hostname` (the
/// only way `classify_block_header` yields that kind, keyword rule and
/// open-world fallback alike).
fn classify_block(raw: &str) -> u8 {
    let t = raw.trim();
    if t.is_empty() || t == "!" {
        return BLOCK_SKIP;
    }
    if raw.starts_with(' ') || raw.starts_with('\t') {
        return BLOCK_INDENT;
    }
    if raw.split_whitespace().next() == Some("hostname") {
        return BLOCK_HOSTNAME;
    }
    BLOCK_HEADER
}

/// Brace-dialect class of one line, mirroring `parse_tree` exactly
/// (trim first; the open check precedes the close check).
fn classify_brace(raw: &str) -> u8 {
    let t = raw.trim();
    if t.is_empty() {
        BRACE_SKIP
    } else if t.ends_with('{') {
        BRACE_OPEN
    } else if t == "}" {
        BRACE_CLOSE
    } else {
        BRACE_LEAF
    }
}

fn dialect_ix(dialect: Dialect) -> usize {
    match dialect {
        Dialect::BlockKeyword => 0,
        Dialect::BraceHierarchy => 1,
    }
}

/// Fast multiply-mix hash of an id span (FxHash-style). Replay hashes
/// every snapshot's full id sequence and every segment span once, so this
/// sits on the replay hot path where SipHash is measurably slower. The
/// hash function cannot affect outputs: collisions are resolved by exact
/// span comparison and slot/entry ids are assigned in first-appearance
/// order, so any hash yields identical results — only lookup speed varies.
#[inline]
fn hash_ids(ids: &[LineId], seed: u64) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95; // FxHash's 64-bit multiplier
    let mut h = seed.wrapping_add(ids.len() as u64).wrapping_mul(K);
    for &LineId(id) in ids {
        h = (h.rotate_left(5) ^ u64::from(id)).wrapping_mul(K);
    }
    h
}

/// Interned `(dialect, kind, name)` stanza key. Ids are assigned in
/// first-appearance order within one [`DeltaInference`] engine and are
/// only meaningful there; use [`DeltaInference::change_type`] and
/// [`DeltaInference::stanza_changes`] to resolve them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(u32);

/// Stanza-key interner with memoized vendor-agnostic change types.
#[derive(Debug, Default)]
struct KeyInterner {
    /// Lookup-only (never iterated), so determinism is unaffected.
    map: HashMap<(usize, String, String), u32>,
    /// `(kind, name)` per id, in intern order.
    names: Vec<(String, String)>,
    /// `map_stanza_kind(dialect, kind)` per id, computed once.
    types: Vec<ChangeType>,
}

impl KeyInterner {
    fn intern(&mut self, dialect: Dialect, kind: &str, name: &str) -> KeyId {
        // mpa-lint: allow(R8) -- probe key allocation; hits the map and returns on the hot path
        let probe = (dialect_ix(dialect), kind.to_string(), name.to_string());
        if let Some(&id) = self.map.get(&probe) {
            return KeyId(id);
        }
        let id = u32::try_from(self.names.len()).expect("stanza key overflow");
        // mpa-lint: allow(R8) -- cold intern-miss path: each distinct stanza key is cloned once ever
        self.names.push((probe.1.clone(), probe.2.clone()));
        self.types.push(map_stanza_kind(dialect, kind));
        self.map.insert(probe, id);
        KeyId(id)
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// One cached stanza of a parsed segment (owned: segments outlive any
/// single snapshot state).
#[derive(Debug)]
struct SegStanza {
    key: KeyId,
    kind: String,
    name: String,
    lines: Vec<String>,
}

/// One parsed stanza segment: the unit of incremental re-parsing.
#[derive(Debug)]
struct Segment {
    stanzas: Vec<SegStanza>,
    /// Hostname effect of this segment in document-order folding:
    /// `None` = no hostname declaration; `Some(h)` = sets the hostname to
    /// `h`, where `h == None` resets it (the block dialect's bare
    /// `hostname` header).
    hostname: Option<Option<String>>,
}

/// The incremental stanza index for one dialect: parsed segments keyed by
/// their exact interned line-id span.
#[derive(Debug, Default)]
struct SegCache {
    entries: Vec<Segment>,
    /// Arena of the entries' id spans (the cache key material).
    ids: Vec<LineId>,
    /// Per-entry `(start, end)` into `ids`.
    spans: Vec<(usize, usize)>,
    /// Span-hash → candidate entries. Lookup-only; collisions resolved by
    /// comparing the stored spans, so determinism is unaffected.
    index: HashMap<u64, Vec<u32>>,
}

/// The analysis of one distinct snapshot state: its segment list, its
/// key-sorted winner summary, and the folded hostname. `None` for states
/// the full parser would reject.
#[derive(Debug)]
struct SlotParse {
    segs: Vec<u32>,
    /// `(key, entry, stanza_ix)` of the *last* stanza per key, sorted by
    /// key — the winner under the full diff's last-duplicate-wins map.
    summary: Vec<(KeyId, u32, u32)>,
    hostname: String,
}

/// One device's replayed history: the canonical distinct-state slot of
/// every snapshot plus each distinct state's analysis. Produced by
/// [`DeltaInference::replay_device`]; indices mirror
/// [`SnapshotArchive::device_metas`].
#[derive(Debug)]
pub struct DeviceReplay {
    dialect: Dialect,
    canon: Vec<u32>,
    slots: Vec<Option<SlotParse>>,
}

impl DeviceReplay {
    /// Snapshots in the replayed history.
    pub fn n_snapshots(&self) -> usize {
        self.canon.len()
    }

    /// Distinct snapshot states (dedup on `(line ids, byte length)`,
    /// identical to the materializing path's canonicalization).
    pub fn n_distinct(&self) -> usize {
        self.slots.len()
    }

    /// Distinct-state slot carrying snapshot `ix` (first-appearance order).
    pub fn slot(&self, ix: usize) -> u32 {
        self.canon[ix]
    }

    /// Whether a distinct state parses (the full parser would succeed).
    pub fn parseable(&self, slot: u32) -> bool {
        self.slots[slot as usize].is_some()
    }
}

/// The per-network delta-native inference engine. See the module docs for
/// the architecture; one engine serves every device of a network so the
/// segment cache is shared across devices (stanzas repeat heavily within
/// a network).
#[derive(Debug)]
pub struct DeltaInference<'a> {
    archive: &'a SnapshotArchive,
    classes: &'a LineClasses,
    keys: KeyInterner,
    caches: [SegCache; 2],
    // Winner-stamping scratch (generation-tagged, grown to the key count).
    mark: Vec<u64>,
    win: Vec<(u32, u32)>,
    gen: u64,
    // Per-device state-dedup scratch, cleared by each `replay_device`.
    dedup_index: HashMap<u64, Vec<u32>>,
    state_ids: Vec<LineId>,
    state_spans: Vec<(usize, usize, usize)>,
    // Render scratch for novel brace segments.
    scratch: String,
}

impl<'a> DeltaInference<'a> {
    /// An engine over `archive` using the prebuilt `classes`.
    pub fn new(archive: &'a SnapshotArchive, classes: &'a LineClasses) -> Self {
        Self {
            archive,
            classes,
            keys: KeyInterner::default(),
            caches: [SegCache::default(), SegCache::default()],
            mark: Vec::new(),
            win: Vec::new(),
            gen: 0,
            dedup_index: HashMap::new(),
            state_ids: Vec::new(),
            state_spans: Vec::new(),
            scratch: String::new(),
        }
    }

    /// Replay one device's history through the delta cursor: dedup states
    /// on `(line ids, byte length)` and analyze each distinct state once
    /// (segmentation always; string parsing only for cache-novel
    /// segments). `None` if the device has no snapshots.
    pub fn replay_device(&mut self, dev: DeviceId, dialect: Dialect) -> Option<DeviceReplay> {
        let mut cursor = self.archive.delta_cursor(dev)?;
        self.dedup_index.clear();
        self.state_ids.clear();
        self.state_spans.clear();
        let mut canon: Vec<u32> = Vec::with_capacity(cursor.len());
        let mut slots: Vec<Option<SlotParse>> = Vec::new();
        loop {
            let text_len = cursor.text_len();
            let hash = hash_ids(cursor.lines(), text_len as u64);
            let found = self.dedup_index.get(&hash).and_then(|cands| {
                cands.iter().copied().find(|&s| {
                    let (start, end, len) = self.state_spans[s as usize];
                    len == text_len && self.state_ids[start..end] == *cursor.lines()
                })
            });
            let slot = match found {
                Some(s) => s,
                None => {
                    let s = u32::try_from(slots.len()).expect("distinct state overflow");
                    let start = self.state_ids.len();
                    self.state_ids.extend_from_slice(cursor.lines());
                    self.state_spans.push((start, self.state_ids.len(), text_len));
                    self.dedup_index.entry(hash).or_default().push(s);
                    let parse = self.analyze_state(dialect, cursor.lines());
                    slots.push(parse);
                    s
                }
            };
            canon.push(slot);
            if cursor.advance().is_none() {
                break;
            }
        }
        Some(DeviceReplay { dialect, canon, slots })
    }

    /// Segment one distinct state and fold its hostname; `None` where the
    /// full parser would error (orphan indent, unbalanced braces, missing
    /// hostname). Integer-only except for cache-novel segments.
    fn analyze_state(&mut self, dialect: Dialect, ids: &[LineId]) -> Option<SlotParse> {
        let classes = self.classes.of(dialect);
        let mut segs: Vec<u32> = Vec::new();
        match dialect {
            Dialect::BlockKeyword => {
                let mut i = 0;
                // Preamble: skips are fine, an indented line is an orphan.
                while i < ids.len() {
                    match classes[ids[i].0 as usize] {
                        BLOCK_SKIP => i += 1,
                        BLOCK_INDENT => return None,
                        _ => break,
                    }
                }
                // Each segment: one header plus everything up to the next
                // header (body lines and interior/trailing skips included,
                // so the span key covers exactly the lines whose change
                // could affect this stanza).
                while i < ids.len() {
                    let start = i;
                    i += 1;
                    while i < ids.len()
                        && !matches!(
                            classes[ids[i].0 as usize],
                            BLOCK_HEADER | BLOCK_HOSTNAME
                        )
                    {
                        i += 1;
                    }
                    segs.push(self.seg_for(dialect, &ids[start..i]));
                }
            }
            Dialect::BraceHierarchy => {
                let mut i = 0;
                while i < ids.len() {
                    match classes[ids[i].0 as usize] {
                        // Root-level leaves are discarded by the full
                        // parser; skips are ignored everywhere.
                        BRACE_SKIP | BRACE_LEAF => i += 1,
                        // A close at depth zero is unbalanced.
                        BRACE_CLOSE => return None,
                        _open => {
                            let start = i;
                            let mut depth = 1usize;
                            i += 1;
                            while i < ids.len() && depth > 0 {
                                match classes[ids[i].0 as usize] {
                                    BRACE_OPEN => depth += 1,
                                    BRACE_CLOSE => depth -= 1,
                                    _ => {}
                                }
                                i += 1;
                            }
                            if depth > 0 {
                                return None; // EOF inside a block
                            }
                            segs.push(self.seg_for(dialect, &ids[start..i]));
                        }
                    }
                }
            }
        }
        // Hostname fold in document order (later declarations win; a
        // block-dialect bare `hostname` resets).
        let mut hostname: Option<String> = None;
        {
            // mpa-lint: allow(R7) -- dialect_ix maps the two-variant Dialect onto the two cache slots
            let cache = &self.caches[dialect_ix(dialect)];
            for &seg in &segs {
                if let Some(update) = &cache.entries[seg as usize].hostname {
                    hostname = update.clone();
                }
            }
        }
        let hostname = hostname?;
        let summary = self.build_summary(dialect, &segs);
        Some(SlotParse { segs, summary, hostname })
    }

    /// The cache entry for an id span, parsing it if novel.
    fn seg_for(&mut self, dialect: Dialect, ids: &[LineId]) -> u32 {
        let tag = dialect_ix(dialect);
        let hash = hash_ids(ids, 0);
        if let Some(cands) = self.caches[tag].index.get(&hash) {
            let cache = &self.caches[tag];
            for &e in cands {
                let (start, end) = cache.spans[e as usize];
                if cache.ids[start..end] == *ids {
                    return e;
                }
            }
        }
        let (seg, bytes) =
            parse_segment(self.archive, &mut self.keys, &mut self.scratch, dialect, ids);
        mpa_obs::counters::INFER_STANZAS_REPARSED.add(seg.stanzas.len() as u64);
        mpa_obs::counters::INFER_DELTA_BYTES.add(bytes);
        let cache = &mut self.caches[tag];
        let e = u32::try_from(cache.entries.len()).expect("segment cache overflow");
        let start = cache.ids.len();
        cache.ids.extend_from_slice(ids);
        cache.spans.push((start, cache.ids.len()));
        cache.index.entry(hash).or_default().push(e);
        cache.entries.push(seg);
        e
    }

    /// Key-sorted winner list of one state: the last stanza per key in
    /// document order, which is what the full diff's map indexing keeps.
    fn build_summary(&mut self, dialect: Dialect, segs: &[u32]) -> Vec<(KeyId, u32, u32)> {
        let nk = self.keys.len();
        if self.mark.len() < nk {
            self.mark.resize(nk, 0);
            self.win.resize(nk, (0, 0));
        }
        self.gen += 1;
        let g = self.gen;
        let mut out: Vec<(KeyId, u32, u32)> = Vec::new();
        // mpa-lint: allow(R7) -- dialect_ix maps the two-variant Dialect onto the two cache slots
        let cache = &self.caches[dialect_ix(dialect)];
        for &seg in segs {
            for (ti, st) in cache.entries[seg as usize].stanzas.iter().enumerate() {
                let k = st.key.0 as usize;
                if self.mark[k] != g {
                    self.mark[k] = g;
                    out.push((st.key, 0, 0));
                }
                self.win[k] = (seg, ti as u32);
            }
        }
        out.sort_unstable_by_key(|&(k, _, _)| k);
        for entry in &mut out {
            let (seg, ti) = self.win[entry.0 .0 as usize];
            entry.1 = seg;
            entry.2 = ti;
        }
        out
    }

    /// Stanza changes between two parseable distinct states, written into
    /// `out` as `(key, action)` pairs ordered by key id. Equivalent to
    /// `diff_configs` on the two states' full parses (property-tested),
    /// computed as a merge walk of the winner summaries: stanza text is
    /// only compared when a key's winner moved between states.
    ///
    /// # Panics
    /// Panics if either slot is unparseable — callers must route only
    /// parseable states here, as the full path routes only successful
    /// parses into its diff.
    pub fn changes_between(
        &self,
        replay: &DeviceReplay,
        old_slot: u32,
        new_slot: u32,
        out: &mut Vec<(KeyId, ChangeAction)>,
    ) {
        out.clear();
        if old_slot == new_slot {
            return;
        }
        let old = replay.slots[old_slot as usize].as_ref().expect("old state parseable");
        let new = replay.slots[new_slot as usize].as_ref().expect("new state parseable");
        // mpa-lint: allow(R7) -- dialect_ix maps the two-variant Dialect onto the two cache slots
        let cache = &self.caches[dialect_ix(replay.dialect)];
        let (a, b) = (&old.summary, &new.summary);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push((a[i].0, ChangeAction::Removed));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((b[j].0, ChangeAction::Added));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if (a[i].1, a[i].2) != (b[j].1, b[j].2) {
                        let sa = &cache.entries[a[i].1 as usize].stanzas[a[i].2 as usize];
                        let sb = &cache.entries[b[j].1 as usize].stanzas[b[j].2 as usize];
                        if sa.lines != sb.lines {
                            out.push((a[i].0, ChangeAction::Updated));
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for e in &a[i..] {
            out.push((e.0, ChangeAction::Removed));
        }
        for e in &b[j..] {
            out.push((e.0, ChangeAction::Added));
        }
    }

    /// The vendor-agnostic change type of an interned stanza key.
    pub fn change_type(&self, key: KeyId) -> ChangeType {
        self.keys.types[key.0 as usize]
    }

    /// Rendered stanza changes between two parseable states, sorted by
    /// `(kind, name)` — byte-equivalent to `diff_configs` on the full
    /// parses of the two states.
    pub fn stanza_changes(
        &self,
        replay: &DeviceReplay,
        old_slot: u32,
        new_slot: u32,
    ) -> Vec<StanzaChange> {
        let mut pairs = Vec::new();
        self.changes_between(replay, old_slot, new_slot, &mut pairs);
        let mut out: Vec<StanzaChange> = pairs
            .into_iter()
            .map(|(key, action)| {
                let (kind, name) = &self.keys.names[key.0 as usize];
                StanzaChange {
                    kind: kind.clone(),
                    name: name.clone(),
                    action,
                    change_type: self.keys.types[key.0 as usize],
                }
            })
            .collect();
        out.sort_by(|x, y| (&x.kind, &x.name).cmp(&(&y.kind, &y.name)));
        out
    }

    /// Assemble the full parsed configuration of a parseable state from
    /// its cached segments (borrowing the cached stanza text; equal to the
    /// full parser's output). `None` for unparseable states.
    pub fn state_config<'s>(
        &'s self,
        replay: &'s DeviceReplay,
        slot: u32,
    ) -> Option<ParsedConfig<'s>> {
        let state = replay.slots[slot as usize].as_ref()?;
        // mpa-lint: allow(R7) -- dialect_ix maps the two-variant Dialect onto the two cache slots
        let cache = &self.caches[dialect_ix(replay.dialect)];
        let mut stanzas = Vec::new();
        for &seg in &state.segs {
            for st in &cache.entries[seg as usize].stanzas {
                stanzas.push(ParsedStanza {
                    kind: Cow::Borrowed(st.kind.as_str()),
                    name: Cow::Borrowed(st.name.as_str()),
                    lines: st.lines.iter().map(|l| Cow::Borrowed(l.as_str())).collect(),
                });
            }
        }
        Some(ParsedConfig {
            hostname: Cow::Borrowed(state.hostname.as_str()),
            dialect: replay.dialect,
            stanzas,
        })
    }
}

/// Parse one cache-novel segment through the shared parser cores,
/// returning the owned segment and the bytes of text it covered (line
/// lengths + newlines — the "changed bytes" the delta path actually pays
/// string work for).
fn parse_segment(
    archive: &SnapshotArchive,
    keys: &mut KeyInterner,
    scratch: &mut String,
    dialect: Dialect,
    ids: &[LineId],
) -> (Segment, u64) {
    match dialect {
        Dialect::BlockKeyword => {
            let mut bytes = 0u64;
            let BlockLines { stanzas, hostname } = parse_block_lines(ids.iter().map(|&id| {
                let line = archive.line_text(id);
                bytes += line.len() as u64 + 1;
                line
            }))
            .expect("segment starts at a header line");
            let stanzas = own_stanzas(keys, dialect, &stanzas);
            let hostname = hostname.map(|h| h.map(str::to_string));
            (Segment { stanzas, hostname }, bytes)
        }
        Dialect::BraceHierarchy => {
            scratch.clear();
            for &id in ids {
                scratch.push_str(archive.line_text(id));
                scratch.push('\n');
            }
            let tree =
                parse_tree(scratch.as_str()).expect("segment braces balanced by construction");
            let (stanzas, hostname) = brace_stanzas(&tree);
            let stanzas = own_stanzas(keys, dialect, &stanzas);
            let hostname = hostname.map(|h| Some(h.to_string()));
            (Segment { stanzas, hostname }, scratch.len() as u64)
        }
    }
}

fn own_stanzas(
    keys: &mut KeyInterner,
    dialect: Dialect,
    stanzas: &[ParsedStanza<'_>],
) -> Vec<SegStanza> {
    stanzas
        .iter()
        .map(|s| SegStanza {
            key: keys.intern(dialect, &s.kind, &s.name),
            kind: s.kind.to_string(),
            name: s.name.to_string(),
            lines: s.lines.iter().map(|l| l.to_string()).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_configs;
    use crate::parse::parse_config;
    use crate::snapshot::{Login, Snapshot, SnapshotMeta};
    use mpa_model::Timestamp;

    fn archive_of(dev: u32, texts: &[&str]) -> SnapshotArchive {
        let mut a = SnapshotArchive::new();
        for (i, t) in texts.iter().enumerate() {
            a.push(Snapshot {
                meta: SnapshotMeta {
                    device: DeviceId(dev),
                    time: Timestamp(i as u64 * 10),
                    login: Login::new("x"),
                },
                text: (*t).to_string(),
            })
            .unwrap();
        }
        a
    }

    /// Replay `texts` through the engine and check every state's assembled
    /// config and every adjacent transition's changes against the full
    /// parse + diff oracle.
    fn check_equivalence(dialect: Dialect, texts: &[&str]) {
        let archive = archive_of(1, texts);
        let classes = LineClasses::new(&archive);
        let mut engine = DeltaInference::new(&archive, &classes);
        let replay = engine.replay_device(DeviceId(1), dialect).expect("history");
        assert_eq!(replay.n_snapshots(), texts.len());
        let oracle: Vec<Option<ParsedConfig<'_>>> =
            texts.iter().map(|t| parse_config(t, dialect).ok()).collect();
        for (ix, want) in oracle.iter().enumerate() {
            let slot = replay.slot(ix);
            assert_eq!(replay.parseable(slot), want.is_some(), "snapshot {ix} parseability");
            if let Some(want) = want {
                let got = engine.state_config(&replay, slot).expect("parseable");
                assert_eq!(&got, want, "snapshot {ix} assembled config");
            }
        }
        for ix in 1..texts.len() {
            let (Some(old), Some(new)) = (&oracle[ix - 1], &oracle[ix]) else {
                continue;
            };
            let want = diff_configs(old, new);
            let got = engine.stanza_changes(&replay, replay.slot(ix - 1), replay.slot(ix));
            assert_eq!(got, want, "transition {} -> {}", ix - 1, ix);
        }
    }

    #[test]
    fn block_dialect_matches_oracle_on_edits_reverts_and_newlines() {
        check_equivalence(
            Dialect::BlockKeyword,
            &[
                "hostname h\n!\nvlan 10\n name v10\n!\n",
                "hostname h\n!\nvlan 10\n name v10-renamed\n!\n",
                "hostname h\n!\nvlan 10\n name v10-renamed\n!\nvlan 20\n name v20\n!\n",
                // Revert to the first state.
                "hostname h\n!\nvlan 10\n name v10\n!\n",
                // Same lines, no trailing newline: a distinct state whose
                // parse (and diff against the previous) is identical.
                "hostname h\n!\nvlan 10\n name v10\n!",
                // Hostname moves (hostname is a header stanza too).
                "hostname h2\n!\nvlan 10\n name v10\n!\n",
            ],
        );
    }

    #[test]
    fn block_dialect_flags_unparseable_states_like_the_oracle() {
        check_equivalence(
            Dialect::BlockKeyword,
            &[
                "hostname h\nvlan 10\n name v10\n",
                " orphan-indent first\nhostname h\n",   // orphan line
                "vlan 10\n name v10\n",                 // missing hostname
                "",                                     // empty text
                "hostname\n!\n",                        // bare hostname resets
                "hostname h\nvlan 10\n name v10\n name extra\n",
            ],
        );
    }

    #[test]
    fn brace_dialect_matches_oracle_on_edits_reverts_and_newlines() {
        check_equivalence(
            Dialect::BraceHierarchy,
            &[
                "system {\n host-name h;\n}\nvlans {\n v10 {\n vlan-id 10;\n }\n}\n",
                "system {\n host-name h;\n}\nvlans {\n v10 {\n vlan-id 11;\n }\n}\n",
                // Add a top-level block.
                "system {\n host-name h;\n}\nvlans {\n v10 {\n vlan-id 11;\n }\n}\nprotocols {\n rstp {\n enable;\n }\n}\n",
                // Revert.
                "system {\n host-name h;\n}\nvlans {\n v10 {\n vlan-id 10;\n }\n}\n",
                // Trailing-newline variant of the same lines.
                "system {\n host-name h;\n}\nvlans {\n v10 {\n vlan-id 10;\n }\n}",
            ],
        );
    }

    #[test]
    fn brace_dialect_flags_unparseable_states_like_the_oracle() {
        check_equivalence(
            Dialect::BraceHierarchy,
            &[
                "system {\n host-name h;\n}\n",
                "system {\n host-name h;\n",      // unbalanced open
                "}\nsystem {\n host-name h;\n}\n", // stray close
                "snmp {\n community public;\n}\n", // missing hostname
                "system {\n host-name h;\n}\nsystem {\n services;\n}\n",
            ],
        );
    }

    #[test]
    fn duplicate_stanza_keys_follow_last_wins() {
        // Two stanzas with the same (kind, name): the diff must track the
        // *last* one, exactly like the full diff's map indexing.
        check_equivalence(
            Dialect::BlockKeyword,
            &[
                "hostname h\nvlan 10\n name first\nvlan 10\n name second\n",
                "hostname h\nvlan 10\n name first\nvlan 10\n name changed\n",
                // Winner content unchanged but the duplicate removed: the
                // survivor has equal lines, so no change is reported for
                // the key (matching the oracle).
                "hostname h\nvlan 10\n name changed\n",
            ],
        );
    }

    #[test]
    fn segment_cache_only_parses_novel_segments() {
        let texts = [
            "hostname h\n!\nvlan 10\n name v10\n!\nvlan 20\n name v20\n!\n",
            "hostname h\n!\nvlan 10\n name v10-edited\n!\nvlan 20\n name v20\n!\n",
        ];
        let archive = archive_of(1, &texts);
        let classes = LineClasses::new(&archive);
        let mut engine = DeltaInference::new(&archive, &classes);
        engine.replay_device(DeviceId(1), Dialect::BlockKeyword).expect("history");
        // State 1: hostname + vlan10 + vlan20 = 3 novel segments. State 2
        // only re-parses the edited vlan10 segment. (Asserted on the
        // engine's own cache — the obs counter is process-global and other
        // tests increment it concurrently.)
        let entries = engine.caches[dialect_ix(Dialect::BlockKeyword)].entries.len();
        assert_eq!(entries, 4, "3 base segments + 1 changed segment");
    }
}
