//! Semantic device configuration: the structured state an operator (or
//! automation) edits.
//!
//! [`DeviceConfig`] is the *source of truth* a network-management system
//! holds for one device. The operational simulator mutates it through the
//! semantic methods below (assign an interface to a VLAN, add an ACL rule,
//! resize a pool, …); the [`crate::render`] module then serializes it to
//! dialect-specific text, and only that text is visible to the inference
//! pipeline — mirroring reality, where intent is not logged (§2 of the
//! paper: "management practices are not explicitly logged").
//!
//! Every mutator keeps the config internally consistent (e.g. removing a
//! VLAN detaches its member interfaces) so that rendered snapshots always
//! parse cleanly.

use mpa_model::device::Dialect;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of one switched/routed port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceCfg {
    /// Free-form description; link descriptions follow the pattern
    /// `link to <peer-hostname>` so inter-device references are extractable.
    pub description: String,
    /// Access VLAN membership, if any.
    pub access_vlan: Option<u16>,
    /// Inbound ACL/filter applied to the port.
    pub acl_in: Option<String>,
    /// Maximum transmission unit.
    pub mtu: u16,
    /// Administrative state.
    pub enabled: bool,
}

impl Default for InterfaceCfg {
    fn default() -> Self {
        Self { description: String::new(), access_vlan: None, acl_in: None, mtu: 1500, enabled: true }
    }
}

/// A named VLAN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VlanCfg {
    /// Human-readable name (`v<id>` by convention).
    pub name: String,
}

/// One access-control rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AclRule {
    /// `permit` or `deny`.
    pub permit: bool,
    /// `tcp` or `udp`.
    pub protocol: String,
    /// Destination port matched.
    pub port: u16,
}

/// A named ACL (Cisco dialect: `ip access-list`; Juniper dialect:
/// `firewall filter` — the paper's canonical cross-vendor typing example).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AclCfg {
    /// Ordered rules.
    pub rules: Vec<AclRule>,
}

/// BGP routing process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpCfg {
    /// Local autonomous system number.
    pub local_as: u32,
    /// Neighbor address → remote AS.
    pub neighbors: BTreeMap<String, u32>,
}

/// OSPF routing process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OspfCfg {
    /// Process id.
    pub process: u32,
    /// Backbone area advertised networks (prefix strings).
    pub networks: Vec<String>,
}

/// A load-balancer server pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolCfg {
    /// Health-monitor type (`http`, `tcp`, ...).
    pub monitor: String,
    /// Member endpoints, `ip:port`.
    pub members: BTreeSet<String>,
}

/// A local user account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserCfg {
    /// Authorization class.
    pub role: String,
}

/// Layer-2 feature toggles; each enabled feature counts as one data-plane
/// protocol in use (paper Table 1, line D4; Appendix A Fig 11(b)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Features {
    /// Spanning tree (rapid PVST / RSTP).
    pub spanning_tree: bool,
    /// Link aggregation (LACP).
    pub lacp: bool,
    /// Unidirectional link detection.
    pub udld: bool,
    /// DHCP relay.
    pub dhcp_relay: bool,
}

/// sFlow export settings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SflowCfg {
    /// Collector address.
    pub collector: String,
    /// Sampling rate (1 in N packets).
    pub rate: u32,
}

/// A QoS class with a DSCP marking.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosClass {
    /// DSCP value assigned to the class.
    pub dscp: u8,
}

/// The full semantic configuration of one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Device hostname (appears in the rendered config).
    pub hostname: String,
    /// Rendering dialect, fixed by the device's vendor.
    pub dialect: Dialect,
    /// Ports by port number.
    pub interfaces: BTreeMap<u16, InterfaceCfg>,
    /// VLANs by id.
    pub vlans: BTreeMap<u16, VlanCfg>,
    /// ACLs by name.
    pub acls: BTreeMap<String, AclCfg>,
    /// BGP process, if routing.
    pub bgp: Option<BgpCfg>,
    /// OSPF process, if routing.
    pub ospf: Option<OspfCfg>,
    /// Load-balancer pools by name (load balancers / ADCs only).
    pub pools: BTreeMap<String, PoolCfg>,
    /// Local user accounts.
    pub users: BTreeMap<String, UserCfg>,
    /// L2 feature toggles.
    pub features: L2Features,
    /// sFlow export.
    pub sflow: Option<SflowCfg>,
    /// QoS classes by name.
    pub qos: BTreeMap<String, QosClass>,
    /// NTP servers.
    pub ntp_servers: Vec<String>,
    /// SNMP community string.
    pub snmp_community: Option<String>,
}

impl DeviceConfig {
    /// A fresh config with nothing but a hostname.
    pub fn new(hostname: impl Into<String>, dialect: Dialect) -> Self {
        Self {
            hostname: hostname.into(),
            dialect,
            interfaces: BTreeMap::new(),
            vlans: BTreeMap::new(),
            acls: BTreeMap::new(),
            bgp: None,
            ospf: None,
            pools: BTreeMap::new(),
            users: BTreeMap::new(),
            features: L2Features::default(),
            sflow: None,
            qos: BTreeMap::new(),
            ntp_servers: Vec::new(),
            snmp_community: None,
        }
    }

    // --- interface operations -------------------------------------------

    /// Create (or reset) a port.
    pub fn add_interface(&mut self, port: u16) -> &mut InterfaceCfg {
        self.interfaces.entry(port).or_default()
    }

    /// Set a port's description.
    pub fn set_description(&mut self, port: u16, desc: impl Into<String>) {
        self.add_interface(port).description = desc.into();
    }

    /// Assign a port to an access VLAN, creating the VLAN if needed.
    ///
    /// This single semantic operation is the paper's cross-vendor typing
    /// example: rendered on the block-keyword dialect it edits the
    /// *interface* stanza (`switchport access vlan N`); on the
    /// brace-hierarchy dialect it edits the *vlans* stanza (member list).
    pub fn assign_interface_vlan(&mut self, port: u16, vlan: u16) {
        self.vlans.entry(vlan).or_insert_with(|| VlanCfg { name: format!("v{vlan}") });
        self.add_interface(port).access_vlan = Some(vlan);
    }

    /// Detach a port from its access VLAN.
    pub fn clear_interface_vlan(&mut self, port: u16) {
        if let Some(ifc) = self.interfaces.get_mut(&port) {
            ifc.access_vlan = None;
        }
    }

    /// Apply an ACL inbound on a port (the ACL must already exist).
    ///
    /// # Panics
    /// Panics if the ACL does not exist — simulator bugs should fail loudly.
    pub fn apply_acl(&mut self, port: u16, acl: &str) {
        assert!(self.acls.contains_key(acl), "ACL {acl} not defined on {}", self.hostname);
        self.add_interface(port).acl_in = Some(acl.to_string());
    }

    /// Toggle a port's administrative state.
    pub fn set_enabled(&mut self, port: u16, enabled: bool) {
        self.add_interface(port).enabled = enabled;
    }

    /// Set a port's MTU.
    pub fn set_mtu(&mut self, port: u16, mtu: u16) {
        self.add_interface(port).mtu = mtu;
    }

    // --- VLAN operations --------------------------------------------------

    /// Create a VLAN (idempotent).
    pub fn add_vlan(&mut self, vlan: u16) {
        self.vlans.entry(vlan).or_insert_with(|| VlanCfg { name: format!("v{vlan}") });
    }

    /// Remove a VLAN, detaching all member interfaces.
    pub fn remove_vlan(&mut self, vlan: u16) {
        self.vlans.remove(&vlan);
        for ifc in self.interfaces.values_mut() {
            if ifc.access_vlan == Some(vlan) {
                ifc.access_vlan = None;
            }
        }
    }

    /// Ports currently assigned to `vlan`, ascending.
    pub fn vlan_members(&self, vlan: u16) -> Vec<u16> {
        self.interfaces
            .iter()
            .filter(|(_, c)| c.access_vlan == Some(vlan))
            .map(|(&p, _)| p)
            .collect()
    }

    // --- ACL operations ---------------------------------------------------

    /// Create an empty ACL (idempotent).
    pub fn add_acl(&mut self, name: impl Into<String>) {
        self.acls.entry(name.into()).or_default();
    }

    /// Append a rule to an ACL, creating the ACL if needed.
    pub fn acl_add_rule(&mut self, name: &str, rule: AclRule) {
        self.acls.entry(name.to_string()).or_default().rules.push(rule);
    }

    /// Remove the rule at `index` from an ACL, if it exists.
    pub fn acl_remove_rule(&mut self, name: &str, index: usize) {
        if let Some(acl) = self.acls.get_mut(name) {
            if index < acl.rules.len() {
                acl.rules.remove(index);
            }
        }
    }

    /// Delete an ACL and detach it from any interface.
    pub fn remove_acl(&mut self, name: &str) {
        self.acls.remove(name);
        for ifc in self.interfaces.values_mut() {
            if ifc.acl_in.as_deref() == Some(name) {
                ifc.acl_in = None;
            }
        }
    }

    // --- routing operations -----------------------------------------------

    /// Enable BGP with a local AS (idempotent; keeps existing neighbors).
    pub fn enable_bgp(&mut self, local_as: u32) {
        if self.bgp.is_none() {
            self.bgp = Some(BgpCfg { local_as, neighbors: BTreeMap::new() });
        }
    }

    /// Add (or update) a BGP neighbor. Enables BGP with `local_as` if not
    /// yet running.
    pub fn bgp_add_neighbor(&mut self, local_as: u32, neighbor_ip: &str, remote_as: u32) {
        self.enable_bgp(local_as);
        self.bgp
            .as_mut()
            .expect("just enabled")
            .neighbors
            .insert(neighbor_ip.to_string(), remote_as);
    }

    /// Remove a BGP neighbor, if present.
    pub fn bgp_remove_neighbor(&mut self, neighbor_ip: &str) {
        if let Some(bgp) = self.bgp.as_mut() {
            bgp.neighbors.remove(neighbor_ip);
        }
    }

    /// Enable OSPF and advertise a network.
    pub fn ospf_advertise(&mut self, process: u32, network: &str) {
        let ospf = self
            .ospf
            .get_or_insert_with(|| OspfCfg { process, networks: Vec::new() });
        if !ospf.networks.iter().any(|n| n == network) {
            ospf.networks.push(network.to_string());
        }
    }

    // --- pool operations ----------------------------------------------------

    /// Create a pool (idempotent).
    pub fn add_pool(&mut self, name: impl Into<String>, monitor: impl Into<String>) {
        self.pools
            .entry(name.into())
            .or_insert_with(|| PoolCfg { monitor: monitor.into(), members: BTreeSet::new() });
    }

    /// Add a member endpoint to a pool, creating the pool if needed.
    pub fn pool_add_member(&mut self, name: &str, member: &str) {
        self.pools
            .entry(name.to_string())
            .or_insert_with(|| PoolCfg { monitor: "tcp".into(), members: BTreeSet::new() })
            .members
            .insert(member.to_string());
    }

    /// Remove a member endpoint from a pool, if present.
    pub fn pool_remove_member(&mut self, name: &str, member: &str) {
        if let Some(p) = self.pools.get_mut(name) {
            p.members.remove(member);
        }
    }

    // --- misc operations ------------------------------------------------------

    /// Create or update a user account.
    pub fn add_user(&mut self, name: impl Into<String>, role: impl Into<String>) {
        self.users.insert(name.into(), UserCfg { role: role.into() });
    }

    /// Remove a user account.
    pub fn remove_user(&mut self, name: &str) {
        self.users.remove(name);
    }

    /// Configure sFlow export.
    pub fn set_sflow(&mut self, collector: impl Into<String>, rate: u32) {
        self.sflow = Some(SflowCfg { collector: collector.into(), rate });
    }

    /// Create or update a QoS class.
    pub fn set_qos_class(&mut self, name: impl Into<String>, dscp: u8) {
        self.qos.insert(name.into(), QosClass { dscp });
    }

    /// Number of distinct L2 protocols in use (VLANs count as one protocol
    /// when any VLAN is configured).
    pub fn l2_protocol_count(&self) -> usize {
        usize::from(!self.vlans.is_empty())
            + usize::from(self.features.spanning_tree)
            + usize::from(self.features.lacp)
            + usize::from(self.features.udld)
            + usize::from(self.features.dhcp_relay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::new("net0-sw-dev0", Dialect::BlockKeyword)
    }

    #[test]
    fn vlan_assignment_creates_vlan() {
        let mut c = cfg();
        c.assign_interface_vlan(1, 10);
        assert!(c.vlans.contains_key(&10));
        assert_eq!(c.interfaces[&1].access_vlan, Some(10));
        assert_eq!(c.vlan_members(10), vec![1]);
    }

    #[test]
    fn removing_vlan_detaches_members() {
        let mut c = cfg();
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 10);
        c.remove_vlan(10);
        assert!(c.vlans.is_empty());
        assert_eq!(c.interfaces[&1].access_vlan, None);
        assert_eq!(c.interfaces[&2].access_vlan, None);
    }

    #[test]
    fn acl_lifecycle() {
        let mut c = cfg();
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.acl_add_rule("edge", AclRule { permit: false, protocol: "udp".into(), port: 53 });
        assert_eq!(c.acls["edge"].rules.len(), 2);
        c.acl_remove_rule("edge", 0);
        assert_eq!(c.acls["edge"].rules.len(), 1);
        assert!(!c.acls["edge"].rules[0].permit);
        c.acl_remove_rule("edge", 99); // out of range: no-op
        c.acl_remove_rule("ghost", 0); // unknown ACL: no-op
        c.apply_acl(3, "edge");
        assert_eq!(c.interfaces[&3].acl_in.as_deref(), Some("edge"));
        c.remove_acl("edge");
        assert_eq!(c.interfaces[&3].acl_in, None);
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn applying_unknown_acl_panics() {
        cfg().apply_acl(1, "ghost");
    }

    #[test]
    fn bgp_neighbors() {
        let mut c = cfg();
        c.bgp_add_neighbor(65001, "10.0.0.1", 65002);
        c.bgp_add_neighbor(65001, "10.0.1.1", 65003);
        assert_eq!(c.bgp.as_ref().unwrap().local_as, 65001);
        assert_eq!(c.bgp.as_ref().unwrap().neighbors.len(), 2);
        c.bgp_remove_neighbor("10.0.0.1");
        assert_eq!(c.bgp.as_ref().unwrap().neighbors.len(), 1);
    }

    #[test]
    fn ospf_advertise_is_idempotent() {
        let mut c = cfg();
        c.ospf_advertise(1, "10.0.0.0/8");
        c.ospf_advertise(1, "10.0.0.0/8");
        assert_eq!(c.ospf.as_ref().unwrap().networks.len(), 1);
    }

    #[test]
    fn pool_membership() {
        let mut c = cfg();
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.pool_add_member("web", "192.168.1.11:443");
        c.pool_remove_member("web", "192.168.1.10:443");
        assert_eq!(c.pools["web"].members.len(), 1);
        c.pool_remove_member("ghost", "x"); // no-op
    }

    #[test]
    fn l2_protocol_count() {
        let mut c = cfg();
        assert_eq!(c.l2_protocol_count(), 0);
        c.add_vlan(10);
        c.features.spanning_tree = true;
        c.features.udld = true;
        assert_eq!(c.l2_protocol_count(), 3);
    }

    #[test]
    fn user_lifecycle() {
        let mut c = cfg();
        c.add_user("ops1", "operator");
        assert!(c.users.contains_key("ops1"));
        c.remove_user("ops1");
        assert!(c.users.is_empty());
    }
}
