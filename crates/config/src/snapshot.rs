//! Configuration snapshots and the archive (§2.1, data source 2).
//!
//! A network-management system "subscribes to syslog feeds from network
//! devices and snapshots a device's configuration whenever the device
//! generates a syslog alert that its configuration has changed. Each
//! snapshot includes the configuration text, as well as metadata about the
//! change, e.g., when it occurred and the login information of the entity
//! (i.e., user or script) that made the change."
//!
//! [`Archive`] is that store. [`UserDirectory`] is the organization's user
//! management system: logins it classifies as *special accounts* mark a
//! change as automated (§2.2, line O2). The classification is deliberately
//! conservative — scripts run under a regular user account are
//! misclassified as manual, under-estimating automation, exactly as the
//! paper acknowledges.

use crate::error::ConfigError;
use mpa_model::{DeviceId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The login recorded with a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Login(pub String);

impl Login {
    /// Construct from any account name.
    pub fn new(account: impl Into<String>) -> Self {
        Self(account.into())
    }

    /// The account name.
    pub fn account(&self) -> &str {
        &self.0
    }
}

/// Snapshot metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Device the snapshot belongs to.
    pub device: DeviceId,
    /// When the triggering change occurred.
    pub time: Timestamp,
    /// Login of the entity that made the change.
    pub login: Login,
}

/// One archived configuration snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Metadata.
    pub meta: SnapshotMeta,
    /// Full configuration text at snapshot time.
    pub text: String,
}

/// The organization's user-management system, used to classify logins.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserDirectory {
    special_accounts: BTreeSet<String>,
}

impl UserDirectory {
    /// Directory with the given automation ("special") accounts.
    pub fn new(special_accounts: impl IntoIterator<Item = String>) -> Self {
        Self { special_accounts: special_accounts.into_iter().collect() }
    }

    /// Register an automation account.
    pub fn add_special(&mut self, account: impl Into<String>) {
        self.special_accounts.insert(account.into());
    }

    /// Whether a login is classified as an automation account. Changes made
    /// by unknown logins are assumed manual (the paper's conservative rule).
    pub fn is_automated(&self, login: &Login) -> bool {
        self.special_accounts.contains(login.account())
    }
}

/// Per-device, chronologically ordered snapshot store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Archive {
    by_device: BTreeMap<DeviceId, Vec<Snapshot>>,
}

impl Archive {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a snapshot. Snapshots must arrive in non-decreasing time order
    /// per device (the NMS receives syslog events in order).
    pub fn push(&mut self, snapshot: Snapshot) -> Result<(), ConfigError> {
        let dev = snapshot.meta.device;
        let list = self.by_device.entry(dev).or_default();
        if let Some(last) = list.last() {
            if snapshot.meta.time < last.meta.time {
                return Err(ConfigError::OutOfOrderSnapshot { device: dev.to_string() });
            }
        }
        list.push(snapshot);
        Ok(())
    }

    /// All snapshots of a device, oldest first.
    pub fn device_history(&self, dev: DeviceId) -> &[Snapshot] {
        self.by_device.get(&dev).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Devices with at least one snapshot, ascending.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.by_device.keys().copied()
    }

    /// Total number of snapshots across all devices.
    pub fn n_snapshots(&self) -> usize {
        self.by_device.values().map(Vec::len).sum()
    }

    /// Total bytes of archived configuration text.
    pub fn total_bytes(&self) -> usize {
        self.by_device.values().flatten().map(|s| s.text.len()).sum()
    }

    /// The newest snapshot at or before `t`, if any.
    pub fn latest_at(&self, dev: DeviceId, t: Timestamp) -> Option<&Snapshot> {
        let hist = self.device_history(dev);
        let ix = hist.partition_point(|s| s.meta.time <= t);
        ix.checked_sub(1).map(|i| &hist[i])
    }

    /// Successive snapshot pairs `(older, newer)` of a device whose *newer*
    /// member falls in `[from, to)` — the unit the stanza diff runs over.
    /// The pair straddling `from` is included (its newer snapshot is inside
    /// the window), so a window never misses the change that produced its
    /// first snapshot.
    pub fn pairs_in_window(
        &self,
        dev: DeviceId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<(&Snapshot, &Snapshot)> {
        let hist = self.device_history(dev);
        hist.windows(2)
            .filter(|w| w[1].meta.time >= from && w[1].meta.time < to)
            .map(|w| (&w[0], &w[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(dev: u32, t: u64, login: &str, text: &str) -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                device: DeviceId(dev),
                time: Timestamp(t),
                login: Login::new(login),
            },
            text: text.to_string(),
        }
    }

    #[test]
    fn push_and_query_history() {
        let mut a = Archive::new();
        a.push(snap(1, 10, "alice", "v1")).unwrap();
        a.push(snap(1, 20, "bob", "v2")).unwrap();
        a.push(snap(2, 15, "svc-auto", "w1")).unwrap();
        assert_eq!(a.n_snapshots(), 3);
        assert_eq!(a.device_history(DeviceId(1)).len(), 2);
        assert_eq!(a.devices().collect::<Vec<_>>(), vec![DeviceId(1), DeviceId(2)]);
        assert_eq!(a.total_bytes(), 6);
    }

    #[test]
    fn rejects_out_of_order() {
        let mut a = Archive::new();
        a.push(snap(1, 20, "alice", "v1")).unwrap();
        let err = a.push(snap(1, 10, "alice", "v0")).unwrap_err();
        assert!(matches!(err, ConfigError::OutOfOrderSnapshot { .. }));
        // Equal timestamps are allowed (two changes in the same minute).
        a.push(snap(1, 20, "alice", "v2")).unwrap();
    }

    #[test]
    fn latest_at_boundaries() {
        let mut a = Archive::new();
        a.push(snap(1, 10, "x", "v1")).unwrap();
        a.push(snap(1, 20, "x", "v2")).unwrap();
        assert!(a.latest_at(DeviceId(1), Timestamp(5)).is_none());
        assert_eq!(a.latest_at(DeviceId(1), Timestamp(10)).unwrap().text, "v1");
        assert_eq!(a.latest_at(DeviceId(1), Timestamp(15)).unwrap().text, "v1");
        assert_eq!(a.latest_at(DeviceId(1), Timestamp(99)).unwrap().text, "v2");
        assert!(a.latest_at(DeviceId(9), Timestamp(99)).is_none());
    }

    #[test]
    fn pairs_in_window_straddles_start() {
        let mut a = Archive::new();
        for (t, v) in [(10, "v1"), (20, "v2"), (30, "v3"), (40, "v4")] {
            a.push(snap(1, t, "x", v)).unwrap();
        }
        // Window [20, 40): pairs whose newer snapshot is v2 (t=20) and v3 (t=30).
        let pairs = a.pairs_in_window(DeviceId(1), Timestamp(20), Timestamp(40));
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0.text, "v1");
        assert_eq!(pairs[0].1.text, "v2");
        assert_eq!(pairs[1].1.text, "v3");
        // Empty window.
        assert!(a.pairs_in_window(DeviceId(1), Timestamp(100), Timestamp(200)).is_empty());
        // Unknown device.
        assert!(a.pairs_in_window(DeviceId(9), Timestamp(0), Timestamp(100)).is_empty());
    }

    #[test]
    fn user_directory_classification() {
        let mut dir = UserDirectory::new(["svc-netauto".to_string()]);
        dir.add_special("svc-deploy");
        assert!(dir.is_automated(&Login::new("svc-netauto")));
        assert!(dir.is_automated(&Login::new("svc-deploy")));
        assert!(!dir.is_automated(&Login::new("alice")));
        // Conservative rule: unknown logins are manual.
        assert!(!dir.is_automated(&Login::new("some-script-under-user-acct")));
    }
}
