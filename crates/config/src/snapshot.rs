//! Configuration snapshots and the archive (§2.1, data source 2).
//!
//! A network-management system "subscribes to syslog feeds from network
//! devices and snapshots a device's configuration whenever the device
//! generates a syslog alert that its configuration has changed. Each
//! snapshot includes the configuration text, as well as metadata about the
//! change, e.g., when it occurred and the login information of the entity
//! (i.e., user or script) that made the change."
//!
//! [`crate::archive::SnapshotArchive`] is that store (delta-encoded; this
//! module holds the snapshot value types it stores). [`UserDirectory`] is
//! the organization's user management system: logins it classifies as
//! *special accounts* mark a change as automated (§2.2, line O2). The
//! classification is deliberately conservative — scripts run under a
//! regular user account are misclassified as manual, under-estimating
//! automation, exactly as the paper acknowledges.

use mpa_model::{DeviceId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The login recorded with a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Login(pub String);

impl Login {
    /// Construct from any account name.
    pub fn new(account: impl Into<String>) -> Self {
        Self(account.into())
    }

    /// The account name.
    pub fn account(&self) -> &str {
        &self.0
    }
}

/// Snapshot metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Device the snapshot belongs to.
    pub device: DeviceId,
    /// When the triggering change occurred.
    pub time: Timestamp,
    /// Login of the entity that made the change.
    pub login: Login,
}

/// One archived configuration snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Metadata.
    pub meta: SnapshotMeta,
    /// Full configuration text at snapshot time.
    pub text: String,
}

/// The organization's user-management system, used to classify logins.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserDirectory {
    special_accounts: BTreeSet<String>,
}

impl UserDirectory {
    /// Directory with the given automation ("special") accounts.
    pub fn new(special_accounts: impl IntoIterator<Item = String>) -> Self {
        Self { special_accounts: special_accounts.into_iter().collect() }
    }

    /// Register an automation account.
    pub fn add_special(&mut self, account: impl Into<String>) {
        self.special_accounts.insert(account.into());
    }

    /// Whether a login is classified as an automation account. Changes made
    /// by unknown logins are assumed manual (the paper's conservative rule).
    pub fn is_automated(&self, login: &Login) -> bool {
        self.special_accounts.contains(login.account())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_directory_classification() {
        let mut dir = UserDirectory::new(["svc-netauto".to_string()]);
        dir.add_special("svc-deploy");
        assert!(dir.is_automated(&Login::new("svc-netauto")));
        assert!(dir.is_automated(&Login::new("svc-deploy")));
        assert!(!dir.is_automated(&Login::new("alice")));
        // Conservative rule: unknown logins are manual.
        assert!(!dir.is_automated(&Login::new("some-script-under-user-acct")));
    }
}
