//! Stanza-level configuration diff (§2.2, "Operational Practices").
//!
//! > "We infer operational practices by comparing two successive
//! > configuration snapshots from the same device. If at least one stanza
//! > differs, we count this as a configuration change. ... When part (or
//! > all) of a stanza is added, removed, or updated, we say a change of type
//! > T occurred, where T is the stanza type."
//!
//! [`diff_configs`] compares two [`ParsedConfig`]s and reports one
//! [`StanzaChange`] per differing stanza, typed through [`crate::typemap`].

use crate::parse::ParsedConfig;
use crate::typemap::{map_stanza_kind, ChangeType};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// What happened to a stanza between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeAction {
    /// Stanza present only in the newer snapshot.
    Added,
    /// Stanza present only in the older snapshot.
    Removed,
    /// Stanza present in both with differing body lines.
    Updated,
}

/// One stanza-level difference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StanzaChange {
    /// Vendor-native stanza kind.
    pub kind: String,
    /// Stanza instance name.
    pub name: String,
    /// Add / remove / update.
    pub action: ChangeAction,
    /// Vendor-agnostic change type.
    pub change_type: ChangeType,
}

/// Diff two parsed configurations of the same device.
///
/// Changes are reported in a deterministic order (sorted by kind, then
/// name). An empty result means the snapshots are stanza-identical.
///
/// # Panics
/// Panics if the configs were parsed under different dialects — snapshots of
/// one device always share a dialect, so that is a caller bug.
pub fn diff_configs(old: &ParsedConfig<'_>, new: &ParsedConfig<'_>) -> Vec<StanzaChange> {
    assert_eq!(old.dialect, new.dialect, "cannot diff configs across dialects");
    let dialect = new.dialect;

    // Borrowed indexes: no stanza text is cloned unless it actually changed.
    fn index<'c, 'a>(
        cfg: &'c ParsedConfig<'a>,
    ) -> BTreeMap<(&'c str, &'c str), &'c [Cow<'a, str>]> {
        cfg.stanzas
            .iter()
            .map(|s| ((s.kind.as_ref(), s.name.as_ref()), s.lines.as_slice()))
            .collect()
    }
    let old_ix = index(old);
    let new_ix = index(new);

    let mut changes = Vec::new();
    for (key, old_lines) in &old_ix {
        match new_ix.get(key) {
            None => changes.push(StanzaChange {
                kind: key.0.to_string(),
                name: key.1.to_string(),
                action: ChangeAction::Removed,
                change_type: map_stanza_kind(dialect, key.0),
            }),
            Some(new_lines) if new_lines != old_lines => changes.push(StanzaChange {
                kind: key.0.to_string(),
                name: key.1.to_string(),
                action: ChangeAction::Updated,
                change_type: map_stanza_kind(dialect, key.0),
            }),
            Some(_) => {}
        }
    }
    for key in new_ix.keys() {
        if !old_ix.contains_key(key) {
            changes.push(StanzaChange {
                kind: key.0.to_string(),
                name: key.1.to_string(),
                action: ChangeAction::Added,
                change_type: map_stanza_kind(dialect, key.0),
            });
        }
    }
    changes.sort_by(|a, b| (&a.kind, &a.name).cmp(&(&b.kind, &b.name)));
    changes
}

/// Distinct vendor-agnostic change types present in a diff.
pub fn change_types(changes: &[StanzaChange]) -> Vec<ChangeType> {
    let mut types: Vec<ChangeType> = changes.iter().map(|c| c.change_type).collect();
    types.sort_unstable();
    types.dedup();
    types
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_config;
    use crate::render::render_config;
    use crate::semantic::{AclRule, DeviceConfig};
    use mpa_model::device::Dialect;

    /// Render both configs, parse (borrowing the rendered text) and diff —
    /// keeps the temporaries alive for the duration of the comparison.
    fn diff(old: &DeviceConfig, new: &DeviceConfig) -> Vec<StanzaChange> {
        let (old_text, new_text) = (render_config(old), render_config(new));
        diff_configs(
            &parse_config(&old_text, old.dialect).unwrap(),
            &parse_config(&new_text, new.dialect).unwrap(),
        )
    }

    fn base(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("h", dialect);
        c.assign_interface_vlan(1, 10);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.apply_acl(1, "edge");
        c
    }

    #[test]
    fn identical_configs_have_no_diff() {
        let c = base(Dialect::BlockKeyword);
        assert!(diff(&c, &c).is_empty());
    }

    #[test]
    fn acl_rule_edit_is_an_acl_update_on_both_dialects() {
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            let old = base(d);
            let mut new = old.clone();
            new.acl_add_rule("edge", AclRule { permit: false, protocol: "udp".into(), port: 53 });
            let changes = diff(&old, &new);
            assert_eq!(changes.len(), 1, "{d:?}: {changes:?}");
            assert_eq!(changes[0].change_type, ChangeType::Acl);
            assert_eq!(changes[0].action, ChangeAction::Updated);
        }
    }

    #[test]
    fn vlan_assignment_types_differently_per_dialect() {
        // The paper's §2.2 example, verified end to end: the same semantic
        // operation is an *interface* change on the block dialect and a
        // *vlan* change on the brace dialect.
        for (d, expect) in [
            (Dialect::BlockKeyword, ChangeType::Interface),
            (Dialect::BraceHierarchy, ChangeType::Vlan),
        ] {
            let old = base(d);
            let mut new = old.clone();
            new.assign_interface_vlan(1, 20); // move port 1 from vlan 10 to 20
            let changes = diff(&old, &new);
            let types = change_types(&changes);
            assert!(
                types.contains(&expect),
                "{d:?}: expected {expect:?} in {types:?} ({changes:?})"
            );
            match d {
                // Block dialect: only the interface stanza changed (vlan 20
                // stanza is also added — creation of the vlan).
                Dialect::BlockKeyword => {
                    assert!(changes
                        .iter()
                        .any(|c| c.change_type == ChangeType::Interface
                            && c.action == ChangeAction::Updated));
                }
                // Brace dialect: membership lists of v10 and v20 changed,
                // but the interface stanza did not.
                Dialect::BraceHierarchy => {
                    assert!(!types.contains(&ChangeType::Interface));
                }
            }
        }
    }

    #[test]
    fn added_and_removed_stanzas() {
        let old = base(Dialect::BlockKeyword);
        let mut new = old.clone();
        new.add_user("ops1", "operator");
        new.remove_acl("edge");
        let changes = diff(&old, &new);
        let added: Vec<_> =
            changes.iter().filter(|c| c.action == ChangeAction::Added).collect();
        let removed: Vec<_> =
            changes.iter().filter(|c| c.action == ChangeAction::Removed).collect();
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].change_type, ChangeType::User);
        // Removing the ACL also updates Eth0/1 (the access-group line went away).
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].change_type, ChangeType::Acl);
        assert!(changes
            .iter()
            .any(|c| c.change_type == ChangeType::Interface && c.action == ChangeAction::Updated));
    }

    #[test]
    fn diff_is_symmetric_up_to_action_inversion() {
        let old = base(Dialect::BraceHierarchy);
        let mut new = old.clone();
        new.add_vlan(30);
        let fwd = diff(&old, &new);
        let rev = diff(&new, &old);
        assert_eq!(fwd.len(), rev.len());
        assert_eq!(fwd[0].action, ChangeAction::Added);
        assert_eq!(rev[0].action, ChangeAction::Removed);
        assert_eq!(fwd[0].key(), rev[0].key());
    }

    impl StanzaChange {
        fn key(&self) -> (&str, &str) {
            (&self.kind, &self.name)
        }
    }

    #[test]
    fn change_types_dedupes_and_sorts() {
        let old = base(Dialect::BlockKeyword);
        let mut new = old.clone();
        new.assign_interface_vlan(2, 10);
        new.assign_interface_vlan(3, 10);
        let changes = diff(&old, &new);
        assert!(changes.len() >= 2, "two interface stanzas changed");
        assert_eq!(change_types(&changes), vec![ChangeType::Interface]);
    }

    #[test]
    #[should_panic(expected = "across dialects")]
    fn cross_dialect_diff_panics() {
        diff(&base(Dialect::BlockKeyword), &base(Dialect::BraceHierarchy));
    }
}
