//! Configuration-layer errors.

use std::fmt;

/// Errors raised while parsing configuration text or maintaining archives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A body line appeared before any stanza header (block-keyword dialect).
    OrphanLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// Unbalanced braces (brace-hierarchy dialect).
    UnbalancedBraces {
        /// 1-based line number where the imbalance was detected.
        line: usize,
    },
    /// A snapshot was appended out of chronological order.
    OutOfOrderSnapshot {
        /// Device the snapshot belongs to.
        device: String,
    },
    /// The config text was missing a hostname declaration.
    MissingHostname,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OrphanLine { line, text } => {
                write!(f, "line {line}: body line outside any stanza: {text:?}")
            }
            ConfigError::UnbalancedBraces { line } => {
                write!(f, "line {line}: unbalanced braces")
            }
            ConfigError::OutOfOrderSnapshot { device } => {
                write!(f, "snapshot for {device} is older than the latest archived one")
            }
            ConfigError::MissingHostname => write!(f, "config text declares no hostname"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = ConfigError::OrphanLine { line: 3, text: " mtu 1500".into() };
        assert!(e.to_string().contains("line 3"));
        let e = ConfigError::UnbalancedBraces { line: 9 };
        assert!(e.to_string().contains("line 9"));
        let e = ConfigError::OutOfOrderSnapshot { device: "d1".into() };
        assert!(e.to_string().contains("d1"));
    }
}
