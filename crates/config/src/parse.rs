//! Parsing configuration text into a stanza-level structural model.
//!
//! This is the inference pipeline's only window into device state: the
//! simulator's semantic intent is *not* available downstream, exactly as the
//! paper's pipeline works from RANCID/HPNA snapshots rather than operator
//! intent. The parser produces [`ParsedConfig`] — an ordered list of
//! [`ParsedStanza`]s, each identified by a **vendor-native kind** (e.g.
//! `ip access-list` vs `firewall filter`) and an instance name — which feeds
//! both the stanza diff (operational metrics) and fact extraction (design
//! metrics).
//!
//! Parsing is **zero-copy** where the text allows it: kinds, names and body
//! lines are `Cow<'_, str>` slices borrowing the input text (the block
//! dialect borrows everything; the brace dialect owns only the flattened
//! lines of nested sub-blocks, whose prefixed form does not appear verbatim
//! in the text). The inference hot loop parses every snapshot of every
//! device, so not allocating per line is a measurable share of the
//! pipeline's wall clock.

use crate::error::ConfigError;
use mpa_model::device::Dialect;
use std::borrow::Cow;

/// One parsed stanza: a vendor-native kind, an instance name (possibly
/// empty) and its normalized body lines (header included). Borrows from the
/// parsed text wherever possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedStanza<'a> {
    /// Vendor-native stanza kind, e.g. `interface` or `firewall filter`.
    pub kind: Cow<'a, str>,
    /// Instance name, e.g. `Eth0/1`; empty for singleton stanzas.
    pub name: Cow<'a, str>,
    /// Normalized body lines (trimmed, order-preserving).
    pub lines: Vec<Cow<'a, str>>,
}

impl ParsedStanza<'_> {
    /// Key identifying the stanza within a config: `(kind, name)`.
    pub fn key(&self) -> (&str, &str) {
        (&self.kind, &self.name)
    }
}

/// A parsed device configuration, borrowing from the parsed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedConfig<'a> {
    /// Hostname declared in the text.
    pub hostname: Cow<'a, str>,
    /// Dialect the text was parsed as.
    pub dialect: Dialect,
    /// Stanzas in document order.
    pub stanzas: Vec<ParsedStanza<'a>>,
}

impl<'a> ParsedConfig<'a> {
    /// Find a stanza by kind and name.
    pub fn find(&self, kind: &str, name: &str) -> Option<&ParsedStanza<'a>> {
        self.stanzas.iter().find(|s| s.kind == kind && s.name == name)
    }

    /// All stanzas of a given kind.
    pub fn of_kind<'s>(&'s self, kind: &'s str) -> impl Iterator<Item = &'s ParsedStanza<'a>> + 's {
        self.stanzas.iter().filter(move |s| s.kind == kind)
    }

    /// Number of stanzas of a given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }
}

/// Parse configuration text in the given dialect.
pub fn parse_config(text: &str, dialect: Dialect) -> Result<ParsedConfig<'_>, ConfigError> {
    match dialect {
        Dialect::BlockKeyword => parse_block_keyword(text),
        Dialect::BraceHierarchy => parse_brace_hierarchy(text),
    }
}

// ---------------------------------------------------------------------------
// Block-keyword dialect
// ---------------------------------------------------------------------------

/// Classify a column-zero header line into `(kind, name)`. Both halves
/// borrow: kinds are static strings or slices of the line, names are
/// trimmed slices.
fn classify_block_header(line: &str) -> (Cow<'_, str>, Cow<'_, str>) {
    for (prefix, kind) in [
        ("interface ", "interface"),
        ("vlan ", "vlan"),
        ("ip access-list extended ", "ip access-list"),
        ("class-map ", "class-map"),
        ("pool ", "pool"),
        ("router bgp ", "router bgp"),
        ("router ospf ", "router ospf"),
        ("ntp server ", "ntp"),
    ] {
        if let Some(rest) = line.strip_prefix(prefix) {
            return (Cow::Borrowed(kind), Cow::Borrowed(rest.trim()));
        }
    }
    if let Some(rest) = line.strip_prefix("username ") {
        let name = rest.split_whitespace().next().unwrap_or_default();
        return (Cow::Borrowed("username"), Cow::Borrowed(name));
    }
    if line.starts_with("ip dhcp relay") {
        return (Cow::Borrowed("ip dhcp relay"), Cow::Borrowed(""));
    }
    for kw in ["hostname", "snmp-server", "sflow", "spanning-tree", "lacp", "udld"] {
        if line == kw || line.strip_prefix(kw).is_some_and(|r| r.starts_with(' ')) {
            return (Cow::Borrowed(kw), Cow::Borrowed(""));
        }
    }
    // Unknown construct: keep the first token as the kind so the diff still
    // types it *something* (the paper's dataset has ~480 change types; an
    // open world is the realistic assumption).
    let mut it = line.split_whitespace();
    let kind = it.next().unwrap_or_default();
    let name = it.next().unwrap_or_default();
    (Cow::Borrowed(kind), Cow::Borrowed(name))
}

/// Result of parsing a run of block-dialect lines: the stanzas plus the
/// hostname effect. `hostname` is `None` when no hostname header appeared,
/// `Some(h)` when one did — `h` itself may be `None` (a bare `hostname`
/// header *resets* the declared name; later headers win).
pub(crate) struct BlockLines<'a> {
    pub(crate) stanzas: Vec<ParsedStanza<'a>>,
    pub(crate) hostname: Option<Option<&'a str>>,
}

/// Shared core of the block-keyword parser, over any line sequence. The
/// full parser feeds it a whole snapshot; the incremental path (see
/// [`crate::incremental`]) feeds it one stanza segment of interned lines
/// at a time, so both produce identical stanzas by construction.
pub(crate) fn parse_block_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<BlockLines<'a>, ConfigError> {
    let mut stanzas: Vec<ParsedStanza<'a>> = Vec::new();
    let mut hostname = None;
    for (ix, raw) in lines.enumerate() {
        if raw.trim().is_empty() || raw.trim() == "!" {
            continue;
        }
        let indented = raw.starts_with(' ') || raw.starts_with('\t');
        if indented {
            let Some(cur) = stanzas.last_mut() else {
                return Err(ConfigError::OrphanLine { line: ix + 1, text: raw.to_string() });
            };
            cur.lines.push(Cow::Borrowed(raw.trim()));
        } else {
            let line = raw.trim_end();
            let (kind, name) = classify_block_header(line);
            if kind == "hostname" {
                hostname = Some(line.split_whitespace().nth(1));
            }
            stanzas.push(ParsedStanza { kind, name, lines: vec![Cow::Borrowed(line)] });
        }
    }
    Ok(BlockLines { stanzas, hostname })
}

fn parse_block_keyword(text: &str) -> Result<ParsedConfig<'_>, ConfigError> {
    let BlockLines { stanzas, hostname } = parse_block_lines(text.lines())?;
    Ok(ParsedConfig {
        hostname: Cow::Borrowed(hostname.flatten().ok_or(ConfigError::MissingHostname)?),
        dialect: Dialect::BlockKeyword,
        stanzas,
    })
}

// ---------------------------------------------------------------------------
// Brace-hierarchy dialect
// ---------------------------------------------------------------------------

/// Intermediate block tree for the brace dialect. Headers and leaves are
/// trimmed slices of the input text.
#[derive(Debug, Default)]
pub(crate) struct Node<'a> {
    header: &'a str,
    leaves: Vec<&'a str>,
    children: Vec<Node<'a>>,
}

impl<'a> Node<'a> {
    /// Serialize the node's contents (not its header) into flat lines,
    /// prefixing nested headers so the flattening is unambiguous. Direct
    /// leaves (empty prefix) stay borrowed; prefixed lines are owned.
    fn flatten_into(&self, prefix: &str, out: &mut Vec<Cow<'a, str>>) {
        for &leaf in &self.leaves {
            out.push(if prefix.is_empty() {
                Cow::Borrowed(leaf)
            } else {
                Cow::Owned(format!("{prefix} {leaf}"))
            });
        }
        for child in &self.children {
            let child_prefix = if prefix.is_empty() {
                child.header.to_string()
            } else {
                format!("{prefix} {}", child.header)
            };
            child.flatten_into(&child_prefix, out);
        }
    }

    fn flat_lines(&self) -> Vec<Cow<'a, str>> {
        let mut out = vec![Cow::Borrowed(self.header)];
        self.flatten_into("", &mut out);
        out
    }
}

/// Parse brace-dialect text into its top-level block tree. Root-level
/// leaves are discarded (only blocks carry stanzas), matching the full
/// parser; errors carry 1-based line numbers.
pub(crate) fn parse_tree(text: &str) -> Result<Vec<Node<'_>>, ConfigError> {
    let mut root = Node::default();
    let mut stack: Vec<Node<'_>> = vec![];
    let mut cur = std::mem::take(&mut root);
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_suffix('{') {
            stack.push(std::mem::take(&mut cur));
            cur.header = header.trim();
        } else if line == "}" {
            let Some(mut parent) = stack.pop() else {
                return Err(ConfigError::UnbalancedBraces { line: ix + 1 });
            };
            parent.children.push(std::mem::take(&mut cur));
            cur = parent;
        } else {
            cur.leaves.push(line.trim_end_matches(';'));
        }
    }
    if !stack.is_empty() {
        return Err(ConfigError::UnbalancedBraces { line: text.lines().count() });
    }
    Ok(cur.children)
}

fn parse_brace_hierarchy(text: &str) -> Result<ParsedConfig<'_>, ConfigError> {
    let tree = parse_tree(text)?;
    let (stanzas, hostname) = brace_stanzas(&tree);
    Ok(ParsedConfig {
        hostname: Cow::Borrowed(hostname.ok_or(ConfigError::MissingHostname)?),
        dialect: Dialect::BraceHierarchy,
        stanzas,
    })
}

/// Shared stanza-generation core of the brace parser: turn a parsed block
/// tree into stanzas plus the last `host-name` declaration seen, if any.
/// The full parser runs it over the whole tree; the incremental path runs
/// it over single top-level blocks, so both produce identical stanzas.
pub(crate) fn brace_stanzas<'a>(tree: &[Node<'a>]) -> (Vec<ParsedStanza<'a>>, Option<&'a str>) {
    let mut stanzas = Vec::new();
    let mut hostname = None;

    for top in tree {
        match top.header {
            "system" => {
                // Direct leaves (host-name, ...) form the `system` stanza.
                if !top.leaves.is_empty() {
                    for &leaf in &top.leaves {
                        if let Some(h) = leaf.strip_prefix("host-name ") {
                            hostname = Some(h);
                        }
                    }
                    stanzas.push(ParsedStanza {
                        kind: Cow::Borrowed("system"),
                        name: Cow::Borrowed(""),
                        lines: top.leaves.iter().map(|&l| Cow::Borrowed(l)).collect(),
                    });
                }
                for child in &top.children {
                    match child.header {
                        "login" => {
                            for user in &child.children {
                                let name =
                                    user.header.strip_prefix("user ").unwrap_or(user.header);
                                stanzas.push(ParsedStanza {
                                    kind: Cow::Borrowed("system login user"),
                                    name: Cow::Borrowed(name),
                                    lines: user.flat_lines(),
                                });
                            }
                        }
                        other => stanzas.push(ParsedStanza {
                            kind: Cow::Owned(format!("system {other}")),
                            name: Cow::Borrowed(""),
                            lines: child.flat_lines(),
                        }),
                    }
                }
            }
            "interfaces" | "vlans" | "class-of-service" => {
                for child in &top.children {
                    stanzas.push(ParsedStanza {
                        kind: Cow::Borrowed(top.header),
                        name: Cow::Borrowed(child.header),
                        lines: child.flat_lines(),
                    });
                }
            }
            "firewall" => {
                for child in &top.children {
                    let name = child.header.strip_prefix("filter ").unwrap_or(child.header);
                    stanzas.push(ParsedStanza {
                        kind: Cow::Borrowed("firewall filter"),
                        name: Cow::Borrowed(name),
                        lines: child.flat_lines(),
                    });
                }
            }
            "load-balance" => {
                for child in &top.children {
                    let name = child.header.strip_prefix("pool ").unwrap_or(child.header);
                    stanzas.push(ParsedStanza {
                        kind: Cow::Borrowed("load-balance pool"),
                        name: Cow::Borrowed(name),
                        lines: child.flat_lines(),
                    });
                }
            }
            "protocols" | "forwarding-options" => {
                for child in &top.children {
                    stanzas.push(ParsedStanza {
                        kind: Cow::Owned(format!("{} {}", top.header, child.header)),
                        name: Cow::Borrowed(""),
                        lines: child.flat_lines(),
                    });
                }
            }
            other => {
                stanzas.push(ParsedStanza {
                    kind: Cow::Borrowed(other),
                    name: Cow::Borrowed(""),
                    lines: top.flat_lines(),
                });
            }
        }
    }

    (stanzas, hostname)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_config;
    use crate::semantic::{AclRule, DeviceConfig};

    fn sample(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("net0-sw-dev0", dialect);
        c.set_description(1, "link to net0-rtr-dev1");
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 20);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.apply_acl(1, "edge");
        c.bgp_add_neighbor(65001, "10.0.0.1", 65002);
        c.ospf_advertise(1, "10.0.0.0/8");
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.add_user("ops1", "operator");
        c.features.spanning_tree = true;
        c.set_sflow("192.0.2.9", 2048);
        c.set_qos_class("voice", 46);
        c.ntp_servers.push("192.0.2.1".into());
        c.snmp_community = Some("public".into());
        c
    }

    #[test]
    fn block_keyword_round_trip_structure() {
        let text = render_config(&sample(Dialect::BlockKeyword));
        let parsed = parse_config(&text, Dialect::BlockKeyword).unwrap();
        assert_eq!(parsed.hostname, "net0-sw-dev0");
        assert_eq!(parsed.count_kind("interface"), 2);
        assert_eq!(parsed.count_kind("vlan"), 2);
        assert_eq!(parsed.count_kind("ip access-list"), 1);
        assert_eq!(parsed.count_kind("router bgp"), 1);
        assert_eq!(parsed.count_kind("router ospf"), 1);
        assert_eq!(parsed.count_kind("pool"), 1);
        assert_eq!(parsed.count_kind("username"), 1);
        assert_eq!(parsed.count_kind("sflow"), 1);
        assert_eq!(parsed.count_kind("class-map"), 1);
        assert!(parsed.find("interface", "Eth0/1").is_some());
        assert!(parsed.find("vlan", "10").is_some());
        assert!(parsed.find("ip access-list", "edge").is_some());
    }

    #[test]
    fn brace_hierarchy_round_trip_structure() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        let parsed = parse_config(&text, Dialect::BraceHierarchy).unwrap();
        assert_eq!(parsed.hostname, "net0-sw-dev0");
        assert_eq!(parsed.count_kind("interfaces"), 2);
        assert_eq!(parsed.count_kind("vlans"), 2);
        assert_eq!(parsed.count_kind("firewall filter"), 1);
        assert_eq!(parsed.count_kind("protocols bgp"), 1);
        assert_eq!(parsed.count_kind("protocols ospf"), 1);
        assert_eq!(parsed.count_kind("protocols rstp"), 1);
        assert_eq!(parsed.count_kind("protocols sflow"), 1);
        assert_eq!(parsed.count_kind("load-balance pool"), 1);
        assert_eq!(parsed.count_kind("system login user"), 1);
        assert!(parsed.find("interfaces", "xe-0/0/1").is_some());
        assert!(parsed.find("vlans", "v10").is_some());
        assert!(parsed.find("firewall filter", "edge").is_some());
    }

    #[test]
    fn block_dialect_parses_without_owning_any_text() {
        // The whole point of the zero-copy rewrite: on the flat dialect
        // every kind, name and body line borrows the input.
        let text = render_config(&sample(Dialect::BlockKeyword));
        let parsed = parse_config(&text, Dialect::BlockKeyword).unwrap();
        assert!(matches!(parsed.hostname, Cow::Borrowed(_)));
        for s in &parsed.stanzas {
            assert!(matches!(s.kind, Cow::Borrowed(_)), "kind owned: {:?}", s.kind);
            assert!(matches!(s.name, Cow::Borrowed(_)), "name owned: {:?}", s.name);
            for l in &s.lines {
                assert!(matches!(l, Cow::Borrowed(_)), "line owned: {l:?}");
            }
        }
    }

    #[test]
    fn vlan_membership_lands_in_different_stanzas_per_dialect() {
        // The paper's §2.2 cross-vendor quirk, verified end to end through
        // render + parse: the member interface appears under the *interface*
        // stanza in the block dialect and under the *vlans* stanza in the
        // brace dialect.
        let block_text = render_config(&sample(Dialect::BlockKeyword));
        let block = parse_config(&block_text, Dialect::BlockKeyword).unwrap();
        let iface = block.find("interface", "Eth0/1").unwrap();
        assert!(iface.lines.iter().any(|l| l.contains("access vlan 10")));
        let vlan = block.find("vlan", "10").unwrap();
        assert!(!vlan.lines.iter().any(|l| l.contains("Eth0/1")));

        let brace_text = render_config(&sample(Dialect::BraceHierarchy));
        let brace = parse_config(&brace_text, Dialect::BraceHierarchy).unwrap();
        let vlan = brace.find("vlans", "v10").unwrap();
        assert!(vlan.lines.iter().any(|l| l.contains("xe-0/0/1")));
        let iface = brace.find("interfaces", "xe-0/0/1").unwrap();
        assert!(!iface.lines.iter().any(|l| l.contains("vlan")));
    }

    #[test]
    fn orphan_line_is_an_error() {
        let err = parse_config("  mtu 1500\n", Dialect::BlockKeyword).unwrap_err();
        assert!(matches!(err, ConfigError::OrphanLine { line: 1, .. }));
    }

    #[test]
    fn unbalanced_braces_are_an_error() {
        let err = parse_config("system {\n host-name x;\n", Dialect::BraceHierarchy).unwrap_err();
        assert!(matches!(err, ConfigError::UnbalancedBraces { .. }));
        let err = parse_config("}\n", Dialect::BraceHierarchy).unwrap_err();
        assert!(matches!(err, ConfigError::UnbalancedBraces { line: 1 }));
    }

    #[test]
    fn missing_hostname_is_an_error() {
        assert_eq!(
            parse_config("vlan 10\n name v10\n", Dialect::BlockKeyword).unwrap_err(),
            ConfigError::MissingHostname
        );
        assert_eq!(
            parse_config("snmp {\n community public;\n}\n", Dialect::BraceHierarchy).unwrap_err(),
            ConfigError::MissingHostname
        );
    }

    #[test]
    fn unknown_constructs_still_parse() {
        let text = "hostname h\n!\nfancy-feature alpha\n setting 1\n!\n";
        let parsed = parse_config(text, Dialect::BlockKeyword).unwrap();
        let s = parsed.find("fancy-feature", "alpha").unwrap();
        assert_eq!(s.lines.len(), 2);
    }

    #[test]
    fn parse_is_deterministic_and_stable() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        let a = parse_config(&text, Dialect::BraceHierarchy).unwrap();
        let b = parse_config(&text, Dialect::BraceHierarchy).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stanza_key() {
        let s = ParsedStanza {
            kind: Cow::Borrowed("vlan"),
            name: Cow::Borrowed("10"),
            lines: vec![],
        };
        assert_eq!(s.key(), ("vlan", "10"));
    }
}
