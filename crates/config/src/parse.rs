//! Parsing configuration text into a stanza-level structural model.
//!
//! This is the inference pipeline's only window into device state: the
//! simulator's semantic intent is *not* available downstream, exactly as the
//! paper's pipeline works from RANCID/HPNA snapshots rather than operator
//! intent. The parser produces [`ParsedConfig`] — an ordered list of
//! [`ParsedStanza`]s, each identified by a **vendor-native kind** (e.g.
//! `ip access-list` vs `firewall filter`) and an instance name — which feeds
//! both the stanza diff (operational metrics) and fact extraction (design
//! metrics).

use crate::error::ConfigError;
use mpa_model::device::Dialect;
use serde::{Deserialize, Serialize};

/// One parsed stanza: a vendor-native kind, an instance name (possibly
/// empty) and its normalized body lines (header included).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedStanza {
    /// Vendor-native stanza kind, e.g. `interface` or `firewall filter`.
    pub kind: String,
    /// Instance name, e.g. `Eth0/1`; empty for singleton stanzas.
    pub name: String,
    /// Normalized body lines (trimmed, order-preserving).
    pub lines: Vec<String>,
}

impl ParsedStanza {
    /// Key identifying the stanza within a config: `(kind, name)`.
    pub fn key(&self) -> (&str, &str) {
        (&self.kind, &self.name)
    }
}

/// A parsed device configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedConfig {
    /// Hostname declared in the text.
    pub hostname: String,
    /// Dialect the text was parsed as.
    pub dialect: Dialect,
    /// Stanzas in document order.
    pub stanzas: Vec<ParsedStanza>,
}

impl ParsedConfig {
    /// Find a stanza by kind and name.
    pub fn find(&self, kind: &str, name: &str) -> Option<&ParsedStanza> {
        self.stanzas.iter().find(|s| s.kind == kind && s.name == name)
    }

    /// All stanzas of a given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a ParsedStanza> + 'a {
        self.stanzas.iter().filter(move |s| s.kind == kind)
    }

    /// Number of stanzas of a given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }
}

/// Parse configuration text in the given dialect.
pub fn parse_config(text: &str, dialect: Dialect) -> Result<ParsedConfig, ConfigError> {
    match dialect {
        Dialect::BlockKeyword => parse_block_keyword(text),
        Dialect::BraceHierarchy => parse_brace_hierarchy(text),
    }
}

// ---------------------------------------------------------------------------
// Block-keyword dialect
// ---------------------------------------------------------------------------

/// Classify a column-zero header line into `(kind, name)`.
fn classify_block_header(line: &str) -> (String, String) {
    let rest_after = |prefix: &str| line[prefix.len()..].trim().to_string();
    for (prefix, named) in [
        ("interface ", true),
        ("vlan ", true),
        ("ip access-list extended ", true),
        ("class-map ", true),
        ("pool ", true),
        ("router bgp ", true),
        ("router ospf ", true),
        ("ntp server ", true),
    ] {
        if line.starts_with(prefix) {
            let kind = prefix.trim_end().trim_end_matches(" extended").trim_end_matches(" server");
            let kind = match prefix {
                "ip access-list extended " => "ip access-list",
                "ntp server " => "ntp",
                _ => kind,
            };
            let name = if named { rest_after(prefix) } else { String::new() };
            return (kind.to_string(), name);
        }
    }
    if let Some(rest) = line.strip_prefix("username ") {
        let name = rest.split_whitespace().next().unwrap_or_default().to_string();
        return ("username".to_string(), name);
    }
    if line.starts_with("ip dhcp relay") {
        return ("ip dhcp relay".to_string(), String::new());
    }
    for kw in ["hostname", "snmp-server", "sflow", "spanning-tree", "lacp", "udld"] {
        if line == kw || line.starts_with(&format!("{kw} ")) {
            return (kw.to_string(), String::new());
        }
    }
    // Unknown construct: keep the first token as the kind so the diff still
    // types it *something* (the paper's dataset has ~480 change types; an
    // open world is the realistic assumption).
    let mut it = line.split_whitespace();
    let kind = it.next().unwrap_or_default().to_string();
    let name = it.next().unwrap_or_default().to_string();
    (kind, name)
}

fn parse_block_keyword(text: &str) -> Result<ParsedConfig, ConfigError> {
    let mut stanzas: Vec<ParsedStanza> = Vec::new();
    let mut hostname = None;
    for (ix, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() || raw.trim() == "!" {
            continue;
        }
        let indented = raw.starts_with(' ') || raw.starts_with('\t');
        if indented {
            let Some(cur) = stanzas.last_mut() else {
                return Err(ConfigError::OrphanLine { line: ix + 1, text: raw.to_string() });
            };
            cur.lines.push(raw.trim().to_string());
        } else {
            let line = raw.trim_end();
            let (kind, name) = classify_block_header(line);
            if kind == "hostname" {
                hostname = line.split_whitespace().nth(1).map(str::to_string);
            }
            stanzas.push(ParsedStanza { kind, name, lines: vec![line.to_string()] });
        }
    }
    Ok(ParsedConfig {
        hostname: hostname.ok_or(ConfigError::MissingHostname)?,
        dialect: Dialect::BlockKeyword,
        stanzas,
    })
}

// ---------------------------------------------------------------------------
// Brace-hierarchy dialect
// ---------------------------------------------------------------------------

/// Intermediate block tree for the brace dialect.
#[derive(Debug, Default)]
struct Node {
    header: String,
    leaves: Vec<String>,
    children: Vec<Node>,
}

impl Node {
    /// Serialize the node's contents (not its header) into flat lines,
    /// prefixing nested headers so the flattening is unambiguous.
    fn flatten_into(&self, prefix: &str, out: &mut Vec<String>) {
        for leaf in &self.leaves {
            out.push(if prefix.is_empty() { leaf.clone() } else { format!("{prefix} {leaf}") });
        }
        for child in &self.children {
            let child_prefix = if prefix.is_empty() {
                child.header.clone()
            } else {
                format!("{prefix} {}", child.header)
            };
            child.flatten_into(&child_prefix, out);
        }
    }

    fn flat_lines(&self) -> Vec<String> {
        let mut out = vec![self.header.clone()];
        self.flatten_into("", &mut out);
        out
    }
}

fn parse_tree(text: &str) -> Result<Vec<Node>, ConfigError> {
    let mut root = Node::default();
    let mut stack: Vec<Node> = vec![];
    let mut cur = std::mem::take(&mut root);
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_suffix('{') {
            stack.push(std::mem::take(&mut cur));
            cur.header = header.trim().to_string();
        } else if line == "}" {
            let Some(mut parent) = stack.pop() else {
                return Err(ConfigError::UnbalancedBraces { line: ix + 1 });
            };
            parent.children.push(std::mem::take(&mut cur));
            cur = parent;
        } else {
            cur.leaves.push(line.trim_end_matches(';').to_string());
        }
    }
    if !stack.is_empty() {
        return Err(ConfigError::UnbalancedBraces { line: text.lines().count() });
    }
    Ok(cur.children)
}

fn parse_brace_hierarchy(text: &str) -> Result<ParsedConfig, ConfigError> {
    let tree = parse_tree(text)?;
    let mut stanzas = Vec::new();
    let mut hostname = None;

    for top in &tree {
        match top.header.as_str() {
            "system" => {
                // Direct leaves (host-name, ...) form the `system` stanza.
                if !top.leaves.is_empty() {
                    for leaf in &top.leaves {
                        if let Some(h) = leaf.strip_prefix("host-name ") {
                            hostname = Some(h.to_string());
                        }
                    }
                    stanzas.push(ParsedStanza {
                        kind: "system".into(),
                        name: String::new(),
                        lines: top.leaves.clone(),
                    });
                }
                for child in &top.children {
                    match child.header.as_str() {
                        "login" => {
                            for user in &child.children {
                                let name = user
                                    .header
                                    .strip_prefix("user ")
                                    .unwrap_or(&user.header)
                                    .to_string();
                                stanzas.push(ParsedStanza {
                                    kind: "system login user".into(),
                                    name,
                                    lines: user.flat_lines(),
                                });
                            }
                        }
                        other => stanzas.push(ParsedStanza {
                            kind: format!("system {other}"),
                            name: String::new(),
                            lines: child.flat_lines(),
                        }),
                    }
                }
            }
            "interfaces" | "vlans" | "class-of-service" => {
                let kind = top.header.clone();
                for child in &top.children {
                    stanzas.push(ParsedStanza {
                        kind: kind.clone(),
                        name: child.header.clone(),
                        lines: child.flat_lines(),
                    });
                }
            }
            "firewall" => {
                for child in &top.children {
                    let name =
                        child.header.strip_prefix("filter ").unwrap_or(&child.header).to_string();
                    stanzas.push(ParsedStanza {
                        kind: "firewall filter".into(),
                        name,
                        lines: child.flat_lines(),
                    });
                }
            }
            "load-balance" => {
                for child in &top.children {
                    let name =
                        child.header.strip_prefix("pool ").unwrap_or(&child.header).to_string();
                    stanzas.push(ParsedStanza {
                        kind: "load-balance pool".into(),
                        name,
                        lines: child.flat_lines(),
                    });
                }
            }
            "protocols" | "forwarding-options" => {
                for child in &top.children {
                    stanzas.push(ParsedStanza {
                        kind: format!("{} {}", top.header, child.header),
                        name: String::new(),
                        lines: child.flat_lines(),
                    });
                }
            }
            other => {
                stanzas.push(ParsedStanza {
                    kind: other.to_string(),
                    name: String::new(),
                    lines: top.flat_lines(),
                });
            }
        }
    }

    Ok(ParsedConfig {
        hostname: hostname.ok_or(ConfigError::MissingHostname)?,
        dialect: Dialect::BraceHierarchy,
        stanzas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_config;
    use crate::semantic::{AclRule, DeviceConfig};

    fn sample(dialect: Dialect) -> DeviceConfig {
        let mut c = DeviceConfig::new("net0-sw-dev0", dialect);
        c.set_description(1, "link to net0-rtr-dev1");
        c.assign_interface_vlan(1, 10);
        c.assign_interface_vlan(2, 20);
        c.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        c.apply_acl(1, "edge");
        c.bgp_add_neighbor(65001, "10.0.0.1", 65002);
        c.ospf_advertise(1, "10.0.0.0/8");
        c.add_pool("web", "http");
        c.pool_add_member("web", "192.168.1.10:443");
        c.add_user("ops1", "operator");
        c.features.spanning_tree = true;
        c.set_sflow("192.0.2.9", 2048);
        c.set_qos_class("voice", 46);
        c.ntp_servers.push("192.0.2.1".into());
        c.snmp_community = Some("public".into());
        c
    }

    #[test]
    fn block_keyword_round_trip_structure() {
        let cfg = sample(Dialect::BlockKeyword);
        let parsed = parse_config(&render_config(&cfg), Dialect::BlockKeyword).unwrap();
        assert_eq!(parsed.hostname, "net0-sw-dev0");
        assert_eq!(parsed.count_kind("interface"), 2);
        assert_eq!(parsed.count_kind("vlan"), 2);
        assert_eq!(parsed.count_kind("ip access-list"), 1);
        assert_eq!(parsed.count_kind("router bgp"), 1);
        assert_eq!(parsed.count_kind("router ospf"), 1);
        assert_eq!(parsed.count_kind("pool"), 1);
        assert_eq!(parsed.count_kind("username"), 1);
        assert_eq!(parsed.count_kind("sflow"), 1);
        assert_eq!(parsed.count_kind("class-map"), 1);
        assert!(parsed.find("interface", "Eth0/1").is_some());
        assert!(parsed.find("vlan", "10").is_some());
        assert!(parsed.find("ip access-list", "edge").is_some());
    }

    #[test]
    fn brace_hierarchy_round_trip_structure() {
        let cfg = sample(Dialect::BraceHierarchy);
        let parsed = parse_config(&render_config(&cfg), Dialect::BraceHierarchy).unwrap();
        assert_eq!(parsed.hostname, "net0-sw-dev0");
        assert_eq!(parsed.count_kind("interfaces"), 2);
        assert_eq!(parsed.count_kind("vlans"), 2);
        assert_eq!(parsed.count_kind("firewall filter"), 1);
        assert_eq!(parsed.count_kind("protocols bgp"), 1);
        assert_eq!(parsed.count_kind("protocols ospf"), 1);
        assert_eq!(parsed.count_kind("protocols rstp"), 1);
        assert_eq!(parsed.count_kind("protocols sflow"), 1);
        assert_eq!(parsed.count_kind("load-balance pool"), 1);
        assert_eq!(parsed.count_kind("system login user"), 1);
        assert!(parsed.find("interfaces", "xe-0/0/1").is_some());
        assert!(parsed.find("vlans", "v10").is_some());
        assert!(parsed.find("firewall filter", "edge").is_some());
    }

    #[test]
    fn vlan_membership_lands_in_different_stanzas_per_dialect() {
        // The paper's §2.2 cross-vendor quirk, verified end to end through
        // render + parse: the member interface appears under the *interface*
        // stanza in the block dialect and under the *vlans* stanza in the
        // brace dialect.
        let block = parse_config(
            &render_config(&sample(Dialect::BlockKeyword)),
            Dialect::BlockKeyword,
        )
        .unwrap();
        let iface = block.find("interface", "Eth0/1").unwrap();
        assert!(iface.lines.iter().any(|l| l.contains("access vlan 10")));
        let vlan = block.find("vlan", "10").unwrap();
        assert!(!vlan.lines.iter().any(|l| l.contains("Eth0/1")));

        let brace = parse_config(
            &render_config(&sample(Dialect::BraceHierarchy)),
            Dialect::BraceHierarchy,
        )
        .unwrap();
        let vlan = brace.find("vlans", "v10").unwrap();
        assert!(vlan.lines.iter().any(|l| l.contains("xe-0/0/1")));
        let iface = brace.find("interfaces", "xe-0/0/1").unwrap();
        assert!(!iface.lines.iter().any(|l| l.contains("vlan")));
    }

    #[test]
    fn orphan_line_is_an_error() {
        let err = parse_config("  mtu 1500\n", Dialect::BlockKeyword).unwrap_err();
        assert!(matches!(err, ConfigError::OrphanLine { line: 1, .. }));
    }

    #[test]
    fn unbalanced_braces_are_an_error() {
        let err = parse_config("system {\n host-name x;\n", Dialect::BraceHierarchy).unwrap_err();
        assert!(matches!(err, ConfigError::UnbalancedBraces { .. }));
        let err = parse_config("}\n", Dialect::BraceHierarchy).unwrap_err();
        assert!(matches!(err, ConfigError::UnbalancedBraces { line: 1 }));
    }

    #[test]
    fn missing_hostname_is_an_error() {
        assert_eq!(
            parse_config("vlan 10\n name v10\n", Dialect::BlockKeyword).unwrap_err(),
            ConfigError::MissingHostname
        );
        assert_eq!(
            parse_config("snmp {\n community public;\n}\n", Dialect::BraceHierarchy).unwrap_err(),
            ConfigError::MissingHostname
        );
    }

    #[test]
    fn unknown_constructs_still_parse() {
        let text = "hostname h\n!\nfancy-feature alpha\n setting 1\n!\n";
        let parsed = parse_config(text, Dialect::BlockKeyword).unwrap();
        let s = parsed.find("fancy-feature", "alpha").unwrap();
        assert_eq!(s.lines.len(), 2);
    }

    #[test]
    fn parse_is_deterministic_and_stable() {
        let text = render_config(&sample(Dialect::BraceHierarchy));
        let a = parse_config(&text, Dialect::BraceHierarchy).unwrap();
        let b = parse_config(&text, Dialect::BraceHierarchy).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stanza_key() {
        let s = ParsedStanza { kind: "vlan".into(), name: "10".into(), lines: vec![] };
        assert_eq!(s.key(), ("vlan", "10"));
    }
}
