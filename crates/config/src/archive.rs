//! Delta-encoded snapshot storage.
//!
//! The paper's archive holds ~450 GB of configuration text, but successive
//! snapshots of one device differ in a handful of lines; storing every
//! snapshot in full is what made the seed pipeline allocation-bound.
//! [`SnapshotArchive`] stores, per device, the **base** snapshot as a
//! sequence of interned line ids plus one [`LineDelta`] per subsequent
//! snapshot, and keeps a single materialized line sequence (the newest
//! state) so appends stay O(changed lines). Repeated lines — and config
//! lines repeat massively across devices of a network — are interned once
//! in a per-archive [`LineTable`] and referenced by 4-byte ids.
//!
//! Reconstruction is exact: `lines.join("\n")` plus the recorded byte
//! length disambiguates the trailing newline, so `device_texts` returns
//! the original snapshot bytes bit-for-bit (debug builds assert it on
//! every push). See DESIGN.md ("Delta-encoded snapshot archive") for the
//! format, the interning scheme and the parse-cache invalidation rules.

use crate::error::ConfigError;
use crate::snapshot::{Login, Snapshot, SnapshotMeta};
use mpa_model::{DeviceId, Timestamp};
use serde::{expect_object, field, Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::{DefaultHasher, Hash, Hasher};

/// Id of an interned configuration line within an archive's [`LineTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub u32);

impl Serialize for LineId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for LineId {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        u32::from_value(v).map(LineId)
    }
}

/// Fast multiply-mix hash of a line's bytes (FxHash-style), for the
/// intern index. The hash function cannot affect behavior — collisions
/// are resolved by exact comparison against the arena, and line ids are
/// assigned in first-appearance order — so a cheap mix beats SipHash on
/// the interning hot path (every line of every snapshot passes through).
fn hash_line(line: &str) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let bytes = line.as_bytes();
    let mut h = (bytes.len() as u64).wrapping_mul(K);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = (h.rotate_left(5) ^ v).wrapping_mul(K);
    }
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    // mpa-lint: allow(R7) -- chunks_exact(8) remainder is < 8 bytes, the buffer's exact size
    last[..rem.len()].copy_from_slice(rem);
    (h.rotate_left(5) ^ u64::from_le_bytes(last)).wrapping_mul(K)
}

/// Interning table: each distinct config line is stored once, packed into
/// a single text arena (`text` + byte spans) rather than one `String`
/// allocation per line — replay touches lines by id in effectively random
/// order, so keeping them contiguous is worth real wall-clock at paper
/// scale, and the arena halves the table's footprint versus the old
/// `Vec<String>` + `HashMap<String, _>` pair that stored every line twice.
///
/// The reverse index is a lookup-only `HashMap` (never iterated, hash
/// collisions resolved by exact compare), so the archive's behavior stays
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LineTable {
    /// All distinct line text, concatenated in id order.
    text: String,
    /// Byte range of each line id within `text`.
    spans: Vec<(u32, u32)>,
    /// Line-hash → ids with that hash.
    index: HashMap<u64, Vec<u32>>,
}

impl LineTable {
    /// Rebuild from a deserialized line list (lines are distinct by
    /// construction — they come from a serialized intern table).
    fn from_lines(lines: Vec<String>) -> Self {
        let mut table = Self::default();
        for line in &lines {
            table.insert_new(line);
        }
        table
    }

    /// Append a line known to be absent, returning its new id.
    fn insert_new(&mut self, line: &str) -> LineId {
        let id = u32::try_from(self.spans.len()).expect("line table overflow");
        let start = u32::try_from(self.text.len()).expect("line arena overflow");
        self.text.push_str(line);
        let end = u32::try_from(self.text.len()).expect("line arena overflow");
        self.spans.push((start, end));
        self.index.entry(hash_line(line)).or_default().push(id);
        LineId(id)
    }

    fn intern(&mut self, line: &str) -> LineId {
        let hit = self
            .index
            .get(&hash_line(line))
            .and_then(|cands| cands.iter().copied().find(|&id| self.get(LineId(id)) == line));
        if let Some(id) = hit {
            // One line + its newline that the full-text store would have
            // duplicated. `merge` re-interns through this same path, so
            // org-level dedup is counted too.
            mpa_obs::counters::ARCHIVE_LINE_HITS.incr();
            mpa_obs::counters::ARCHIVE_BYTES_SAVED.add(line.len() as u64 + 1);
            return LineId(id);
        }
        mpa_obs::counters::ARCHIVE_LINES_INTERNED.incr();
        self.insert_new(line)
    }

    /// Append another table's lines wholesale, assigning them the next
    /// contiguous id range, and return the base offset (`other`'s local id
    /// `i` is now `base + i` here). Lines present in both tables are *not*
    /// deduplicated — each keeps its own id — but [`Self::intern`] still
    /// canonicalizes lookups to the lowest matching id because every hash
    /// bucket's candidates remain in ascending id order (shards are
    /// appended in order, and each shard's bucket was ascending).
    ///
    /// This is the offset-partitioned merge primitive: pure memcpy plus a
    /// bucket extension, no per-line hashing or intern probes.
    fn append_table(&mut self, other: LineTable) -> u32 {
        let base = u32::try_from(self.spans.len()).expect("line table overflow");
        let shift = u32::try_from(self.text.len()).expect("line arena overflow");
        self.text.push_str(&other.text);
        let _: u32 = u32::try_from(self.text.len()).expect("line arena overflow");
        self.spans.extend(other.spans.iter().map(|&(s, e)| (s + shift, e + shift)));
        // Bucket order across hash keys cannot affect the result: distinct
        // hashes land in distinct buckets, and within one bucket the
        // shard's candidate list is appended wholesale, preserving order.
        // mpa-lint: allow(R2) -- per-key bucket merge; cross-key iteration order is immaterial
        for (hash, ids) in other.index { self.extend_bucket(hash, &ids, base) }
        mpa_obs::counters::ARCHIVE_MERGE_TABLE_LINES.add(other.spans.len() as u64);
        base
    }

    /// Append one shard bucket's candidate ids (shifted by `base`) to the
    /// matching bucket of this table's intern index.
    fn extend_bucket(&mut self, hash: u64, ids: &[u32], base: u32) {
        self.index.entry(hash).or_default().extend(ids.iter().map(|&i| i + base));
    }

    fn get(&self, id: LineId) -> &str {
        let (start, end) = self.spans[id.0 as usize];
        &self.text[start as usize..end as usize]
    }

    /// Number of interned lines (ids are dense: `0..len()`).
    fn len(&self) -> usize {
        self.spans.len()
    }

    /// All interned lines, in id order.
    fn line_strs(&self) -> impl Iterator<Item = &str> {
        self.spans.iter().map(|&(start, end)| &self.text[start as usize..end as usize])
    }

    /// Bytes of distinct line text held by the table.
    fn content_bytes(&self) -> usize {
        self.text.len()
    }
}

impl Serialize for LineTable {
    fn to_value(&self) -> Value {
        self.line_strs().map(str::to_string).collect::<Vec<String>>().to_value()
    }
}

impl Deserialize for LineTable {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Vec::<String>::from_value(v).map(Self::from_lines)
    }
}

/// A single-hunk line-level edit between two snapshots: at line `at`,
/// `removed` is replaced by `added`.
///
/// Built by trimming the common prefix and suffix of the two line
/// sequences, so it is trivially invertible: [`LineDelta::apply`] and
/// [`LineDelta::revert`] are exact inverses (property-tested).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineDelta {
    /// Line offset of the replaced region.
    pub at: u32,
    /// Line ids the older snapshot had in the region.
    pub removed: Vec<LineId>,
    /// Line ids the newer snapshot has in the region.
    pub added: Vec<LineId>,
}

impl LineDelta {
    /// The delta transforming `old` into `new`.
    pub fn between(old: &[LineId], new: &[LineId]) -> Self {
        let max = old.len().min(new.len());
        let mut prefix = 0;
        while prefix < max && old[prefix] == new[prefix] {
            prefix += 1;
        }
        let mut suffix = 0;
        while suffix < max - prefix
            // mpa-lint: allow(R7) -- suffix < max - prefix keeps both offsets within the shorter side
            && old[old.len() - 1 - suffix] == new[new.len() - 1 - suffix]
        {
            suffix += 1;
        }
        Self {
            at: u32::try_from(prefix).expect("snapshot line count overflow"),
            // mpa-lint: allow(R7) -- prefix + suffix <= old.len() by the scan loop bounds above
            removed: old[prefix..old.len() - suffix].to_vec(),
            // mpa-lint: allow(R7) -- prefix + suffix <= new.len() by the scan loop bounds above
            added: new[prefix..new.len() - suffix].to_vec(),
        }
    }

    /// Transform `lines` forward (older → newer state).
    pub fn apply(&self, lines: &mut Vec<LineId>) {
        let at = self.at as usize;
        debug_assert_eq!(&lines[at..at + self.removed.len()], &self.removed[..]);
        lines.splice(at..at + self.removed.len(), self.added.iter().copied());
    }

    /// Transform `lines` backward (newer → older state).
    pub fn revert(&self, lines: &mut Vec<LineId>) {
        let at = self.at as usize;
        debug_assert_eq!(&lines[at..at + self.added.len()], &self.added[..]);
        lines.splice(at..at + self.added.len(), self.removed.iter().copied());
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// Borrowed view of one stored delta, arena-backed (see
/// [`DeviceHistory`]): the same shape as [`LineDelta`] but with the id
/// slices pointing into the device's packed delta stream.
#[derive(Debug, Clone, Copy)]
pub struct DeltaRef<'a> {
    /// Line offset of the replaced region.
    pub at: u32,
    /// Line ids the older snapshot had in the region.
    pub removed: &'a [LineId],
    /// Line ids the newer snapshot has in the region.
    pub added: &'a [LineId],
}

impl DeltaRef<'_> {
    /// Transform `lines` forward (older → newer state).
    pub fn apply(&self, lines: &mut Vec<LineId>) {
        let at = self.at as usize;
        debug_assert_eq!(&lines[at..at + self.removed.len()], self.removed);
        lines.splice(at..at + self.removed.len(), self.added.iter().copied());
    }

    /// Transform `lines` backward (newer → older state).
    pub fn revert(&self, lines: &mut Vec<LineId>) {
        let at = self.at as usize;
        debug_assert_eq!(&lines[at..at + self.added.len()], self.added);
        lines.splice(at..at + self.added.len(), self.removed.iter().copied());
    }

    /// An owned [`LineDelta`] with the same content.
    pub fn to_owned(self) -> LineDelta {
        LineDelta { at: self.at, removed: self.removed.to_vec(), added: self.added.to_vec() }
    }
}

/// Bounds of one delta inside a [`DeviceHistory`]'s packed id stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DeltaMeta {
    /// Line offset of the replaced region.
    at: u32,
    /// Start of this delta's ids in `delta_ids` (removed first).
    off: u32,
    n_removed: u32,
    n_added: u32,
}

/// One device's archived history: metadata per snapshot, the base line
/// sequence, one delta per subsequent snapshot, and the materialized
/// newest state (`tip`, rebuilt on deserialize, never serialized).
///
/// The deltas are stored as a packed stream — one flat `Vec<LineId>` for
/// every delta's removed+added ids plus fixed-size [`DeltaMeta`] bounds —
/// instead of one `LineDelta` (two heap `Vec`s) per snapshot. Replay
/// walks every delta of every device, so at paper scale (~500K deltas)
/// the packed layout trades ~1M scattered small allocations for two
/// cache-friendly arrays per device; it also makes shard remapping in
/// [`SnapshotArchive::merge_all`] a single linear pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DeviceHistory {
    metas: Vec<SnapshotMeta>,
    /// Byte length of each snapshot's text (disambiguates the trailing
    /// newline on reconstruction and preserves `total_bytes` semantics).
    text_lens: Vec<usize>,
    base: Vec<LineId>,
    /// `delta(i)` transforms snapshot `i` into snapshot `i + 1`.
    delta_meta: Vec<DeltaMeta>,
    /// Packed removed+added ids of every delta, in delta order.
    delta_ids: Vec<LineId>,
    tip: Vec<LineId>,
}

impl DeviceHistory {
    fn n_deltas(&self) -> usize {
        self.delta_meta.len()
    }

    /// The `i`-th stored delta as a borrowed view.
    fn delta(&self, i: usize) -> DeltaRef<'_> {
        let m = self.delta_meta[i];
        let off = m.off as usize;
        let mid = off + m.n_removed as usize;
        DeltaRef {
            at: m.at,
            removed: &self.delta_ids[off..mid],
            added: &self.delta_ids[mid..mid + m.n_added as usize],
        }
    }

    /// Append a delta to the packed stream.
    fn push_delta(&mut self, d: &LineDelta) {
        let off = u32::try_from(self.delta_ids.len()).expect("delta stream overflow");
        self.delta_meta.push(DeltaMeta {
            at: d.at,
            off,
            n_removed: u32::try_from(d.removed.len()).expect("delta hunk overflow"),
            n_added: u32::try_from(d.added.len()).expect("delta hunk overflow"),
        });
        self.delta_ids.extend_from_slice(&d.removed);
        self.delta_ids.extend_from_slice(&d.added);
    }

    fn rebuild_tip(&mut self) {
        let mut cur = self.base.clone();
        for i in 0..self.n_deltas() {
            self.delta(i).apply(&mut cur);
        }
        self.tip = cur;
    }

    fn stored_ids(&self) -> usize {
        self.base.len() + self.delta_ids.len()
    }

    /// Add a constant offset to every stored line id in place (shard-local
    /// → offset-partitioned global ids during
    /// [`SnapshotArchive::merge_all`], phase 2). Branch-free linear pass;
    /// no table lookups.
    fn shift_ids(&mut self, base: u32) {
        fn shift_seq(seq: &mut [LineId], base: u32) {
            for id in seq.iter_mut() {
                id.0 += base;
            }
        }
        shift_seq(&mut self.base, base);
        shift_seq(&mut self.delta_ids, base);
        shift_seq(&mut self.tip, base);
    }

    /// Rewrite every stored line id through `remap` in place (used by the
    /// pairwise [`SnapshotArchive::merge`], which re-interns into the
    /// absorbing table), returning the number of ids rewritten.
    fn remap_ids(&mut self, remap: &[LineId]) -> u64 {
        fn map_seq(seq: &mut [LineId], remap: &[LineId]) -> u64 {
            for id in seq.iter_mut() {
                *id = remap[id.0 as usize];
            }
            seq.len() as u64
        }
        map_seq(&mut self.base, remap)
            + map_seq(&mut self.delta_ids, remap)
            + map_seq(&mut self.tip, remap)
    }
}

impl Serialize for DeviceHistory {
    fn to_value(&self) -> Value {
        // The wire format stays one `LineDelta` object per delta (the
        // packed stream is an in-memory layout, not a format).
        let deltas: Vec<LineDelta> =
            (0..self.n_deltas()).map(|i| self.delta(i).to_owned()).collect();
        Value::Object(vec![
            ("metas".to_string(), self.metas.to_value()),
            ("text_lens".to_string(), self.text_lens.to_value()),
            ("base".to_string(), self.base.to_value()),
            ("deltas".to_string(), deltas.to_value()),
        ])
    }
}

impl Deserialize for DeviceHistory {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let obj = expect_object(v, "DeviceHistory")?;
        let mut hist = Self {
            metas: field(obj, "metas", "DeviceHistory")?,
            text_lens: field(obj, "text_lens", "DeviceHistory")?,
            base: field(obj, "base", "DeviceHistory")?,
            delta_meta: Vec::new(),
            delta_ids: Vec::new(),
            tip: Vec::new(),
        };
        let deltas: Vec<LineDelta> = field(obj, "deltas", "DeviceHistory")?;
        for d in &deltas {
            hist.push_delta(d);
        }
        hist.rebuild_tip();
        Ok(hist)
    }
}

/// Split snapshot text into the line sequence the archive stores. One
/// trailing newline (the normal case for rendered configs) is absorbed
/// into the recorded byte length rather than producing an empty line.
fn split_lines(text: &str) -> std::str::Split<'_, char> {
    text.strip_suffix('\n').unwrap_or(text).split('\n')
}

/// Rebuild snapshot text from interned lines and its recorded byte length.
fn materialize(table: &LineTable, lines: &[LineId], text_len: usize) -> String {
    let mut out = String::with_capacity(text_len);
    for (i, &id) in lines.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(table.get(id));
    }
    if out.len() + 1 == text_len {
        out.push('\n');
    }
    debug_assert_eq!(out.len(), text_len, "reconstruction length mismatch");
    out
}

/// Reusable scratch for [`SnapshotArchive::device_distinct_texts`]: one
/// device's **distinct** snapshot texts packed back-to-back into a single
/// arena, plus the canonical (distinct-slot) index of every snapshot.
///
/// Duplicate snapshot states — a device reverting to an exact earlier
/// configuration — are detected *before* any text is rendered, by comparing
/// the delta-replayed interned line-id sequences together with the recorded
/// byte length (within one archive, `(line ids, byte length)` identifies a
/// snapshot's text exactly: interning is canonical, and the byte length
/// disambiguates the trailing newline). Only distinct states are
/// materialized, into the shared arena, so a full device walk costs one
/// `String` total instead of one per snapshot — the allocation churn that
/// used to serialize the parallel inference phase on the allocator.
///
/// Reuse the buffer across devices (`device_distinct_texts` clears it but
/// keeps capacity); slices returned by [`Self::text`] borrow the arena and
/// stay valid until the next fill.
#[derive(Debug, Default)]
pub struct ReplayBuffer {
    /// Arena holding the distinct snapshot texts, concatenated.
    text: String,
    /// Byte range of each distinct slot within `text`.
    spans: Vec<(usize, usize)>,
    /// `canon[ix]` = distinct slot carrying snapshot `ix`'s text.
    canon: Vec<usize>,
    /// Arena of the distinct slots' line-id sequences (the dedup key).
    ids: Vec<LineId>,
    /// Per-slot `(ids_start, ids_end, text_len)`.
    id_spans: Vec<(usize, usize, usize)>,
    /// Sequence-hash → candidate slots. Lookup-only (collisions resolved by
    /// comparing the stored sequences), so determinism is unaffected.
    index: HashMap<u64, Vec<usize>>,
    /// Replay cursor (the current line-id state), reused across devices.
    cur: Vec<LineId>,
}

impl ReplayBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots replayed by the last fill.
    pub fn n_snapshots(&self) -> usize {
        self.canon.len()
    }

    /// Distinct snapshot states materialized by the last fill.
    pub fn n_distinct(&self) -> usize {
        self.spans.len()
    }

    /// Canonical distinct-slot index per snapshot, oldest first (parallel
    /// to [`SnapshotArchive::device_metas`]).
    pub fn canon(&self) -> &[usize] {
        &self.canon
    }

    /// The materialized text of a distinct slot.
    pub fn text(&self, slot: usize) -> &str {
        let (start, end) = self.spans[slot];
        &self.text[start..end]
    }

    /// The text of snapshot `ix` (convenience over `text(canon[ix])`).
    pub fn snapshot_text(&self, ix: usize) -> &str {
        self.text(self.canon[ix])
    }

    fn clear(&mut self) {
        self.text.clear();
        self.spans.clear();
        self.canon.clear();
        self.ids.clear();
        self.id_spans.clear();
        self.index.clear();
    }

    /// Cap the retained arena capacity at roughly `max_bytes`.
    ///
    /// A reused buffer grows to the largest fill it ever served and keeps
    /// that high-water capacity until dropped — one outlier device pins its
    /// arena for the rest of the worker's region. Callers that hold a buffer
    /// across many fills invoke this between fills: it is a no-op while the
    /// arena is within the cap, and shrinks (discarding the current
    /// contents) only past it. Slices from [`Self::text`] are invalidated.
    pub fn reclaim(&mut self, max_bytes: usize) {
        if self.text.capacity() > max_bytes {
            self.clear();
            self.text.shrink_to(max_bytes);
            self.ids.shrink_to(max_bytes / std::mem::size_of::<LineId>());
            self.cur.shrink_to(max_bytes / std::mem::size_of::<LineId>());
            self.spans.shrink_to_fit();
            self.id_spans.shrink_to_fit();
            self.canon.shrink_to_fit();
        }
    }

    fn seq_hash(ids: &[LineId], text_len: usize) -> u64 {
        let mut h = DefaultHasher::new();
        ids.hash(&mut h);
        text_len.hash(&mut h);
        h.finish()
    }

    /// The slot already carrying `(ids, text_len)`, if any.
    fn find(&self, hash: u64, ids: &[LineId], text_len: usize) -> Option<usize> {
        let candidates = self.index.get(&hash)?;
        candidates.iter().copied().find(|&slot| {
            let (start, end, len) = self.id_spans[slot];
            len == text_len && self.ids[start..end] == *ids
        })
    }
}

/// Per-device, chronologically ordered snapshot store, delta-encoded.
///
/// Drop-in successor of the seed's full-text `Archive`: same `push` /
/// `devices` / `n_snapshots` / `total_bytes` / `latest_at` surface (with
/// materializing accessors returning owned [`Snapshot`]s), plus the
/// compressed-representation accessors ([`Self::text_bytes`]) and the
/// zero-copy replay path ([`Self::device_texts`]) the inference pipeline
/// uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotArchive {
    table: LineTable,
    by_device: BTreeMap<DeviceId, DeviceHistory>,
}

impl SnapshotArchive {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a snapshot. Snapshots must arrive in non-decreasing time order
    /// per device (the NMS receives syslog events in order).
    pub fn push(&mut self, snapshot: Snapshot) -> Result<(), ConfigError> {
        let Snapshot { meta, text } = snapshot;
        let hist = self.by_device.entry(meta.device).or_default();
        if let Some(last) = hist.metas.last() {
            if meta.time < last.time {
                // mpa-lint: allow(R8) -- cold rejection path; allocates only to build the error
                return Err(ConfigError::OutOfOrderSnapshot { device: meta.device.to_string() });
            }
        }
        let ids: Vec<LineId> = split_lines(&text).map(|l| self.table.intern(l)).collect();
        if hist.metas.is_empty() {
            hist.base.clone_from(&ids);
        } else {
            hist.push_delta(&LineDelta::between(&hist.tip, &ids));
        }
        debug_assert_eq!(materialize(&self.table, &ids, text.len()), text);
        hist.tip = ids;
        hist.text_lens.push(text.len());
        hist.metas.push(meta);
        Ok(())
    }

    /// Devices with at least one snapshot, ascending.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.by_device.keys().copied()
    }

    /// Total number of snapshots across all devices.
    pub fn n_snapshots(&self) -> usize {
        self.by_device.values().map(|h| h.metas.len()).sum()
    }

    /// Total bytes of configuration text the archive represents (the sum of
    /// all snapshots' materialized lengths — the Table 2 `config_bytes`
    /// figure, unchanged from the full-text store).
    pub fn total_bytes(&self) -> usize {
        self.by_device.values().map(|h| h.text_lens.iter().sum::<usize>()).sum()
    }

    /// Bytes actually held by the delta-encoded representation: distinct
    /// line text plus four bytes per stored line id (base sequences and
    /// delta hunks). The compression headline is
    /// `total_bytes() / text_bytes()`.
    pub fn text_bytes(&self) -> usize {
        let ids: usize = self.by_device.values().map(DeviceHistory::stored_ids).sum();
        self.table.content_bytes() + 4 * ids
    }

    /// Snapshot metadata of a device, oldest first.
    pub fn device_metas(&self, dev: DeviceId) -> &[SnapshotMeta] {
        self.by_device.get(&dev).map(|h| h.metas.as_slice()).unwrap_or(&[])
    }

    /// Materialize every snapshot text of a device, oldest first (parallel
    /// to [`Self::device_metas`]). This is the replay path: one forward
    /// pass applying deltas, so the cost is O(total text), not
    /// O(snapshots × text).
    pub fn device_texts(&self, dev: DeviceId) -> Vec<String> {
        let Some(hist) = self.by_device.get(&dev) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(hist.metas.len());
        let mut cur = hist.base.clone();
        for (i, &len) in hist.text_lens.iter().enumerate() {
            if i > 0 {
                hist.delta(i - 1).apply(&mut cur);
            }
            out.push(materialize(&self.table, &cur, len));
        }
        out
    }

    /// Replay a device's history, dedup snapshot states on the interned
    /// line-id sequences, and materialize **only the distinct states** into
    /// `buf`'s shared arena (cleared first, capacity kept).
    ///
    /// This is the inference hot path: where [`Self::device_texts`] returns
    /// one freshly allocated `String` per snapshot and leaves duplicate
    /// detection (hashing full text) to the caller, this path compares
    /// 4-byte-per-line id sequences and renders each distinct text once.
    /// `buf.canon()` maps every snapshot to its distinct slot, in
    /// first-appearance order — byte-for-byte the same canonicalization a
    /// full-text dedup would produce (property-tested).
    pub fn device_distinct_texts(&self, dev: DeviceId, buf: &mut ReplayBuffer) {
        buf.clear();
        let Some(hist) = self.by_device.get(&dev) else {
            return;
        };
        let mut cur = std::mem::take(&mut buf.cur);
        cur.clear();
        cur.extend_from_slice(&hist.base);
        for (i, &text_len) in hist.text_lens.iter().enumerate() {
            if i > 0 {
                hist.delta(i - 1).apply(&mut cur);
            }
            let hash = ReplayBuffer::seq_hash(&cur, text_len);
            let slot = match buf.find(hash, &cur, text_len) {
                Some(slot) => slot,
                None => {
                    let slot = buf.spans.len();
                    let ids_start = buf.ids.len();
                    buf.ids.extend_from_slice(&cur);
                    buf.id_spans.push((ids_start, buf.ids.len(), text_len));
                    buf.index.entry(hash).or_default().push(slot);
                    // Render straight into the arena (the inlined body of
                    // `materialize`, minus the temporary String).
                    let start = buf.text.len();
                    for (k, &id) in cur.iter().enumerate() {
                        if k > 0 {
                            buf.text.push('\n');
                        }
                        buf.text.push_str(self.table.get(id));
                    }
                    if buf.text.len() - start + 1 == text_len {
                        buf.text.push('\n');
                    }
                    debug_assert_eq!(
                        buf.text.len() - start,
                        text_len,
                        "reconstruction length mismatch"
                    );
                    buf.spans.push((start, buf.text.len()));
                    slot
                }
            };
            buf.canon.push(slot);
        }
        buf.cur = cur;
        // Batched: one add per device keeps the replay loop free of atomics.
        mpa_obs::counters::ARCHIVE_SNAPSHOTS_MATERIALIZED.add(buf.spans.len() as u64);
        mpa_obs::counters::ARCHIVE_BYTES_MATERIALIZED.add(buf.text.len() as u64);
    }

    /// Walk a device's history at the **delta level**, without materializing
    /// any text: the returned cursor starts on the oldest snapshot and
    /// exposes the interned line-id state, byte length and metadata of one
    /// snapshot at a time; [`DeltaCursor::advance`] applies the next stored
    /// [`LineDelta`] in place and hands it back, so a consumer can derive
    /// per-snapshot work from the changed region alone. This is the
    /// patch-iteration API behind the delta-native inference path (see
    /// [`crate::incremental`]). `None` if the device has no snapshots.
    pub fn delta_cursor(&self, dev: DeviceId) -> Option<DeltaCursor<'_>> {
        let hist = self.by_device.get(&dev)?;
        if hist.metas.is_empty() {
            return None;
        }
        Some(DeltaCursor { archive: self, hist, cur: hist.base.clone(), ix: 0 })
    }

    /// The text of one interned line (no trailing newline).
    pub fn line_text(&self, id: LineId) -> &str {
        self.table.get(id)
    }

    /// Number of distinct lines interned in this archive's table. Line ids
    /// are dense: every `LineId(i)` with `i < n_interned_lines()` is valid.
    pub fn n_interned_lines(&self) -> usize {
        self.table.len()
    }

    /// Materialize a device's whole history as owned snapshots.
    pub fn device_history(&self, dev: DeviceId) -> Vec<Snapshot> {
        self.device_metas(dev)
            .iter()
            .cloned()
            .zip(self.device_texts(dev))
            .map(|(meta, text)| Snapshot { meta, text })
            .collect()
    }

    /// The newest snapshot at or before `t`, materialized, if any.
    pub fn latest_at(&self, dev: DeviceId, t: Timestamp) -> Option<Snapshot> {
        let metas = self.device_metas(dev);
        let ix = metas.partition_point(|m| m.time <= t).checked_sub(1)?;
        // Replay backward from the tip: the queried snapshot is usually
        // near the end of the history.
        let hist = &self.by_device[&dev];
        let mut cur = hist.tip.clone();
        for i in (ix..hist.n_deltas()).rev() {
            hist.delta(i).revert(&mut cur);
        }
        Some(Snapshot {
            meta: metas[ix].clone(),
            text: materialize(&self.table, &cur, hist.text_lens[ix]),
        })
    }

    /// Absorb another archive (e.g. one network's), re-interning its lines
    /// into this archive's table.
    ///
    /// # Panics
    /// Panics if the two archives share a device — device histories are
    /// whole units; per-network archives are always device-disjoint.
    pub fn merge(&mut self, other: SnapshotArchive) {
        let SnapshotArchive { table: other_table, by_device: other_devices } = other;
        let remap: Vec<LineId> =
            other_table.line_strs().map(|l| self.table.intern(l)).collect();
        for (dev, mut hist) in other_devices {
            let n = hist.remap_ids(&remap);
            mpa_obs::counters::ARCHIVE_MERGE_REMAPPED_LINES.add(n);
            let prev = self.by_device.insert(dev, hist);
            assert!(prev.is_none(), "device {dev:?} present in both merged archives");
        }
    }

    /// Deterministically merge many device-disjoint shard archives (e.g.
    /// one per network) into one, with **offset-partitioned** global id
    /// allocation: shard `s`'s local id `i` becomes global id
    /// `base(s) + i`, where `base(s)` is the total line count of the
    /// shards before it.
    ///
    /// 1. **Table concatenation (sequential, memcpy-bound).** Each shard's
    ///    text arena and spans are appended to the global table and its
    ///    hash buckets extended with the shifted ids — no re-hashing of
    ///    line text, no per-line intern probes. A line shared by several
    ///    shards is stored once per shard; lookups through
    ///    [`LineTable::intern`] (the serve-session ingest path) still
    ///    dedup, resolving to the lowest matching id, because bucket
    ///    candidates stay in ascending id order. The cost counter is
    ///    `archive_merge_table_lines`: O(distinct lines per shard).
    /// 2. **Offset shift (parallel).** Every stored id of a shard's device
    ///    histories is incremented by the shard's constant base on the
    ///    worker threads — a branch-free linear pass with no table
    ///    lookups, replacing the old per-id remap through a translation
    ///    vector (which cost O(total delta-stream ids) and dominated the
    ///    merge at paper scale: 99.2M remapped ids).
    ///
    /// Both phases are pure functions of the shard order, so the result is
    /// identical at any thread count. Per-device semantics are unchanged —
    /// a history's ids all come from one shard, so materialization,
    /// replay, dedup and serde round-trips behave exactly as before; only
    /// the global id values (an internal naming) differ from what a
    /// pairwise [`Self::merge`] fold would assign.
    ///
    /// # Panics
    /// Panics if two shards share a device.
    pub fn merge_all(shards: Vec<SnapshotArchive>) -> SnapshotArchive {
        let mut table = LineTable::default();
        let parts: Vec<(u32, BTreeMap<DeviceId, DeviceHistory>)> = shards
            .into_iter()
            .map(|shard| {
                let base = table.append_table(shard.table);
                (base, shard.by_device)
            })
            .collect();
        let shifted = mpa_exec::par_map_owned(parts, |_, (base, mut by_device)| {
            for hist in by_device.values_mut() {
                hist.shift_ids(base);
            }
            by_device
        });
        let mut by_device: BTreeMap<DeviceId, DeviceHistory> = BTreeMap::new();
        for shard in shifted {
            for (dev, hist) in shard {
                let prev = by_device.insert(dev, hist);
                assert!(prev.is_none(), "device {dev:?} present in multiple merged shards");
            }
        }
        SnapshotArchive { table, by_device }
    }
}

/// Forward iteration over one device's archived history at the delta
/// level (see [`SnapshotArchive::delta_cursor`]).
///
/// The cursor always sits **on** a snapshot: accessors describe the current
/// one, and [`Self::advance`] replays the stored delta into the next state.
/// Replay cost is O(changed lines) per step, and no text is ever rendered —
/// consumers that need line content resolve individual ids through
/// [`SnapshotArchive::line_text`].
#[derive(Debug)]
pub struct DeltaCursor<'a> {
    archive: &'a SnapshotArchive,
    hist: &'a DeviceHistory,
    cur: Vec<LineId>,
    ix: usize,
}

impl<'a> DeltaCursor<'a> {
    /// Total snapshots in the device's history (≥ 1).
    pub fn len(&self) -> usize {
        self.hist.metas.len()
    }

    /// Always false: a cursor only exists for a non-empty history.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the snapshot the cursor is on (0 = oldest).
    pub fn index(&self) -> usize {
        self.ix
    }

    /// Interned line-id sequence of the current snapshot.
    pub fn lines(&self) -> &[LineId] {
        &self.cur
    }

    /// Byte length of the current snapshot's text (together with
    /// [`Self::lines`] this identifies the text exactly, trailing newline
    /// included).
    pub fn text_len(&self) -> usize {
        self.hist.text_lens[self.ix]
    }

    /// Metadata of the current snapshot.
    pub fn meta(&self) -> &'a SnapshotMeta {
        &self.hist.metas[self.ix]
    }

    /// The text of one interned line (convenience over the archive).
    pub fn line_text(&self, id: LineId) -> &'a str {
        self.archive.table.get(id)
    }

    /// Step to the next snapshot, applying its delta to the cursor state,
    /// and return the delta that was applied. `None` at the end of the
    /// history (the cursor stays on the last snapshot).
    pub fn advance(&mut self) -> Option<DeltaRef<'a>> {
        if self.ix >= self.hist.n_deltas() {
            return None;
        }
        let delta = self.hist.delta(self.ix);
        delta.apply(&mut self.cur);
        self.ix += 1;
        Some(delta)
    }
}

impl Serialize for SnapshotArchive {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("table".to_string(), self.table.to_value()),
            ("by_device".to_string(), self.by_device.to_value()),
        ])
    }
}

impl Deserialize for SnapshotArchive {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let obj = expect_object(v, "SnapshotArchive")?;
        Ok(Self {
            table: field(obj, "table", "SnapshotArchive")?,
            by_device: field(obj, "by_device", "SnapshotArchive")?,
        })
    }
}

/// Accumulates snapshots for one simulated network and delta-encodes them
/// into a [`SnapshotArchive`].
///
/// The simulator emits snapshots in *event* order while the archive wants
/// *time* order (timestamps are drawn randomly within a month), so the
/// builder records each snapshot's interned line sequence and defers
/// sorting, adjacent-duplicate dropping and delta encoding to
/// [`ArchiveBuilder::finish`]. A single render buffer is reused across all
/// snapshots of the network, and the line-id sequences of *all* pending
/// snapshots live in one pooled arena (`ids`) addressed by per-snapshot
/// spans — at paper scale the old one-`Vec<LineId>`-per-snapshot layout
/// cost 531k short-lived allocations in the generate hot loop.
#[derive(Debug, Default)]
pub struct ArchiveBuilder {
    table: LineTable,
    scratch: String,
    /// Pooled line-id arena; every pending snapshot's sequence is a span
    /// of this vector. Append-only until `finish`.
    ids: Vec<LineId>,
    pending: BTreeMap<DeviceId, Vec<PendingSnapshot>>,
}

#[derive(Debug)]
struct PendingSnapshot {
    time: Timestamp,
    login: Login,
    text_len: usize,
    /// Span of this snapshot's line ids within the builder's pooled arena.
    off: u32,
    len: u32,
}

impl PendingSnapshot {
    fn range(&self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

impl ArchiveBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one snapshot: `render` writes the config text into the shared
    /// scratch buffer (already cleared), which is then interned line by line.
    pub fn record_with(
        &mut self,
        device: DeviceId,
        time: Timestamp,
        login: Login,
        render: impl FnOnce(&mut String),
    ) {
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        render(&mut scratch);
        let off = self.arena_off();
        for l in split_lines(&scratch) {
            let id = self.table.intern(l);
            self.ids.push(id);
        }
        self.push_pending(device, time, login, scratch.len(), off);
        self.scratch = scratch;
    }

    /// Record one snapshot whose interned line sequence the caller
    /// produces directly (the delta-native generator splices cached chunk
    /// sequences instead of rendering text): `fill` **appends** the
    /// snapshot's line ids to the pooled arena it is handed. `text_len`
    /// must be the byte length of the text those lines materialize to,
    /// trailing newline included.
    pub fn record_lines_with(
        &mut self,
        device: DeviceId,
        time: Timestamp,
        login: Login,
        text_len: usize,
        fill: impl FnOnce(&mut Vec<LineId>),
    ) {
        let off = self.arena_off();
        fill(&mut self.ids);
        self.push_pending(device, time, login, text_len, off);
    }

    /// Intern `text` line by line, appending the ids to `out` (which may
    /// be the caller's own buffer — this does not touch the pooled arena).
    /// Used by [`RenderCache`] to intern novel chunk text through the
    /// builder's table. `text` must be non-empty and newline-terminated
    /// (chunk renderers guarantee both).
    pub fn intern_lines_into(&mut self, text: &str, out: &mut Vec<LineId>) {
        debug_assert!(!text.is_empty() && text.ends_with('\n'));
        for l in split_lines(text) {
            out.push(self.table.intern(l));
        }
    }

    fn arena_off(&self) -> u32 {
        u32::try_from(self.ids.len()).expect("pending id arena overflow")
    }

    fn push_pending(
        &mut self,
        device: DeviceId,
        time: Timestamp,
        login: Login,
        text_len: usize,
        off: u32,
    ) {
        let len = self.arena_off() - off;
        self.pending
            .entry(device)
            .or_default()
            .push(PendingSnapshot { time, login, text_len, off, len });
    }

    /// Sort per device by time (stable, preserving event order within equal
    /// timestamps), drop time-adjacent duplicates (an NMS only commits a
    /// snapshot when the text actually changed), and delta-encode.
    pub fn finish(self) -> SnapshotArchive {
        let ids = self.ids;
        let mut by_device = BTreeMap::new();
        for (dev, mut pending) in self.pending {
            pending.sort_by_key(|p| p.time);
            pending.dedup_by(|b, a| {
                // mpa-lint: allow(R7) -- pending ranges were carved out of `ids` by the loader above
                a.text_len == b.text_len && ids[a.range()] == ids[b.range()]
            });
            let mut hist = DeviceHistory::default();
            for (i, snap) in pending.into_iter().enumerate() {
                // mpa-lint: allow(R7) -- pending ranges were carved out of `ids` by the loader above
                let lines = &ids[snap.range()];
                if i == 0 {
                    hist.base.extend_from_slice(lines);
                } else {
                    hist.push_delta(&LineDelta::between(&hist.tip, lines));
                }
                hist.tip.clear();
                hist.tip.extend_from_slice(lines);
                hist.text_lens.push(snap.text_len);
                hist.metas.push(SnapshotMeta { device: dev, time: snap.time, login: snap.login });
            }
            by_device.insert(dev, hist);
        }
        SnapshotArchive { table: self.table, by_device }
    }
}

/// Per-network render cache for the delta-native generator: maps a chunk's
/// rendered text to its interned line-id sequence, so revisiting a chunk
/// state (ops toggle between a handful of values) skips per-line interning
/// entirely.
///
/// Keys are the exact chunk bytes — the candidate's stored text is compared
/// on every probe, so hash collisions cannot alias distinct chunks — and
/// both texts and id sequences live in packed arenas (two `Vec`s total,
/// regardless of entry count). Slots are returned as dense `u32` handles
/// for the generator's per-device chunk maps.
///
/// All `gen_*` counters are maintained here, which gives the balance
/// invariant the CLI tests assert:
/// `gen_render_cache_hits + gen_render_cache_misses == gen_chunks_rendered`.
#[derive(Debug, Default)]
pub struct RenderCache {
    /// Arena of cached chunk texts, concatenated.
    text: String,
    /// Arena of cached line-id sequences, concatenated.
    ids: Vec<LineId>,
    /// Per-slot `(text_start, text_end, ids_start, ids_end)`.
    slots: Vec<(u32, u32, u32, u32)>,
    /// Text-hash → candidate slots (lookup-only; exact compare resolves).
    index: HashMap<u64, Vec<u32>>,
}

impl RenderCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot holding `chunk_text`'s interned line sequence, interning
    /// through `builder` on first sight. `chunk_text` must be non-empty
    /// (callers skip empty chunk renders).
    pub fn slot_for(&mut self, builder: &mut ArchiveBuilder, chunk_text: &str) -> u32 {
        debug_assert!(!chunk_text.is_empty());
        mpa_obs::counters::GEN_CHUNKS_RENDERED.incr();
        mpa_obs::counters::GEN_BYTES_RENDERED.add(chunk_text.len() as u64);
        let hash = hash_line(chunk_text);
        let hit = self.index.get(&hash).and_then(|cands| {
            cands.iter().copied().find(|&slot| self.slot_text(slot) == chunk_text)
        });
        if let Some(slot) = hit {
            mpa_obs::counters::GEN_RENDER_CACHE_HITS.incr();
            mpa_obs::counters::GEN_LINES_RENDERED.add(self.ids(slot).len() as u64);
            return slot;
        }
        mpa_obs::counters::GEN_RENDER_CACHE_MISSES.incr();
        let slot = u32::try_from(self.slots.len()).expect("render cache overflow");
        let text_start = u32::try_from(self.text.len()).expect("render cache arena overflow");
        self.text.push_str(chunk_text);
        let text_end = u32::try_from(self.text.len()).expect("render cache arena overflow");
        let ids_start = u32::try_from(self.ids.len()).expect("render cache arena overflow");
        let mut ids = std::mem::take(&mut self.ids);
        builder.intern_lines_into(chunk_text, &mut ids);
        self.ids = ids;
        let ids_end = u32::try_from(self.ids.len()).expect("render cache arena overflow");
        mpa_obs::counters::GEN_LINES_RENDERED.add((ids_end - ids_start) as u64);
        self.slots.push((text_start, text_end, ids_start, ids_end));
        self.index.entry(hash).or_default().push(slot);
        slot
    }

    /// The interned line-id sequence of a slot.
    pub fn ids(&self, slot: u32) -> &[LineId] {
        let (_, _, s, e) = self.slots[slot as usize];
        &self.ids[s as usize..e as usize]
    }

    /// Byte length of a slot's chunk text (newline-terminated).
    pub fn text_len(&self, slot: u32) -> usize {
        let (s, e, _, _) = self.slots[slot as usize];
        (e - s) as usize
    }

    /// Number of distinct chunk texts cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot_text(&self, slot: u32) -> &str {
        let (s, e, _, _) = self.slots[slot as usize];
        &self.text[s as usize..e as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(dev: u32, t: u64, login: &str, text: &str) -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                device: DeviceId(dev),
                time: Timestamp(t),
                login: Login::new(login),
            },
            text: text.to_string(),
        }
    }

    #[test]
    fn push_and_query_history() {
        let mut a = SnapshotArchive::new();
        a.push(snap(1, 10, "alice", "v1")).unwrap();
        a.push(snap(1, 20, "bob", "v2")).unwrap();
        a.push(snap(2, 15, "svc-auto", "w1")).unwrap();
        assert_eq!(a.n_snapshots(), 3);
        assert_eq!(a.device_metas(DeviceId(1)).len(), 2);
        assert_eq!(a.devices().collect::<Vec<_>>(), vec![DeviceId(1), DeviceId(2)]);
        assert_eq!(a.total_bytes(), 6);
        assert_eq!(a.device_texts(DeviceId(1)), vec!["v1".to_string(), "v2".to_string()]);
        let hist = a.device_history(DeviceId(1));
        assert_eq!(hist[1].meta.login, Login::new("bob"));
        assert_eq!(hist[1].text, "v2");
    }

    #[test]
    fn rejects_out_of_order() {
        let mut a = SnapshotArchive::new();
        a.push(snap(1, 20, "alice", "v1")).unwrap();
        let err = a.push(snap(1, 10, "alice", "v0")).unwrap_err();
        assert!(matches!(err, ConfigError::OutOfOrderSnapshot { .. }));
        // Equal timestamps are allowed (two changes in the same minute).
        a.push(snap(1, 20, "alice", "v2")).unwrap();
    }

    #[test]
    fn latest_at_boundaries() {
        let mut a = SnapshotArchive::new();
        a.push(snap(1, 10, "x", "v1")).unwrap();
        a.push(snap(1, 20, "x", "v2")).unwrap();
        assert!(a.latest_at(DeviceId(1), Timestamp(5)).is_none());
        assert_eq!(a.latest_at(DeviceId(1), Timestamp(10)).unwrap().text, "v1");
        assert_eq!(a.latest_at(DeviceId(1), Timestamp(15)).unwrap().text, "v1");
        assert_eq!(a.latest_at(DeviceId(1), Timestamp(99)).unwrap().text, "v2");
        assert!(a.latest_at(DeviceId(9), Timestamp(99)).is_none());
    }

    #[test]
    fn reconstruction_is_exact_including_odd_texts() {
        // Internal blank lines, missing trailing newline, empty text,
        // bare newline: every shape must round-trip bit-for-bit.
        let texts = ["a\nb\n", "a\n\nb", "", "\n", "x", "x\n\n"];
        let mut a = SnapshotArchive::new();
        for (i, t) in texts.iter().enumerate() {
            a.push(snap(7, i as u64, "x", t)).unwrap();
        }
        assert_eq!(a.device_texts(DeviceId(7)), texts);
        assert_eq!(a.total_bytes(), texts.iter().map(|t| t.len()).sum::<usize>());
    }

    #[test]
    fn interning_shrinks_repeated_content() {
        let shared = "line one\nline two\nline three\n";
        let mut a = SnapshotArchive::new();
        for dev in 0..50u32 {
            a.push(snap(dev, 0, "x", shared)).unwrap();
            a.push(snap(dev, 9, "x", &format!("{shared}extra {dev}\n"))).unwrap();
        }
        assert!(
            a.text_bytes() < a.total_bytes(),
            "delta encoding should beat full text: {} vs {}",
            a.text_bytes(),
            a.total_bytes()
        );
    }

    #[test]
    fn delta_between_apply_revert_round_trip() {
        let old: Vec<LineId> = [0u32, 1, 2, 3, 4].iter().map(|&i| LineId(i)).collect();
        let new: Vec<LineId> = [0u32, 1, 9, 8, 3, 4].iter().map(|&i| LineId(i)).collect();
        let d = LineDelta::between(&old, &new);
        assert_eq!(d.at, 2);
        assert_eq!(d.removed, vec![LineId(2)]);
        assert_eq!(d.added, vec![LineId(9), LineId(8)]);
        let mut cur = old.clone();
        d.apply(&mut cur);
        assert_eq!(cur, new);
        d.revert(&mut cur);
        assert_eq!(cur, old);
        assert!(LineDelta::between(&old, &old).is_empty());
    }

    #[test]
    fn builder_matches_push_built_archive() {
        // Same snapshots, recorded out of time order through the builder,
        // must materialize identically to an in-order push sequence.
        let texts = ["hostname h\n!\n", "hostname h\n!\nvlan 10\n name v10\n!\n"];
        let mut pushed = SnapshotArchive::new();
        pushed.push(snap(3, 10, "a", texts[0])).unwrap();
        pushed.push(snap(3, 20, "b", texts[1])).unwrap();

        let mut b = ArchiveBuilder::new();
        b.record_with(DeviceId(3), Timestamp(20), Login::new("b"), |s| s.push_str(texts[1]));
        b.record_with(DeviceId(3), Timestamp(10), Login::new("a"), |s| s.push_str(texts[0]));
        let built = b.finish();

        assert_eq!(built.device_history(DeviceId(3)), pushed.device_history(DeviceId(3)));
        assert_eq!(built.total_bytes(), pushed.total_bytes());
    }

    #[test]
    fn record_lines_with_matches_record_with() {
        // Splicing cached chunk sequences through the render cache must
        // produce the same archive as rendering full text, including the
        // intern table (chunk texts concatenate to the full documents).
        let chunks = ["hostname h\n!\n", "vlan 10\n name v10\n!\n"];
        let docs: [String; 3] = [
            chunks[0].to_string(),
            format!("{}{}", chunks[0], chunks[1]),
            chunks[0].to_string(),
        ];

        let mut full = ArchiveBuilder::new();
        for (t, doc) in docs.iter().enumerate() {
            full.record_with(DeviceId(1), Timestamp(t as u64), Login::new("x"), |s| {
                s.push_str(doc)
            });
        }

        let mut delta = ArchiveBuilder::new();
        let mut cache = RenderCache::new();
        let s0 = cache.slot_for(&mut delta, chunks[0]);
        delta.record_lines_with(DeviceId(1), Timestamp(0), Login::new("x"), docs[0].len(), {
            let ids: Vec<LineId> = cache.ids(s0).to_vec();
            move |out| out.extend_from_slice(&ids)
        });
        let s1 = cache.slot_for(&mut delta, chunks[1]);
        assert_eq!(cache.text_len(s0) + cache.text_len(s1), docs[1].len());
        delta.record_lines_with(DeviceId(1), Timestamp(1), Login::new("x"), docs[1].len(), {
            let mut ids: Vec<LineId> = cache.ids(s0).to_vec();
            ids.extend_from_slice(cache.ids(s1));
            move |out| out.extend_from_slice(&ids)
        });
        // Revisit of the first state: pure cache hits.
        let s0_again = cache.slot_for(&mut delta, chunks[0]);
        assert_eq!(s0, s0_again, "revisited chunk text must hit its slot");
        delta.record_lines_with(DeviceId(1), Timestamp(2), Login::new("x"), docs[2].len(), {
            let ids: Vec<LineId> = cache.ids(s0).to_vec();
            move |out| out.extend_from_slice(&ids)
        });

        let full = full.finish();
        let delta = delta.finish();
        assert_eq!(full, delta, "delta-spliced archive must equal full-render archive");
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&delta).unwrap()
        );
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn merge_all_uses_offset_partitioned_ids() {
        let mut a = SnapshotArchive::new();
        a.push(snap(1, 0, "x", "shared\na-only\n")).unwrap();
        let mut b = SnapshotArchive::new();
        b.push(snap(2, 0, "y", "shared\nb-only\n")).unwrap();
        let (a_lines, b_lines) = (a.n_interned_lines(), b.n_interned_lines());
        let before = mpa_obs::counters::snapshot();
        let merged = SnapshotArchive::merge_all(vec![a, b]);
        let diff = mpa_obs::counters::snapshot_diff(&before, &mpa_obs::counters::snapshot());
        let get = |name: &str| diff.iter().find(|(n, _)| *n == name).unwrap().1;
        // Table concatenation: every shard line appended, nothing remapped.
        assert!(get("archive_merge_table_lines") >= (a_lines + b_lines) as u64);
        // Duplicated "shared" keeps one id per shard; texts reconstruct.
        assert_eq!(merged.n_interned_lines(), a_lines + b_lines);
        assert_eq!(merged.device_texts(DeviceId(1)), vec!["shared\na-only\n"]);
        assert_eq!(merged.device_texts(DeviceId(2)), vec!["shared\nb-only\n"]);
        // Lookup interning still canonicalizes to the lowest id: a fresh
        // push of "shared" must not grow the table.
        let mut merged = merged;
        let lines_before = merged.n_interned_lines();
        merged.push(snap(3, 1, "z", "shared\n")).unwrap();
        assert_eq!(merged.n_interned_lines(), lines_before);
        assert_eq!(merged.device_texts(DeviceId(3)), vec!["shared\n"]);
    }

    #[test]
    fn builder_drops_time_adjacent_duplicates() {
        let mut b = ArchiveBuilder::new();
        for (t, text) in [(5, "a\n"), (10, "b\n"), (15, "b\n"), (20, "a\n")] {
            b.record_with(DeviceId(1), Timestamp(t), Login::new("x"), |s| s.push_str(text));
        }
        let a = b.finish();
        // The t=15 duplicate of "b" is dropped; the t=20 return to "a" is
        // a real change and stays.
        assert_eq!(a.device_texts(DeviceId(1)), vec!["a\n", "b\n", "a\n"]);
    }

    #[test]
    fn merge_remaps_lines_across_tables() {
        let mut left = SnapshotArchive::new();
        left.push(snap(1, 0, "x", "shared line\nleft only\n")).unwrap();
        let mut right = SnapshotArchive::new();
        right.push(snap(2, 0, "y", "right only\nshared line\n")).unwrap();
        let right_texts = right.device_texts(DeviceId(2));
        left.merge(right);
        assert_eq!(left.n_snapshots(), 2);
        assert_eq!(left.device_texts(DeviceId(2)), right_texts);
        // "shared line" interned once.
        assert_eq!(left.table.line_strs().filter(|l| *l == "shared line").count(), 1);
    }

    #[test]
    #[should_panic(expected = "present in both")]
    fn merge_panics_on_device_collision() {
        let mut left = SnapshotArchive::new();
        left.push(snap(1, 0, "x", "a\n")).unwrap();
        let mut right = SnapshotArchive::new();
        right.push(snap(1, 0, "y", "b\n")).unwrap();
        left.merge(right);
    }

    #[test]
    fn serde_round_trip_rebuilds_materialization_state() {
        let mut a = SnapshotArchive::new();
        a.push(snap(1, 0, "x", "hostname h\n!\n")).unwrap();
        a.push(snap(1, 9, "y", "hostname h\n!\nvlan 10\n name v\n!\n")).unwrap();
        a.push(snap(2, 4, "z", "hostname g\n!\n")).unwrap();
        let json = serde_json::to_string(&a).expect("serialize");
        let back: SnapshotArchive = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(a, back, "tip must be rebuilt identically on deserialize");
        // And the rebuilt archive accepts further pushes.
        let mut back = back;
        back.push(snap(1, 12, "x", "hostname h\n!\n")).unwrap();
        assert_eq!(back.device_texts(DeviceId(1)).last().unwrap(), "hostname h\n!\n");
    }

    #[test]
    fn interning_is_counted() {
        let before = mpa_obs::counters::snapshot();
        let mut a = SnapshotArchive::new();
        a.push(snap(1, 0, "x", "dup\ndup\nuniq\n")).unwrap();
        let diff = mpa_obs::counters::snapshot_diff(&before, &mpa_obs::counters::snapshot());
        let get = |name: &str| diff.iter().find(|(n, _)| *n == name).unwrap().1;
        // Lower bounds: other tests intern concurrently in this process.
        assert!(get("archive_lines_interned") >= 2, "dup + uniq stored once each");
        assert!(get("archive_line_hits") >= 1, "second dup is a hit");
        assert!(get("archive_bytes_saved") >= 4, "len(\"dup\") + newline");
    }

    #[test]
    fn delta_cursor_replays_history_without_materializing() {
        let texts = ["a\nb\n", "a\nc\nb\n", "a\nc\nb\n", "a\nb"];
        let mut a = SnapshotArchive::new();
        for (i, t) in texts.iter().enumerate() {
            a.push(snap(5, i as u64 * 10, "x", t)).unwrap();
        }
        let mut cur = a.delta_cursor(DeviceId(5)).expect("history exists");
        assert_eq!(cur.len(), 4);
        assert!(!cur.is_empty());
        let mut seen = Vec::new();
        loop {
            // Re-materialize through the cursor's state to prove it tracks
            // each snapshot exactly (trailing newline via text_len).
            let mut text = String::new();
            for (k, &id) in cur.lines().iter().enumerate() {
                if k > 0 {
                    text.push('\n');
                }
                text.push_str(cur.line_text(id));
            }
            if text.len() + 1 == cur.text_len() {
                text.push('\n');
            }
            assert_eq!(cur.meta().time, Timestamp(cur.index() as u64 * 10));
            seen.push(text);
            if cur.advance().is_none() {
                break;
            }
        }
        assert_eq!(seen, texts);
        assert!(a.delta_cursor(DeviceId(99)).is_none());
        assert!(a.n_interned_lines() >= 3, "a, b, c interned");
        assert_eq!(a.line_text(LineId(0)), "a");
    }

    #[test]
    fn user_directory_still_classifies() {
        use crate::snapshot::UserDirectory;
        let dir = UserDirectory::new(["svc-netauto".to_string()]);
        assert!(dir.is_automated(&Login::new("svc-netauto")));
        assert!(!dir.is_automated(&Login::new("alice")));
    }
}
