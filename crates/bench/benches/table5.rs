//! Criterion bench: the quasi-experimental design behind `table5`
//! (treatment = number of change events), uncached.

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_bench::fixtures;
use mpa_core::CausalConfig;
use mpa_metrics::Metric;

fn bench(c: &mut Criterion) {
    let fx = fixtures::small();
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("qed_change_events", |b| {
        b.iter(|| mpa_core::analyze_treatment(fx.table(), Metric::ChangeEvents, &CausalConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
