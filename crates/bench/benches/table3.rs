//! Criterion bench: Table 3's MI-ranking computation (uncached).

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_bench::fixtures;

fn bench(c: &mut Criterion) {
    let fx = fixtures::small();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("mi_ranking", |b| b.iter(|| mpa_core::mi_ranking(fx.table(), 20)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
