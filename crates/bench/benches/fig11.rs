//! Criterion bench: regeneration pipeline for experiment `fig11`
//! (see DESIGN.md §5 for the table/figure it reproduces).

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_bench::{experiments, fixtures};

fn bench(c: &mut Criterion) {
    let fx = fixtures::small();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| experiments::run("fig11", fx).expect("known id")));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
