//! Criterion bench: the ablation suite (δ sensitivity, bin granularity,
//! oversampling multipliers, matching caliper, boost variants).

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_bench::{experiments, fixtures};

fn bench(c: &mut Criterion) {
    let fx = fixtures::tiny();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for id in experiments::ABLATIONS {
        g.bench_function(id, |b| b.iter(|| experiments::run(id, fx).expect("known id")));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
