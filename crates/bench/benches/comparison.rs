//! Criterion bench: the top-practice causal sweep behind `comparison`, uncached
//! (three representative treatments; the full table runs ten).

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_bench::fixtures;
use mpa_core::CausalConfig;
use mpa_metrics::Metric;

fn bench(c: &mut Criterion) {
    let fx = fixtures::small();
    let mut g = c.benchmark_group("comparison");
    g.sample_size(10);
    g.bench_function("qed_three_treatments", |b| {
        b.iter(|| {
            for m in [Metric::Devices, Metric::Vlans, Metric::FracAclEvents] {
                let _ = mpa_core::analyze_treatment(fx.table(), m, &CausalConfig::default());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
