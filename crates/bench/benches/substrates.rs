//! Criterion bench: the workspace's computational primitives — config
//! rendering/parsing/diffing, event grouping, MI, propensity fitting,
//! matching, and tree induction. These are the inner loops every experiment
//! pipeline amortizes; tracking them separately localizes regressions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpa_bench::fixtures;
use mpa_config::semantic::{AclRule, DeviceConfig};
use mpa_config::{diff_configs, parse_config, render_config};
use mpa_core::predict::{build_learnset, HealthClasses};
use mpa_core::CausalConfig;
use mpa_metrics::{group_events, infer_case_table, Metric};
use mpa_model::device::Dialect;

fn sample_config(dialect: Dialect) -> DeviceConfig {
    let mut c = DeviceConfig::new("bench-dev", dialect);
    for p in 1..=24 {
        c.set_description(p, format!("link to net0-sw-dev{p}"));
    }
    for v in 0..12 {
        c.assign_interface_vlan(v + 1, 10 + v * 10);
    }
    for a in 0..4 {
        for r in 0..6 {
            c.acl_add_rule(
                &format!("acl-{a}"),
                AclRule { permit: r % 2 == 0, protocol: "tcp".into(), port: 1000 + r },
            );
        }
    }
    c.bgp_add_neighbor(65_000, "10.0.1.1", 65_000);
    c.bgp_add_neighbor(65_000, "10.0.2.1", 65_000);
    c.ospf_advertise(1, "10.0.0.0/16");
    c
}

fn bench_config_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("config-substrate");
    for dialect in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
        let cfg = sample_config(dialect);
        let text = render_config(&cfg);
        let name = format!("{dialect:?}");
        g.bench_function(format!("render/{name}"), |b| b.iter(|| render_config(&cfg)));
        g.bench_function(format!("parse/{name}"), |b| {
            b.iter(|| parse_config(&text, dialect).expect("parses"))
        });
        let old = parse_config(&text, dialect).expect("parses");
        let mut cfg2 = cfg.clone();
        cfg2.assign_interface_vlan(3, 990);
        cfg2.add_user("tmp-bench", "contractor");
        let text2 = render_config(&cfg2);
        let new = parse_config(&text2, dialect).expect("parses");
        g.bench_function(format!("diff/{name}"), |b| b.iter(|| diff_configs(&old, &new)));
    }
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let fx = fixtures::tiny();
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    g.bench_function("infer_case_table/tiny", |b| b.iter(|| infer_case_table(&fx.dataset)));
    let changes = fx.inference.device_changes.values().next().expect("networks exist");
    g.bench_function("group_events", |b| b.iter(|| group_events(changes, 5)));
    g.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let fx = fixtures::small();
    let table = fx.table();
    let mut g = c.benchmark_group("analytics");
    g.sample_size(10);
    g.bench_function("mi_ranking", |b| b.iter(|| mpa_core::mi_ranking(table, 30)));
    g.bench_function("cmi_ranking", |b| b.iter(|| mpa_core::cmi_ranking(table)));
    g.bench_function("qed_change_events", |b| {
        b.iter(|| mpa_core::analyze_treatment(table, Metric::ChangeEvents, &CausalConfig::default()))
    });
    let set = build_learnset(table, HealthClasses::Five);
    g.bench_function("c45_fit", |b| {
        b.iter_batched(
            || set.clone(),
            |s| mpa_learn::DecisionTree::fit_default(&s),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("adaboost_fit", |b| {
        b.iter_batched(
            || set.clone(),
            |s| mpa_learn::AdaBoost::fit_default(&s),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_config_substrate, bench_inference, bench_analytics);
criterion_main!(benches);
