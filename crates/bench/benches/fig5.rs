//! Criterion bench: regeneration pipeline for experiment `fig5`
//! (see DESIGN.md §5 for the table/figure it reproduces).

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_bench::{experiments, fixtures};

fn bench(c: &mut Criterion) {
    let fx = fixtures::small();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| experiments::run("fig5", fx).expect("known id")));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
