//! Criterion bench: the full generate → infer → MI pipeline.
//!
//! This is the tentpole measurement for the data-parallel execution
//! engine: the whole pipeline, end to end, at a bench-friendly scale and
//! at (a subset of) the paper's scale. Thread count comes from the
//! environment (`MPA_THREADS`), so the same bench measures sequential and
//! parallel runs:
//!
//! ```text
//! MPA_THREADS=1 cargo bench --bench pipeline
//! cargo bench --bench pipeline            # all cores
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mpa_metrics::pipeline::infer;
use mpa_metrics::DELTA_DEFAULT_MINUTES;
use mpa_synth::Scenario;

fn pipeline(scenario: &Scenario) -> usize {
    let dataset = scenario.generate();
    let inference = infer(&dataset, DELTA_DEFAULT_MINUTES);
    let mi = mpa_core::mi_ranking(&inference.table, 20);
    inference.table.n_cases() + mi.len()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    // ~100 networks: the everyday scale.
    let mid = Scenario {
        org: mpa_synth::OrgConfig { n_networks: 100, ..Scenario::medium().org },
        ..Scenario::medium()
    };
    g.bench_function("generate_infer_mi/100", |b| b.iter(|| pipeline(&mid)));

    // 850 networks: the paper's scale (a few samples are enough for a
    // wall-clock figure; BENCH_pipeline.json holds the canonical runs).
    let paper = Scenario {
        org: mpa_synth::OrgConfig { n_networks: 850, ..Scenario::paper().org },
        ..Scenario::paper()
    };
    g.bench_function("generate_infer_mi/850", |b| b.iter(|| pipeline(&paper)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
