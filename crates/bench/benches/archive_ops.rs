//! Criterion microbenches for the two archive hot paths the delta-native
//! generator reshaped (DESIGN.md §15):
//!
//! * **intern** — `LineTable::intern` throughput via
//!   `ArchiveBuilder::record_with`, on a corpus with the generation
//!   workload's shape: most lines repeat across snapshots (the table hits
//!   its hash map), a small fraction are novel (the table appends).
//! * **merge_all** — the offset-partitioned shard merge, which shifts
//!   interned ids by a per-shard constant instead of remapping every line
//!   through a rebuilt table.
//!
//! ```text
//! cargo bench --bench archive_ops
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpa_config::snapshot::Login;
use mpa_config::{ArchiveBuilder, SnapshotArchive};
use mpa_model::{DeviceId, Timestamp};

/// A synthetic config text: `base` lines shared by every snapshot of the
/// device plus a few lines that vary with `rev` (what an op edit does).
fn config_text(dev: u32, rev: u32, base: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!("hostname dev-{dev}\n"));
    for i in 0..base {
        s.push_str(&format!("interface Ethernet{i}\n  description port {i}\n"));
    }
    s.push_str(&format!("snmp-server location rack-{}\n", rev % 7));
    s.push_str(&format!("ntp server 10.0.{}.{}\n", rev % 5, rev % 251));
    s
}

/// Build one shard archive: `devices` devices × `snaps` snapshots each.
fn build_shard(shard: u32, devices: u32, snaps: u32) -> SnapshotArchive {
    let mut b = ArchiveBuilder::new();
    for d in 0..devices {
        let dev = DeviceId(shard * 10_000 + d);
        for rev in 0..snaps {
            b.record_with(dev, Timestamp(u64::from(rev) * 3600), Login::new("op0"), |out| {
                out.push_str(&config_text(dev.0, rev, 40));
            });
        }
    }
    b.finish()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive_ops");
    g.sample_size(20);

    // Interning: 8 devices × 50 snapshots, ~44 lines each. Reuse one text
    // corpus so the measurement is the builder, not format!.
    let corpus: Vec<(DeviceId, Timestamp, String)> = (0..8u32)
        .flat_map(|d| {
            (0..50u32).map(move |rev| {
                (DeviceId(d), Timestamp(u64::from(rev) * 3600), config_text(d, rev, 40))
            })
        })
        .collect();
    g.bench_function("intern/record_with_400_snapshots", |b| {
        b.iter(|| {
            let mut builder = ArchiveBuilder::new();
            for (dev, time, text) in &corpus {
                builder.record_with(*dev, *time, Login::new("op0"), |out| out.push_str(text));
            }
            builder.finish().n_interned_lines()
        })
    });

    // Merging: 8 shards of 6 devices × 30 snapshots — the shape
    // `Scenario::generate` hands `merge_all` (one shard per network).
    let shards: Vec<SnapshotArchive> = (0..8).map(|s| build_shard(s, 6, 30)).collect();
    g.bench_function("merge_all/8_shards", |b| {
        b.iter_batched(
            || shards.clone(),
            |shards| SnapshotArchive::merge_all(shards).n_snapshots(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
