//! Closed-loop HTTP load generator for the `mpa-serve` daemon.
//!
//! Each client thread holds one keep-alive HTTP/1.1 connection and issues
//! its share of the request budget back-to-back (closed loop: the next
//! request starts only when the previous response has been fully read).
//! The endpoint mix is derived deterministically from the global request
//! index, seeded by the daemon's own `/healthz` metadata — network ids and
//! the observation period come from the resident corpus, so the generator
//! needs no out-of-band knowledge of the dataset.
//!
//! Every `ingest_every`-th request POSTs a fresh synthetic ticket (ids
//! allocated far above any generated corpus), exercising the write path
//! under concurrent reads. The run fails — nonzero `non_2xx` — if any
//! response falls outside the 2xx class, so CI can gate on it directly.
//!
//! The artifact ([`ServeBench`], written as `BENCH_serve.json`) records
//! throughput and latency percentiles computed the same way the daemon's
//! own drain-time gauges are: sorted `u64` microseconds, `len/2` and
//! `len*99/100` indices. Integer-microsecond latencies keep the artifact
//! byte-stable across runs that happen to tie.

use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Ticket ids minted by the generator start here — far above anything a
/// generated corpus contains, so repeated ingests never collide with
/// corpus tickets (only with a *re-run* against the same daemon, which is
/// why the base is configurable).
pub const INGEST_ID_BASE: u32 = 50_000_000;

/// Load run configuration (mirrors the `mpa-loadgen` CLI flags).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Number of concurrent closed-loop client connections.
    pub clients: usize,
    /// Total request budget across all clients.
    pub requests: usize,
    /// POST one ticket ingest every Nth request (0 disables ingest).
    pub ingest_every: usize,
    /// First ticket id to mint (monotone per ingest request).
    pub ticket_id_base: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            clients: 4,
            requests: 400,
            ingest_every: 50,
            ticket_id_base: INGEST_ID_BASE,
        }
    }
}

/// The `BENCH_serve.json` artifact: one closed-loop run against a
/// resident daemon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBench {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests actually issued (GETs + ingests).
    pub requests: usize,
    /// How many of those were POST `/ingest`.
    pub ingests: usize,
    /// Responses outside the 2xx class — any nonzero value fails the run.
    pub non_2xx: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Requests per second (requests / wall_s).
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst request latency, microseconds.
    pub max_us: u64,
    /// `events_applied` reported by the daemon after the run — confirms
    /// every accepted ingest landed in the resident session.
    pub events_applied: u64,
}

/// The `/healthz` fields the generator steers by (unknown fields in the
/// response are ignored by the vendored serde).
#[derive(Debug, Clone, Deserialize)]
struct HealthzMeta {
    period_total_minutes: u64,
    network_ids: Vec<u32>,
    events_applied: u64,
}

/// The `/networks/:id/practices` fields used to discover real cases.
/// The case table is sparse — not every `(network, month)` pair has a
/// case — so `/predict` targets are drawn from this pool, never guessed.
#[derive(Debug, Clone, Deserialize)]
struct PracticesView {
    network: u32,
    cases: Vec<CaseView>,
}

#[derive(Debug, Clone, Deserialize)]
struct CaseView {
    month: usize,
}

/// One keep-alive HTTP/1.1 connection.
struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Issue one request and read the full response. Returns
    /// `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, String)> {
        let payload = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: mpa-serve\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }
}

/// Deterministic GET path for global request index `seq`. `cases` is the
/// pool of known `(network, month)` case coordinates for `/predict`; when
/// it is empty the predict slot falls back to `/healthz`.
fn get_path(seq: usize, meta: &HealthzMeta, cases: &[(u32, usize)]) -> String {
    let nets = &meta.network_ids;
    let net = nets[seq % nets.len().max(1)];
    match seq % 5 {
        0 => "/healthz".to_string(),
        1 => "/rankings/mi".to_string(),
        2 => "/causal/summary".to_string(),
        3 if !cases.is_empty() => {
            let (net, month) = cases[seq % cases.len()];
            format!("/predict?network={net}&month={month}")
        }
        3 => "/healthz".to_string(),
        _ => format!("/networks/{net}/practices"),
    }
}

/// Ingest body for global request index `seq`: one fresh ticket.
fn ingest_body(seq: usize, ticket_id_base: u32, meta: &HealthzMeta) -> String {
    let id = ticket_id_base + seq as u32;
    let net = meta.network_ids[seq % meta.network_ids.len().max(1)];
    // Spread opened times over the observation period, deterministically.
    let opened = (seq as u64 * 37) % meta.period_total_minutes.max(1);
    format!(
        "{{\"snapshots\": [], \"tickets\": [{{\"id\": {id}, \"network\": {net}, \
         \"kind\": \"MonitoringAlarm\", \"opened\": {opened}, \"resolved\": null, \
         \"devices\": [], \"severity\": \"Low\", \"symptom\": \"loadgen synthetic ticket\"}}]}}"
    )
}

/// Per-client tallies, merged by [`run_load`].
struct ClientTally {
    latencies_us: Vec<u64>,
    non_2xx: usize,
    ingests: usize,
}

/// Run one closed-loop load generation pass against a live daemon.
///
/// Connects, reads `/healthz` for steering metadata, fans the request
/// budget across `clients` keep-alive connections, then re-reads
/// `/healthz` to record the post-run `events_applied`.
pub fn run_load(cfg: &LoadConfig) -> io::Result<ServeBench> {
    let mut probe = HttpClient::connect(&cfg.addr)?;
    let (status, body) = probe.request("GET", "/healthz", None)?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("/healthz returned {status} before the run"),
        ));
    }
    let meta: HealthzMeta = serde_json::from_str(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("/healthz parse: {e}")))?;
    if meta.network_ids.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "daemon reports zero networks"));
    }

    // Discover real case coordinates so `/predict` never guesses.
    let mut cases: Vec<(u32, usize)> = Vec::new();
    for &net in &meta.network_ids {
        let (status, body) = probe.request("GET", &format!("/networks/{net}/practices"), None)?;
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("/networks/{net}/practices returned {status} before the run"),
            ));
        }
        let view: PracticesView = serde_json::from_str(&body).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("practices parse: {e}"))
        })?;
        cases.extend(view.cases.iter().map(|c| (view.network, c.month)));
    }

    let clients = cfg.clients.max(1);
    let total = cfg.requests.max(1);
    let started = Instant::now();
    let tallies: Vec<io::Result<ClientTally>> = std::thread::scope(|scope| {
        let meta = &meta;
        let cases = cases.as_slice();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> io::Result<ClientTally> {
                    // Client c owns request indices c, c+clients, c+2*clients, ...
                    let mut client = HttpClient::connect(&cfg.addr)?;
                    let mut tally =
                        ClientTally { latencies_us: Vec::new(), non_2xx: 0, ingests: 0 };
                    let mut seq = c;
                    while seq < total {
                        let is_ingest = cfg.ingest_every > 0 && seq % cfg.ingest_every == cfg.ingest_every - 1;
                        let t0 = Instant::now();
                        let (status, _body) = if is_ingest {
                            let body = ingest_body(seq, cfg.ticket_id_base, meta);
                            tally.ingests += 1;
                            client.request("POST", "/ingest", Some(&body))?
                        } else {
                            client.request("GET", &get_path(seq, meta, cases), None)?
                        };
                        tally.latencies_us.push(t0.elapsed().as_micros() as u64);
                        if !(200..300).contains(&status) {
                            tally.non_2xx += 1;
                        }
                        seq += clients;
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut non_2xx = 0usize;
    let mut ingests = 0usize;
    for tally in tallies {
        let tally = tally?;
        latencies.extend(tally.latencies_us);
        non_2xx += tally.non_2xx;
        ingests += tally.ingests;
    }
    latencies.sort_unstable();
    let requests = latencies.len();

    let (status, body) = probe.request("GET", "/healthz", None)?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("/healthz returned {status} after the run"),
        ));
    }
    let after: HealthzMeta = serde_json::from_str(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("/healthz parse: {e}")))?;

    Ok(ServeBench {
        clients,
        requests,
        ingests,
        non_2xx,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-9),
        p50_us: latencies[requests / 2],
        p99_us: latencies[(requests * 99 / 100).min(requests - 1)],
        max_us: latencies[requests - 1],
        events_applied: after.events_applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> HealthzMeta {
        HealthzMeta {
            period_total_minutes: 131_040,
            network_ids: vec![1, 2, 3],
            events_applied: 0,
        }
    }

    #[test]
    fn get_paths_cycle_through_every_endpoint_deterministically() {
        let meta = meta();
        let cases = [(2u32, 1usize)];
        let paths: Vec<String> = (0..5).map(|seq| get_path(seq, &meta, &cases)).collect();
        assert_eq!(paths[0], "/healthz");
        assert_eq!(paths[1], "/rankings/mi");
        assert_eq!(paths[2], "/causal/summary");
        assert_eq!(paths[3], "/predict?network=2&month=1");
        assert!(paths[4].ends_with("/practices"));
        // Same seq → same path, always.
        assert_eq!(get_path(42, &meta, &cases), get_path(42, &meta, &cases));
        // No known cases → the predict slot degrades to a safe endpoint
        // rather than a guaranteed 404.
        assert_eq!(get_path(3, &meta, &[]), "/healthz");
    }

    #[test]
    fn ingest_bodies_mint_unique_ids_and_stay_inside_the_period() {
        let meta = meta();
        let a = ingest_body(7, INGEST_ID_BASE, &meta);
        let b = ingest_body(8, INGEST_ID_BASE, &meta);
        assert_ne!(a, b);
        assert!(a.contains(&format!("\"id\": {}", INGEST_ID_BASE + 7)));
        assert!(a.contains("\"snapshots\": []"));
        // opened must stay within the observation period.
        assert!(a.contains("\"opened\": 259"));
    }

    #[test]
    fn serve_bench_round_trips_through_json() {
        let bench = ServeBench {
            clients: 4,
            requests: 400,
            ingests: 8,
            non_2xx: 0,
            wall_s: 1.5,
            qps: 266.7,
            p50_us: 120,
            p99_us: 900,
            max_us: 1500,
            events_applied: 8,
        };
        let json = serde_json::to_string(&bench).expect("serializes");
        let back: ServeBench = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.requests, 400);
        assert_eq!(back.p99_us, 900);
        assert_eq!(back.events_applied, 8);
    }
}
