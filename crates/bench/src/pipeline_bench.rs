//! End-to-end pipeline wall-clock benchmark.
//!
//! Times the three pipeline phases the execution engine parallelizes —
//! dataset generation, practice inference, MI ranking — at a set of thread
//! counts, and cross-checks that every run produced identical results
//! (the engine's core guarantee). `repro --bench-out FILE` writes the
//! result as `BENCH_pipeline.json`.
//!
//! ## One process per configuration
//!
//! Peak RSS comes from the kernel's `VmHWM`, which is **monotone across a
//! process's life**: running 1-thread then 8-thread back to back in one
//! process makes the second figure inherit the first run's freed-but-
//! retained allocator high-water (the committed artifact once showed an
//! 8-thread "peak" of 1275 MiB against a 680 MiB baseline for this exact
//! reason). The benchmark is therefore split into [`run_pipeline_single`]
//! (one configuration, returns a JSON-serializable [`SingleRun`]) and
//! [`assemble_pipeline_bench`] (combines runs into the artifact), so
//! `repro` can execute each thread count in a **fresh child process** and
//! reassemble in the parent — every `peak_rss_mib` is then a true
//! per-configuration figure. [`run_pipeline_bench`] keeps the in-process
//! path for tests and library callers who only need timings.

use mpa_metrics::pipeline::{infer_with_mode, InferMode};
use mpa_metrics::DELTA_DEFAULT_MINUTES;
use mpa_synth::{GenMode, Scenario};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Below this measured effective parallelism, a multi-thread run's workers
/// were time-sliced rather than concurrent, and its speedup figures
/// describe host occupancy, not the pipeline (see `PipelineBench::
/// occupancy_limited`).
pub const OCCUPANCY_LIMITED_BELOW: f64 = 1.25;

/// One timed run of the pipeline at a fixed thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineRun {
    /// Worker threads used.
    pub threads: usize,
    /// Dataset generation wall-clock seconds.
    pub generate_s: f64,
    /// Generate sub-phase: wall seconds of the per-network parallel
    /// simulation region (includes the workers' render/encode time).
    pub simulate_s: f64,
    /// Generate sub-phase: config text production + line interning,
    /// **summed across workers** — can exceed `simulate_s` at N threads.
    pub render_s: f64,
    /// Generate sub-phase: archive encoding (sort, dedup, delta-encode),
    /// summed across workers.
    pub encode_s: f64,
    /// Generate sub-phase: shard-archive merge wall seconds.
    pub merge_s: f64,
    /// Case-table inference wall-clock seconds.
    pub infer_s: f64,
    /// MI ranking wall-clock seconds.
    pub mi_ranking_s: f64,
    /// Sum of the phases.
    pub total_s: f64,
    /// Process peak RSS (VmHWM) in MiB at the end of this run. Only a true
    /// per-configuration figure when the run had the process to itself —
    /// which is why `repro` executes each thread count in its own child.
    pub peak_rss_mib: f64,
    /// Measured effective parallelism of this run: summed worker CPU time
    /// over region wall time across every region that fanned out (see
    /// `mpa_obs::sched`). Near 1.0 the configured thread count bought
    /// nothing — a one-core or oversubscribed host — which is what
    /// distinguishes "no speedup available" from a scaling regression.
    pub effective_parallelism: f64,
    /// Observability counter deltas attributed to this run (work counted
    /// between the run's start and end; see `mpa_obs::counters`). Counters
    /// are thread-invariant, so these figures should match across the runs
    /// of one bench — a cheap cross-check on top of the output fingerprint.
    pub counters: BTreeMap<String, u64>,
}

/// One run plus the cross-run comparison data, JSON-serializable so the
/// parent `repro` process can collect child runs over a pipe and
/// reassemble the artifact with [`assemble_pipeline_bench`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleRun {
    /// The timed run.
    pub run: PipelineRun,
    /// FNV-1a-64 hex fingerprint of the run's outputs (dataset summary,
    /// case count, MI ranking) — stable across processes, unlike
    /// `DefaultHasher`.
    pub fingerprint: String,
    /// Total configuration text bytes the archive represents.
    pub archive_total_bytes: usize,
    /// Bytes held by the delta-encoded representation.
    pub archive_text_bytes: usize,
}

/// The full benchmark artifact (`BENCH_pipeline.json`).
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBench {
    /// Number of networks in the benchmarked scenario.
    pub networks: usize,
    /// Months in the scenario.
    pub months: usize,
    /// Real parallelism available to the run set: the host's reported core
    /// count, floored by the widest thread count actually exercised (a
    /// containerized host can under-report cores that the runs demonstrably
    /// used). Recorded once per run set.
    pub available_cores: usize,
    /// Total configuration text bytes the archive represents (Table 2's
    /// `config_bytes` figure).
    pub archive_total_bytes: usize,
    /// Bytes held by the delta-encoded representation (line table + ids).
    pub archive_text_bytes: usize,
    /// Which inference engine the runs used (`"delta"` or `"full"`).
    pub infer_mode: String,
    /// Which generation engine the runs used (`"delta"` or `"full"`).
    pub gen_mode: String,
    /// One entry per benchmarked thread count.
    pub runs: Vec<PipelineRun>,
    /// Total-time ratio of the 1-thread baseline to the widest run. This is
    /// the true measured figure, never clamped: a value below 1.0 records a
    /// real slowdown (e.g. an oversubscribed host where extra workers are
    /// time-sliced), which is exactly what a bench artifact exists to catch.
    pub speedup: f64,
    /// Generate-phase ratio of the baseline to the widest run — per-phase
    /// figures localize a scaling regression to the stage that reintroduced
    /// a serial bottleneck. Like `speedup`, may fall below 1.0.
    pub generate_speedup: f64,
    /// Infer-phase ratio of the baseline to the widest run.
    pub infer_speedup: f64,
    /// MI-ranking-phase ratio of the baseline to the widest run.
    pub mi_ranking_speedup: f64,
    /// True when the widest run's measured effective parallelism fell
    /// below [`OCCUPANCY_LIMITED_BELOW`]: its workers were time-sliced,
    /// so every speedup figure in this artifact reflects host occupancy
    /// rather than pipeline scaling. Readers (and `repro`'s stderr
    /// reporting) must carry this caveat with each per-phase figure.
    pub occupancy_limited: bool,
    /// Distinct snapshot states / snapshots visited during inference
    /// (`parse_cache_misses / parse_snapshots_visited` of the baseline
    /// run): the fraction of replayed snapshots the dedup-before-
    /// materialize path actually had to render and parse.
    pub snapshot_dedup_ratio: f64,
    /// Whether every run produced bit-identical output (summary, case
    /// rows and MI ranking compared across thread counts).
    pub deterministic: bool,
}

/// Peak resident set size (VmHWM) of the current process in bytes; 0 where
/// `/proc` is unavailable.
pub fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<usize>().ok())
        .map_or(0, |kib| kib * 1024)
}

/// 64-bit FNV-1a. A stable, dependency-free content hash for comparing
/// run outputs across process boundaries (`DefaultHasher` is seeded per
/// process by design).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run the pipeline once at `threads` workers with the default generation
/// engine; see [`run_pipeline_single_with`].
pub fn run_pipeline_single(scenario: &Scenario, threads: usize, mode: InferMode) -> SingleRun {
    run_pipeline_single_with(scenario, threads, mode, GenMode::default())
}

/// Run the pipeline once at `threads` workers and fingerprint the output.
/// Restores the previously configured thread count before returning.
pub fn run_pipeline_single_with(
    scenario: &Scenario,
    threads: usize,
    mode: InferMode,
    gen_mode: GenMode,
) -> SingleRun {
    let saved = mpa_exec::threads();
    mpa_exec::set_threads(threads);
    let counters_before = mpa_obs::counters::snapshot();
    let sched_before = mpa_obs::sched::snapshot();
    let phases_before = mpa_obs::phases::snapshot();

    // Each phase is also wrapped in an obs span (free when no collector
    // is installed) so a `repro --bench-out ... --obs-out ...` run
    // reports its span tree alongside the timings below.
    let run_label = format!("bench_{threads}_threads");
    let (dataset, inference, mi, generate_s, infer_s, mi_ranking_s) =
        mpa_obs::span(&run_label, || {
            let t0 = Instant::now();
            let dataset =
                mpa_obs::span("generate", || scenario.generate_with_mode(gen_mode));
            let generate_s = t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let inference = mpa_obs::span("infer", || {
                infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, mode)
            });
            let infer_s = t1.elapsed().as_secs_f64();

            let t2 = Instant::now();
            let mi = mpa_obs::span("mi_ranking", || mpa_core::mi_ranking(&inference.table, 20));
            let mi_ranking_s = t2.elapsed().as_secs_f64();
            (dataset, inference, mi, generate_s, infer_s, mi_ranking_s)
        });

    // Fingerprint the outputs; any divergence across thread counts (or
    // across the child processes of a multi-process bench) is a
    // determinism bug, which the artifact should loudly record.
    let mut content = format!("{:?}", dataset.summary());
    content.push_str(&inference.table.n_cases().to_string());
    content.push_str(&format!("{mi:?}"));
    let fingerprint = format!("{:016x}", fnv1a64(content.as_bytes()));

    let counters_after = mpa_obs::counters::snapshot();
    let counters = mpa_obs::counters::snapshot_diff(&counters_before, &counters_after)
        .into_iter()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    // Occupancy attributed to this run: the busy/wall deltas over the
    // regions that ran between the two sched snapshots.
    let sched_after = mpa_obs::sched::snapshot();
    let busy = sched_after.region_busy_ns.saturating_sub(sched_before.region_busy_ns);
    let wall = sched_after.region_wall_ns.saturating_sub(sched_before.region_wall_ns);
    let effective_parallelism = if wall == 0 { 1.0 } else { busy as f64 / wall as f64 };
    let phases =
        mpa_obs::phases::snapshot_diff(&phases_before, &mpa_obs::phases::snapshot());
    let phase_s = |name: &str| -> f64 {
        phases.iter().find(|(n, _)| *n == name).map_or(0.0, |&(_, ns)| ns as f64 / 1e9)
    };

    let single = SingleRun {
        run: PipelineRun {
            threads,
            generate_s,
            simulate_s: phase_s("simulate"),
            render_s: phase_s("render"),
            encode_s: phase_s("encode"),
            merge_s: phase_s("merge"),
            infer_s,
            mi_ranking_s,
            total_s: generate_s + infer_s + mi_ranking_s,
            peak_rss_mib: peak_rss_bytes() as f64 / (1024.0 * 1024.0),
            effective_parallelism,
            counters,
        },
        fingerprint,
        archive_total_bytes: dataset.archive.total_bytes(),
        archive_text_bytes: dataset.archive.text_bytes(),
    };
    mpa_exec::set_threads(saved);
    single
}

/// Combine per-configuration runs (in thread-count submission order; the
/// first is the speedup baseline, the last the widest) into the
/// `BENCH_pipeline.json` artifact.
pub fn assemble_pipeline_bench(
    scenario: &Scenario,
    mode: InferMode,
    singles: &[SingleRun],
) -> PipelineBench {
    assemble_pipeline_bench_with(scenario, mode, GenMode::default(), singles)
}

/// [`assemble_pipeline_bench`] with an explicit generation engine label.
pub fn assemble_pipeline_bench_with(
    scenario: &Scenario,
    mode: InferMode,
    gen_mode: GenMode,
    singles: &[SingleRun],
) -> PipelineBench {
    assert!(!singles.is_empty(), "need at least one run");
    let deterministic = singles.iter().all(|s| s.fingerprint == singles[0].fingerprint);
    let runs: Vec<PipelineRun> = singles.iter().map(|s| s.run.clone()).collect();

    // True measured ratio: baseline (1-thread) time over the *widest* run's
    // time, never clamped. A value below 1.0 is a real slowdown and must be
    // recorded as such — the old best-run formula reported 1.0 whenever the
    // widest run was slower than the baseline, hiding exactly the
    // regression a bench artifact exists to catch.
    let phase_speedup = |phase: fn(&PipelineRun) -> f64| -> f64 {
        let base = phase(&runs[0]);
        let widest = phase(runs.last().expect("at least one run"));
        if widest > 0.0 { base / widest } else { 1.0 }
    };
    let dedup_ratio = {
        let c = &runs[0].counters;
        let visited = c.get("parse_snapshots_visited").copied().unwrap_or(0);
        let distinct = c.get("parse_cache_misses").copied().unwrap_or(0);
        if visited > 0 { distinct as f64 / visited as f64 } else { 1.0 }
    };
    let widest = runs.last().expect("at least one run");
    let occupancy_limited =
        widest.threads > 1 && widest.effective_parallelism < OCCUPANCY_LIMITED_BELOW;
    // mpa-lint: allow(R4) -- host core count is bench-artifact metadata (available_cores); it never reaches pipeline output
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = runs.iter().map(|r| r.threads).max().unwrap_or(1);
    PipelineBench {
        networks: scenario.org.n_networks,
        months: scenario.org.n_months,
        available_cores: host_cores.max(max_threads),
        archive_total_bytes: singles.last().expect("non-empty").archive_total_bytes,
        archive_text_bytes: singles.last().expect("non-empty").archive_text_bytes,
        infer_mode: mode.label().to_string(),
        gen_mode: gen_mode.label().to_string(),
        speedup: phase_speedup(|r| r.total_s),
        generate_speedup: phase_speedup(|r| r.generate_s),
        infer_speedup: phase_speedup(|r| r.infer_s),
        mi_ranking_speedup: phase_speedup(|r| r.mi_ranking_s),
        occupancy_limited,
        snapshot_dedup_ratio: dedup_ratio,
        runs,
        deterministic,
    }
}

/// Run the pipeline at each thread count with the default (delta-native)
/// inference engine and compare outputs.
///
/// The first entry of `thread_counts` is the baseline for the speedup
/// figure; pass `[1, n]` for the canonical sequential-vs-parallel number.
pub fn run_pipeline_bench(scenario: &Scenario, thread_counts: &[usize]) -> PipelineBench {
    run_pipeline_bench_with_mode(scenario, thread_counts, InferMode::default())
}

/// Run the pipeline at each thread count with an explicit inference
/// engine; see [`run_pipeline_bench`].
///
/// All runs share this process, so later entries' `peak_rss_mib` inherit
/// earlier runs' allocator high-water (`VmHWM` is monotone). For honest
/// per-configuration RSS use `repro --bench-out`, which runs each count
/// in a fresh child via [`run_pipeline_single`].
pub fn run_pipeline_bench_with_mode(
    scenario: &Scenario,
    thread_counts: &[usize],
    mode: InferMode,
) -> PipelineBench {
    assert!(!thread_counts.is_empty(), "need at least one thread count");
    let singles: Vec<SingleRun> = thread_counts
        .iter()
        .map(|&threads| run_pipeline_single(scenario, threads, mode))
        .collect();
    assemble_pipeline_bench(scenario, mode, &singles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_is_deterministic_across_thread_counts() {
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1, 2]);
        assert_eq!(bench.runs.len(), 2);
        assert!(bench.deterministic, "thread count changed pipeline output");
        assert!(bench.runs.iter().all(|r| r.total_s > 0.0));
        let json = serde_json::to_string(&bench).expect("serializes");
        assert!(json.contains("\"deterministic\""));
    }

    #[test]
    fn available_cores_covers_the_widest_run() {
        // Regression for the artifact recording `available_cores: 1` next
        // to an 8-thread run: the recorded parallelism must be at least the
        // widest thread count that was actually exercised.
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1, 8]);
        assert!(
            bench.available_cores >= 8,
            "available_cores {} < widest exercised thread count 8",
            bench.available_cores
        );
        assert_eq!(bench.runs.iter().map(|r| r.threads).max(), Some(8));
    }

    #[test]
    fn per_phase_speedups_and_dedup_ratio_are_recorded() {
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1, 2]);
        for (name, v) in [
            ("generate", bench.generate_speedup),
            ("infer", bench.infer_speedup),
            ("mi_ranking", bench.mi_ranking_speedup),
            ("total", bench.speedup),
        ] {
            // The ratio is unclamped: on a busy or one-core host the widest
            // run can be slower than the baseline, so only positivity and
            // finiteness are invariant.
            assert!(v.is_finite() && v > 0.0, "{name} speedup must be a positive finite ratio: {v}");
        }
        assert!(
            bench.snapshot_dedup_ratio > 0.0 && bench.snapshot_dedup_ratio <= 1.0,
            "dedup ratio out of range: {}",
            bench.snapshot_dedup_ratio
        );
        let json = serde_json::to_string(&bench).expect("serializes");
        for key in ["generate_speedup", "infer_speedup", "mi_ranking_speedup", "snapshot_dedup_ratio"] {
            assert!(json.contains(key), "{key} missing from artifact");
        }
    }

    #[test]
    fn archive_byte_stats_are_recorded_and_compressed() {
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1]);
        assert!(bench.archive_total_bytes > 0);
        assert!(bench.archive_text_bytes > 0);
        assert!(
            bench.archive_text_bytes < bench.archive_total_bytes,
            "delta encoding must hold fewer bytes than the full text: {} vs {}",
            bench.archive_text_bytes,
            bench.archive_total_bytes
        );
    }

    #[test]
    fn infer_mode_and_effective_parallelism_are_recorded() {
        let bench = run_pipeline_bench_with_mode(&Scenario::tiny(), &[1], InferMode::Full);
        assert_eq!(bench.infer_mode, "full");
        assert!(bench.runs[0].effective_parallelism > 0.0);
        let json = serde_json::to_string(&bench).expect("serializes");
        assert!(json.contains("infer_mode"), "infer_mode missing from artifact");
        assert!(
            json.contains("effective_parallelism"),
            "effective_parallelism missing from artifact"
        );
        assert_eq!(run_pipeline_bench(&Scenario::tiny(), &[1]).infer_mode, "delta");
    }

    #[test]
    fn gen_mode_and_generate_sub_phases_are_recorded() {
        let scenario = Scenario::tiny();
        let single =
            run_pipeline_single_with(&scenario, 1, InferMode::default(), GenMode::Delta);
        let r = &single.run;
        // Delta generation renders and encodes real work; merge/simulate are
        // wall regions that always tick.
        assert!(r.simulate_s > 0.0, "simulate phase must accumulate");
        assert!(r.render_s > 0.0, "render phase must accumulate");
        assert!(r.encode_s > 0.0, "encode phase must accumulate");
        assert!(r.merge_s >= 0.0 && r.merge_s.is_finite());
        // Render + encode happen inside the simulate wall region, so at one
        // thread they cannot exceed it (modulo timer noise).
        assert!(
            r.render_s + r.encode_s <= r.simulate_s * 1.05 + 0.01,
            "worker-summed sub-phases exceed the 1-thread simulate wall: {} + {} vs {}",
            r.render_s,
            r.encode_s,
            r.simulate_s
        );
        let bench = assemble_pipeline_bench_with(
            &scenario,
            InferMode::default(),
            GenMode::Full,
            &[single],
        );
        assert_eq!(bench.gen_mode, "full");
        let json = serde_json::to_string(&bench).expect("serializes");
        for key in ["gen_mode", "simulate_s", "render_s", "encode_s", "merge_s"] {
            assert!(json.contains(key), "{key} missing from artifact");
        }
        assert_eq!(run_pipeline_bench(&Scenario::tiny(), &[1]).gen_mode, "delta");
    }

    #[test]
    fn single_runs_round_trip_through_json_and_reassemble() {
        // The multi-process bench path: children serialize SingleRun to
        // stdout, the parent deserializes and assembles. The round trip
        // and the assembly must preserve the runs and the determinism
        // verdict.
        let scenario = Scenario::tiny();
        let singles: Vec<SingleRun> = [1usize, 2]
            .iter()
            .map(|&t| {
                let s = run_pipeline_single(&scenario, t, InferMode::default());
                let json = serde_json::to_string(&s).expect("single serializes");
                serde_json::from_str(&json).expect("single round-trips")
            })
            .collect();
        assert_eq!(singles[0].fingerprint.len(), 16, "fnv1a64 hex");
        assert_eq!(
            singles[0].fingerprint, singles[1].fingerprint,
            "same scenario, same output, same fingerprint"
        );
        let bench = assemble_pipeline_bench(&scenario, InferMode::default(), &singles);
        assert!(bench.deterministic);
        assert_eq!(bench.runs.len(), 2);
        assert_eq!(bench.runs[1].threads, 2);
        let json = serde_json::to_string(&bench).expect("serializes");
        assert!(json.contains("\"occupancy_limited\""), "caveat flag missing from artifact");
    }

    #[test]
    fn occupancy_limited_reflects_the_widest_runs_measured_parallelism() {
        let scenario = Scenario::tiny();
        let mut singles =
            vec![run_pipeline_single(&scenario, 1, InferMode::default())];
        singles.push(run_pipeline_single(&scenario, 2, InferMode::default()));
        // Force both verdicts rather than depending on the host.
        singles[1].run.effective_parallelism = 1.0;
        let limited = assemble_pipeline_bench(&scenario, InferMode::default(), &singles);
        assert!(limited.occupancy_limited, "parallelism 1.0 at 2 threads is occupancy-limited");
        singles[1].run.effective_parallelism = 1.9;
        let scaling = assemble_pipeline_bench(&scenario, InferMode::default(), &singles);
        assert!(!scaling.occupancy_limited, "parallelism 1.9 at 2 threads is real concurrency");
        // A single-threaded-only bench is never "limited": there was no
        // concurrency claim to caveat.
        let solo = assemble_pipeline_bench(&scenario, InferMode::default(), &singles[..1]);
        assert!(!solo.occupancy_limited);
    }

    #[test]
    fn fnv1a64_is_stable() {
        // Known FNV-1a test vectors: the hash must never change across
        // builds or hosts, or cross-process determinism checks break.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn peak_rss_is_observable_on_linux() {
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
    }
}
