//! End-to-end pipeline wall-clock benchmark.
//!
//! Times the three pipeline phases the execution engine parallelizes —
//! dataset generation, practice inference, MI ranking — at a set of thread
//! counts, and cross-checks that every run produced identical results
//! (the engine's core guarantee). `repro --bench-out FILE` writes the
//! result as `BENCH_pipeline.json`.

use mpa_metrics::pipeline::{infer_with_mode, InferMode};
use mpa_metrics::DELTA_DEFAULT_MINUTES;
use mpa_synth::Scenario;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// One timed run of the pipeline at a fixed thread count.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineRun {
    /// Worker threads used.
    pub threads: usize,
    /// Dataset generation wall-clock seconds.
    pub generate_s: f64,
    /// Case-table inference wall-clock seconds.
    pub infer_s: f64,
    /// MI ranking wall-clock seconds.
    pub mi_ranking_s: f64,
    /// Sum of the phases.
    pub total_s: f64,
    /// Process peak RSS (VmHWM) in MiB at the end of this run. The kernel's
    /// high-water mark is monotone across a process's life, so the first
    /// run's figure is the meaningful per-configuration peak.
    pub peak_rss_mib: f64,
    /// Measured effective parallelism of this run: summed worker CPU time
    /// over region wall time across every region that fanned out (see
    /// `mpa_obs::sched`). Near 1.0 the configured thread count bought
    /// nothing — a one-core or oversubscribed host — which is what
    /// distinguishes "no speedup available" from a scaling regression.
    pub effective_parallelism: f64,
    /// Observability counter deltas attributed to this run (work counted
    /// between the run's start and end; see `mpa_obs::counters`). Counters
    /// are thread-invariant, so these figures should match across the runs
    /// of one bench — a cheap cross-check on top of the output fingerprint.
    pub counters: BTreeMap<String, u64>,
}

/// The full benchmark artifact (`BENCH_pipeline.json`).
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBench {
    /// Number of networks in the benchmarked scenario.
    pub networks: usize,
    /// Months in the scenario.
    pub months: usize,
    /// Real parallelism available to the run set: the host's reported core
    /// count, floored by the widest thread count actually exercised (a
    /// containerized host can under-report cores that the runs demonstrably
    /// used). Recorded once per run set.
    pub available_cores: usize,
    /// Total configuration text bytes the archive represents (Table 2's
    /// `config_bytes` figure).
    pub archive_total_bytes: usize,
    /// Bytes held by the delta-encoded representation (line table + ids).
    pub archive_text_bytes: usize,
    /// Which inference engine the runs used (`"delta"` or `"full"`).
    pub infer_mode: String,
    /// One entry per benchmarked thread count.
    pub runs: Vec<PipelineRun>,
    /// Total-time ratio of the 1-thread baseline to the widest run. This is
    /// the true measured figure, never clamped: a value below 1.0 records a
    /// real slowdown (e.g. an oversubscribed host where extra workers are
    /// time-sliced), which is exactly what a bench artifact exists to catch.
    pub speedup: f64,
    /// Generate-phase ratio of the baseline to the widest run — per-phase
    /// figures localize a scaling regression to the stage that reintroduced
    /// a serial bottleneck. Like `speedup`, may fall below 1.0.
    pub generate_speedup: f64,
    /// Infer-phase ratio of the baseline to the widest run.
    pub infer_speedup: f64,
    /// MI-ranking-phase ratio of the baseline to the widest run.
    pub mi_ranking_speedup: f64,
    /// Distinct snapshot states / snapshots visited during inference
    /// (`parse_cache_misses / parse_snapshots_visited` of the baseline
    /// run): the fraction of replayed snapshots the dedup-before-
    /// materialize path actually had to render and parse.
    pub snapshot_dedup_ratio: f64,
    /// Whether every run produced bit-identical output (summary, case
    /// rows and MI ranking compared across thread counts).
    pub deterministic: bool,
}

/// Peak resident set size (VmHWM) of the current process in bytes; 0 where
/// `/proc` is unavailable.
pub fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<usize>().ok())
        .map_or(0, |kib| kib * 1024)
}

/// Run the pipeline at each thread count with the default (delta-native)
/// inference engine and compare outputs.
///
/// The first entry of `thread_counts` is the baseline for the speedup
/// figure; pass `[1, n]` for the canonical sequential-vs-parallel number.
pub fn run_pipeline_bench(scenario: &Scenario, thread_counts: &[usize]) -> PipelineBench {
    run_pipeline_bench_with_mode(scenario, thread_counts, InferMode::default())
}

/// Run the pipeline at each thread count with an explicit inference
/// engine; see [`run_pipeline_bench`].
pub fn run_pipeline_bench_with_mode(
    scenario: &Scenario,
    thread_counts: &[usize],
    mode: InferMode,
) -> PipelineBench {
    assert!(!thread_counts.is_empty(), "need at least one thread count");
    let saved = mpa_exec::threads();
    let mut runs = Vec::with_capacity(thread_counts.len());
    let mut reference: Option<(String, usize, String)> = None;
    let mut deterministic = true;
    let mut archive_total_bytes = 0;
    let mut archive_text_bytes = 0;

    for &threads in thread_counts {
        mpa_exec::set_threads(threads);
        let counters_before = mpa_obs::counters::snapshot();
        let sched_before = mpa_obs::sched::snapshot();

        // Each phase is also wrapped in an obs span (free when no collector
        // is installed) so a `repro --bench-out ... --obs-out ...` run
        // reports its span tree alongside the timings below.
        let run_label = format!("bench_{threads}_threads");
        let (dataset, inference, mi, generate_s, infer_s, mi_ranking_s) =
            mpa_obs::span(&run_label, || {
                let t0 = Instant::now();
                let dataset = mpa_obs::span("generate", || scenario.generate());
                let generate_s = t0.elapsed().as_secs_f64();

                let t1 = Instant::now();
                let inference = mpa_obs::span("infer", || {
                    infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, mode)
                });
                let infer_s = t1.elapsed().as_secs_f64();

                let t2 = Instant::now();
                let mi =
                    mpa_obs::span("mi_ranking", || mpa_core::mi_ranking(&inference.table, 20));
                let mi_ranking_s = t2.elapsed().as_secs_f64();
                (dataset, inference, mi, generate_s, infer_s, mi_ranking_s)
            });

        // Fingerprint the outputs; any divergence across thread counts is
        // a determinism bug, which the artifact should loudly record.
        let fingerprint = (
            format!("{:?}", dataset.summary()),
            inference.table.n_cases(),
            format!("{mi:?}"),
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(r) => deterministic &= *r == fingerprint,
        }
        archive_total_bytes = dataset.archive.total_bytes();
        archive_text_bytes = dataset.archive.text_bytes();

        let counters_after = mpa_obs::counters::snapshot();
        let counters = mpa_obs::counters::snapshot_diff(&counters_before, &counters_after)
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        // Occupancy attributed to this run: the busy/wall deltas over the
        // regions that ran between the two sched snapshots.
        let sched_after = mpa_obs::sched::snapshot();
        let busy = sched_after.region_busy_ns.saturating_sub(sched_before.region_busy_ns);
        let wall = sched_after.region_wall_ns.saturating_sub(sched_before.region_wall_ns);
        let effective_parallelism = if wall == 0 { 1.0 } else { busy as f64 / wall as f64 };

        runs.push(PipelineRun {
            threads,
            generate_s,
            infer_s,
            mi_ranking_s,
            total_s: generate_s + infer_s + mi_ranking_s,
            peak_rss_mib: peak_rss_bytes() as f64 / (1024.0 * 1024.0),
            effective_parallelism,
            counters,
        });
    }
    mpa_exec::set_threads(saved);

    // True measured ratio: baseline (1-thread) time over the *widest* run's
    // time, never clamped. A value below 1.0 is a real slowdown and must be
    // recorded as such — the old best-run formula reported 1.0 whenever the
    // widest run was slower than the baseline, hiding exactly the
    // regression a bench artifact exists to catch.
    let phase_speedup = |phase: fn(&PipelineRun) -> f64| -> f64 {
        let base = phase(&runs[0]);
        let widest = phase(runs.last().expect("at least one run"));
        if widest > 0.0 { base / widest } else { 1.0 }
    };
    let dedup_ratio = {
        let c = &runs[0].counters;
        let visited = c.get("parse_snapshots_visited").copied().unwrap_or(0);
        let distinct = c.get("parse_cache_misses").copied().unwrap_or(0);
        if visited > 0 { distinct as f64 / visited as f64 } else { 1.0 }
    };
    // mpa-lint: allow(R4) -- host core count is bench-artifact metadata (available_cores); it never reaches pipeline output
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    PipelineBench {
        networks: scenario.org.n_networks,
        months: scenario.org.n_months,
        available_cores: host_cores.max(max_threads),
        archive_total_bytes,
        archive_text_bytes,
        infer_mode: mode.label().to_string(),
        speedup: phase_speedup(|r| r.total_s),
        generate_speedup: phase_speedup(|r| r.generate_s),
        infer_speedup: phase_speedup(|r| r.infer_s),
        mi_ranking_speedup: phase_speedup(|r| r.mi_ranking_s),
        snapshot_dedup_ratio: dedup_ratio,
        runs,
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_is_deterministic_across_thread_counts() {
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1, 2]);
        assert_eq!(bench.runs.len(), 2);
        assert!(bench.deterministic, "thread count changed pipeline output");
        assert!(bench.runs.iter().all(|r| r.total_s > 0.0));
        let json = serde_json::to_string(&bench).expect("serializes");
        assert!(json.contains("\"deterministic\""));
    }

    #[test]
    fn available_cores_covers_the_widest_run() {
        // Regression for the artifact recording `available_cores: 1` next
        // to an 8-thread run: the recorded parallelism must be at least the
        // widest thread count that was actually exercised.
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1, 8]);
        assert!(
            bench.available_cores >= 8,
            "available_cores {} < widest exercised thread count 8",
            bench.available_cores
        );
        assert_eq!(bench.runs.iter().map(|r| r.threads).max(), Some(8));
    }

    #[test]
    fn per_phase_speedups_and_dedup_ratio_are_recorded() {
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1, 2]);
        for (name, v) in [
            ("generate", bench.generate_speedup),
            ("infer", bench.infer_speedup),
            ("mi_ranking", bench.mi_ranking_speedup),
            ("total", bench.speedup),
        ] {
            // The ratio is unclamped: on a busy or one-core host the widest
            // run can be slower than the baseline, so only positivity and
            // finiteness are invariant.
            assert!(v.is_finite() && v > 0.0, "{name} speedup must be a positive finite ratio: {v}");
        }
        assert!(
            bench.snapshot_dedup_ratio > 0.0 && bench.snapshot_dedup_ratio <= 1.0,
            "dedup ratio out of range: {}",
            bench.snapshot_dedup_ratio
        );
        let json = serde_json::to_string(&bench).expect("serializes");
        for key in ["generate_speedup", "infer_speedup", "mi_ranking_speedup", "snapshot_dedup_ratio"] {
            assert!(json.contains(key), "{key} missing from artifact");
        }
    }

    #[test]
    fn archive_byte_stats_are_recorded_and_compressed() {
        let bench = run_pipeline_bench(&Scenario::tiny(), &[1]);
        assert!(bench.archive_total_bytes > 0);
        assert!(bench.archive_text_bytes > 0);
        assert!(
            bench.archive_text_bytes < bench.archive_total_bytes,
            "delta encoding must hold fewer bytes than the full text: {} vs {}",
            bench.archive_text_bytes,
            bench.archive_total_bytes
        );
    }

    #[test]
    fn infer_mode_and_effective_parallelism_are_recorded() {
        let bench = run_pipeline_bench_with_mode(&Scenario::tiny(), &[1], InferMode::Full);
        assert_eq!(bench.infer_mode, "full");
        assert!(bench.runs[0].effective_parallelism > 0.0);
        let json = serde_json::to_string(&bench).expect("serializes");
        assert!(json.contains("infer_mode"), "infer_mode missing from artifact");
        assert!(
            json.contains("effective_parallelism"),
            "effective_parallelism missing from artifact"
        );
        assert_eq!(run_pipeline_bench(&Scenario::tiny(), &[1]).infer_mode, "delta");
    }

    #[test]
    fn peak_rss_is_observable_on_linux() {
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
    }
}
