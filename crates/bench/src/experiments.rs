//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each function takes a [`Fixture`] and returns a printable artifact. The
//! `repro` binary prints them; the criterion benches time them. DESIGN.md §5
//! is the index mapping each experiment id to the paper's table/figure.

use crate::fixtures::Fixture;
use mpa_core::predict::{
    class_distribution, cross_validation, online_accuracy, render_tree, HealthClasses, ModelKind,
};
use mpa_core::{CausalConfig, TextTable};
use mpa_learn::ForestVariant;
use mpa_metrics::{group_events, Metric};
use mpa_stats::{pearson, BoxStats, Ecdf};
use mpa_synth::survey::{self};

/// The practices with a *true* causal effect in the generator's health
/// model (DESIGN.md §3) — the ground-truth column of Table 7.
pub const TRUE_CAUSAL: [Metric; 8] = [
    Metric::Devices,
    Metric::ChangeEvents,
    Metric::ChangeTypes,
    Metric::Vlans,
    Metric::Models,
    Metric::Roles,
    Metric::AvgDevicesPerEvent,
    Metric::FracAclEvents,
];

fn truth_label(m: Metric) -> &'static str {
    if TRUE_CAUSAL.contains(&m) {
        "causal"
    } else if matches!(
        m,
        Metric::DevicesChanged
            | Metric::ConfigChanges
            | Metric::FracDevicesChanged
            | Metric::IntraComplexity
            | Metric::FracIfaceEvents
            | Metric::FirmwareVersions
            | Metric::Vendors
            | Metric::HardwareEntropy
            | Metric::FirmwareEntropy
            | Metric::InterComplexity
            | Metric::BgpInstances
            | Metric::AvgBgpInstanceSize
    ) {
        "proxy only"
    } else {
        "no effect"
    }
}

fn box_row(label: &str, b: &BoxStats) -> Vec<String> {
    vec![
        label.to_string(),
        b.n.to_string(),
        TextTable::num(b.whisker_lo),
        TextTable::num(b.q1),
        TextTable::num(b.median),
        TextTable::num(b.q3),
        TextTable::num(b.whisker_hi),
        TextTable::num(b.mean),
    ]
}

fn percentile_row(label: &str, xs: &[f64]) -> Vec<String> {
    if xs.is_empty() {
        return vec![label.to_string(), "0".into(), "-".into(), "-".into(), "-".into(), "-".into(), "-".into()];
    }
    let q = |p| TextTable::num(mpa_stats::percentile(xs, p));
    vec![label.to_string(), xs.len().to_string(), q(10.0), q(25.0), q(50.0), q(75.0), q(90.0)]
}

/// Tickets-vs-practice box stats, one row per occupied bin of the metric.
fn tickets_by_bins(fx: &Fixture, metric: Metric, n_bins: usize, out: &mut String) {
    let table = fx.table();
    let col = table.column(metric);
    let tickets = table.tickets();
    let binner = mpa_stats::Binner::fit(&col, n_bins);
    let mut t = TextTable::new(vec!["bin range", "n", "lo", "q1", "median", "q3", "hi", "mean"]);
    for b in 0..n_bins {
        let vals: Vec<f64> = col
            .iter()
            .zip(&tickets)
            .filter(|(&v, _)| binner.bin(v) == b)
            .map(|(_, &tk)| tk)
            .collect();
        if let Some(stats) = BoxStats::compute(&vals) {
            let (lo, hi) = binner.bin_range(b);
            t.row(box_row(&format!("[{lo:.1}, {hi:.1})"), &stats));
        }
    }
    out.push_str(&format!("tickets vs {}:\n{t}\n", metric.name()));
}

// ---------------------------------------------------------------------------
// Section 3: today's practices
// ---------------------------------------------------------------------------

/// Figure 2: the operator survey.
pub fn fig2(fx: &Fixture) -> String {
    let responses = survey::generate_survey(fx.dataset.ground_truth.len() as u64 ^ 42);
    let mut t = TextTable::new(vec!["practice", "no", "low", "medium", "high", "not sure", "majority"]);
    for (p, counts) in survey::tally(&responses) {
        let maj = survey::majority_opinion(&responses, p);
        t.row(vec![
            p.label().to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            counts[4].to_string(),
            maj.label().to_string(),
        ]);
    }
    format!("Figure 2 — operator survey ({} respondents):\n{t}", responses.len())
}

/// Figure 3: change events per network-month vs grouping window δ.
pub fn fig3(fx: &Fixture) -> String {
    let period = &fx.dataset.period;
    let mut t =
        TextTable::new(vec!["delta (min)", "n", "lo", "q1", "median", "q3", "hi", "mean"]);
    for delta in [0u64, 1, 2, 5, 10, 15, 30] {
        let mut counts: Vec<f64> = Vec::new();
        for (net, changes) in &fx.inference.device_changes {
            for month in 0..period.n_months() {
                if !fx.dataset.is_logged(*net, month) {
                    continue;
                }
                let (start, end) = (period.month_start(month), period.month_end(month));
                let month_changes: Vec<_> = changes
                    .iter()
                    .filter(|c| c.time >= start && c.time < end)
                    .cloned()
                    .collect();
                counts.push(group_events(&month_changes, delta).len() as f64);
            }
        }
        if let Some(stats) = BoxStats::compute(&counts) {
            let label = if delta == 0 { "NA".to_string() } else { delta.to_string() };
            t.row(box_row(&label, &stats));
        }
    }
    format!("Figure 3 — events per network-month vs δ (paper settles on δ=5):\n{t}")
}

/// Table 2: dataset size summary.
pub fn table2(fx: &Fixture) -> String {
    let s = fx.dataset.summary();
    let mut t = TextTable::new(vec!["property", "value"]);
    t.row(vec!["Months".to_string(), format!("{} ({} - {})", s.months, s.span.0, s.span.1)]);
    t.row(vec!["Networks".to_string(), s.networks.to_string()]);
    t.row(vec!["Services".to_string(), s.services.to_string()]);
    t.row(vec!["Devices".to_string(), s.devices.to_string()]);
    t.row(vec![
        "Config snapshots".to_string(),
        format!("{} ({:.1} MB)", s.config_snapshots, s.config_bytes as f64 / 1e6),
    ]);
    t.row(vec!["Tickets".to_string(), s.tickets.to_string()]);
    t.row(vec!["Logged network-months".to_string(), s.logged_network_months.to_string()]);
    format!("Table 2 — dataset summary:\n{t}")
}

// ---------------------------------------------------------------------------
// Section 5.1: dependence
// ---------------------------------------------------------------------------

/// Figure 4: tickets vs four practices with different relationship shapes.
pub fn fig4(fx: &Fixture) -> String {
    let mut out = String::from("Figure 4 — tickets vs selected practices:\n");
    for m in [Metric::L2Protocols, Metric::Models, Metric::FracIfaceEvents, Metric::Roles] {
        tickets_by_bins(fx, m, 6, &mut out);
    }
    out
}

/// Figure 5: relationship between number of models and number of roles.
pub fn fig5(fx: &Fixture) -> String {
    let table = fx.table();
    let roles = table.column(Metric::Roles);
    let models = table.column(Metric::Models);
    let mut t = TextTable::new(vec!["roles", "n", "lo", "q1", "median", "q3", "hi", "mean"]);
    let mut distinct: Vec<i64> = roles.iter().map(|&r| r as i64).collect();
    distinct.sort_unstable();
    distinct.dedup();
    for r in distinct {
        let vals: Vec<f64> = roles
            .iter()
            .zip(&models)
            .filter(|(&rr, _)| rr as i64 == r)
            .map(|(_, &m)| m)
            .collect();
        if let Some(stats) = BoxStats::compute(&vals) {
            t.row(box_row(&r.to_string(), &stats));
        }
    }
    let r = pearson(&roles, &models);
    format!("Figure 5 — models vs roles (Pearson {:.2}):\n{t}", r)
}

/// Figure 6: tickets vs the top two practices.
pub fn fig6(fx: &Fixture) -> String {
    let mut out = String::from("Figure 6 — tickets vs top practices:\n");
    for m in [Metric::Devices, Metric::ChangeEvents] {
        tickets_by_bins(fx, m, 6, &mut out);
    }
    out
}

/// Table 3: top-10 practices by average monthly MI with health.
pub fn table3(fx: &Fixture) -> String {
    let mut t = TextTable::new(vec!["rank", "practice", "category", "avg monthly MI"]);
    for (i, e) in fx.mi().iter().take(10).enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            e.metric.name().to_string(),
            e.metric.category().tag().to_string(),
            format!("{:.3}", e.mi),
        ]);
    }
    format!("Table 3 — top 10 practices by MI with network health:\n{t}")
}

/// Table 4: top-10 practice pairs by CMI given health.
pub fn table4(fx: &Fixture) -> String {
    let cmi = mpa_core::cmi_ranking(fx.table());
    let top10: Vec<Metric> = fx.mi().iter().take(10).map(|e| e.metric).collect();
    let mut t = TextTable::new(vec!["pair", "", "CMI"]);
    for e in cmi.iter().take(10) {
        let star = |m: Metric| {
            if top10.contains(&m) {
                format!("{} *", m.name())
            } else {
                m.name().to_string()
            }
        };
        t.row(vec![star(e.a), star(e.b), format!("{:.3}", e.cmi)]);
    }
    format!("Table 4 — top 10 statistically dependent practice pairs (CMI);\n* = also in the MI top 10:\n{t}")
}

// ---------------------------------------------------------------------------
// Section 5.2: causal analysis
// ---------------------------------------------------------------------------

fn change_events_analysis(fx: &Fixture) -> mpa_core::CausalAnalysis {
    fx.causal_for(Metric::ChangeEvents).cloned().unwrap_or_else(|| {
        mpa_core::analyze_treatment(fx.table(), Metric::ChangeEvents, &CausalConfig::default())
    })
}

/// Table 5: propensity matching results (treatment = number of change events).
pub fn table5(fx: &Fixture) -> String {
    let analysis = change_events_analysis(fx);
    let mut t = TextTable::new(vec![
        "comp. point",
        "untreated",
        "treated",
        "pairs",
        "untreated matched",
        "|std diff| (score)",
        "var ratio (score)",
    ]);
    for c in &analysis.comparisons {
        let (sd, vr) = c
            .score_balance
            .map(|b| (format!("{:.4}", b.std_diff.abs()), format!("{:.4}", b.var_ratio)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        t.row(vec![
            format!("{}:{}", c.point.0, c.point.1),
            c.n_untreated.to_string(),
            c.n_treated.to_string(),
            c.n_pairs.to_string(),
            c.n_untreated_matched.to_string(),
            sd,
            vr,
        ]);
    }
    format!("Table 5 — matching based on propensity scores (no. of change events):\n{t}")
}

/// Figure 7: confounder distribution equivalence after matching.
pub fn fig7(fx: &Fixture) -> String {
    let analysis = change_events_analysis(fx);
    let table = fx.table();
    let mut out = String::from(
        "Figure 7 — confounder ECDF equivalence after matching (no. of change events):\n",
    );
    for conf in [Metric::Devices, Metric::Vlans] {
        let col = table.column(conf);
        let mut t = TextTable::new(vec!["comp. point", "arm", "n", "p10", "p25", "p50", "p75", "p90"]);
        let mut ks_notes = Vec::new();
        for c in &analysis.comparisons {
            if c.n_pairs == 0 {
                continue;
            }
            let tv: Vec<f64> = c.matched_treated_ix.iter().map(|&i| col[i]).collect();
            let uv: Vec<f64> = c.matched_untreated_ix.iter().map(|&i| col[i]).collect();
            let label = format!("{}:{}", c.point.0, c.point.1);
            let mut row = percentile_row("treated", &tv);
            row.insert(0, label.clone());
            row.truncate(8);
            t.row(row);
            let mut row = percentile_row("untreated", &uv);
            row.insert(0, label.clone());
            row.truncate(8);
            t.row(row);
            let ks = Ecdf::new(tv).ks_distance(&Ecdf::new(uv));
            ks_notes.push(format!("{label}: KS={ks:.3}"));
        }
        out.push_str(&format!("{} (matched arms):\n{t}  {}\n", conf.name(), ks_notes.join("  ")));
    }
    out
}

/// Table 6: sign-test outcomes per comparison point (no. of change events).
pub fn table6(fx: &Fixture) -> String {
    let analysis = change_events_analysis(fx);
    let cfg = CausalConfig::default();
    let mut t = TextTable::new(vec![
        "comp. point",
        "fewer tickets",
        "no effect",
        "more tickets",
        "p-value",
        "verdict",
    ]);
    for c in &analysis.comparisons {
        match &c.sign {
            Some(s) => {
                t.row(vec![
                    format!("{}:{}", c.point.0, c.point.1),
                    s.n_negative.to_string(),
                    s.n_zero.to_string(),
                    s.n_positive.to_string(),
                    TextTable::num(s.p_value),
                    if c.causal(&cfg) { "causal".into() } else { "-".to_string() },
                ]);
            }
            None => {
                t.row(vec![
                    format!("{}:{}", c.point.0, c.point.1),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "no matches".into(),
                ]);
            }
        }
    }
    format!("Table 6 — statistical significance of outcomes (no. of change events):\n{t}")
}

/// Table 7: causal analysis at the 1:2 comparison for the top-10 practices,
/// with the generator's ground truth alongside.
pub fn table7(fx: &Fixture) -> String {
    let cfg = CausalConfig::default();
    let mut t = TextTable::new(vec![
        "treatment practice",
        "pairs",
        "p (1:2)",
        "balance",
        "verdict",
        "ground truth",
    ]);
    for analysis in fx.causal_top10() {
        let Some(c) = analysis.low_bin_comparison() else { continue };
        let balance = if c.n_pairs == 0 {
            "-".to_string()
        } else if c.balanced(&cfg) {
            "ok".to_string()
        } else {
            format!("imbal ({})", c.n_imbalanced_covariates)
        };
        t.row(vec![
            analysis.metric.name().to_string(),
            c.n_pairs.to_string(),
            c.p_value().map_or("-".into(), TextTable::num),
            balance,
            if c.causal(&cfg) { "CAUSAL".into() } else { "-".to_string() },
            truth_label(analysis.metric).to_string(),
        ]);
    }
    format!(
        "Table 7 — causal analysis (1:2) for the top-10 MI practices\n(α = {}; ground truth per DESIGN.md §3):\n{t}",
        cfg.alpha
    )
}

/// Table 8: upper-bin comparisons for the top-10 practices.
pub fn table8(fx: &Fixture) -> String {
    let cfg = CausalConfig::default();
    let mut t = TextTable::new(vec!["treatment practice", "2:3", "3:4", "4:5"]);
    for analysis in fx.causal_top10() {
        let cell = |point: (usize, usize)| -> String {
            let Some(c) = analysis.comparisons.iter().find(|c| c.point == point) else {
                return "-".into();
            };
            if c.n_pairs == 0 {
                "thin".into()
            } else if !c.balanced(&cfg) {
                "Imbal.".into()
            } else {
                c.p_value().map_or("-".into(), TextTable::num)
            }
        };
        t.row(vec![
            analysis.metric.name().to_string(),
            cell((2, 3)),
            cell((3, 4)),
            cell((4, 5)),
        ]);
    }
    format!("Table 8 — causal analysis of the upper bins:\n{t}")
}

// ---------------------------------------------------------------------------
// Section 6: prediction
// ---------------------------------------------------------------------------

/// Figure 8 (plus the §6.1 scalars): per-class precision/recall of the
/// 5-class model ladder, and 2-class accuracy against the baselines.
pub fn fig8(fx: &Fixture) -> String {
    let table = fx.table();
    let mut out = String::from("Figure 8 — 5-class precision/recall (5-fold CV):\n");
    let names = HealthClasses::Five.names();
    let mut t = TextTable::new(vec![
        "model", "metric", names[0], names[1], names[2], names[3], names[4], "accuracy",
    ]);
    for kind in ModelKind::LADDER {
        let ev = cross_validation(table, HealthClasses::Five, kind, 7);
        for (metric, f) in [
            ("precision", true),
            ("recall", false),
        ] {
            let cells: Vec<String> = (0..5u8)
                .map(|c| {
                    let v = if f { ev.precision(c) } else { ev.recall(c) };
                    format!("{v:.2}")
                })
                .collect();
            t.row(vec![
                kind.label().to_string(),
                metric.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
                cells[4].clone(),
                format!("{:.3}", ev.accuracy()),
            ]);
        }
    }
    out.push_str(&t.to_string());

    out.push_str("\n2-class cross-validation (the §6.1 scalars):\n");
    let mut t2 = TextTable::new(vec![
        "model",
        "accuracy",
        "prec(healthy)",
        "rec(healthy)",
        "prec(unhealthy)",
        "rec(unhealthy)",
    ]);
    for kind in [
        ModelKind::Dt,
        ModelKind::DtAb,
        ModelKind::DtOs,
        ModelKind::DtAbOs,
        ModelKind::Majority,
        ModelKind::Svm,
        ModelKind::Forest(ForestVariant::Plain),
        ModelKind::Forest(ForestVariant::Balanced),
        ModelKind::Forest(ForestVariant::Weighted),
    ] {
        let ev = cross_validation(table, HealthClasses::Two, kind, 7);
        t2.row(vec![
            kind.label().to_string(),
            format!("{:.3}", ev.accuracy()),
            format!("{:.2}", ev.precision(0)),
            format!("{:.2}", ev.recall(0)),
            format!("{:.2}", ev.precision(1)),
            format!("{:.2}", ev.recall(1)),
        ]);
    }
    out.push_str(&t2.to_string());
    out
}

/// Figure 9: health class distribution.
pub fn fig9(fx: &Fixture) -> String {
    let table = fx.table();
    let mut out = String::from("Figure 9 — health class distribution:\n");
    for classes in [HealthClasses::Two, HealthClasses::Five] {
        let dist = class_distribution(table, classes);
        let names = classes.names();
        let mut t = TextTable::new(vec!["class", "cases", "share"]);
        for (name, &count) in names.iter().zip(&dist) {
            t.row(vec![
                name.to_string(),
                count.to_string(),
                format!("{:.1}%", 100.0 * count as f64 / table.n_cases() as f64),
            ]);
        }
        out.push_str(&format!("{} classes:\n{t}\n", names.len()));
    }
    out
}

/// Figure 10: the top of the learned decision trees.
pub fn fig10(fx: &Fixture) -> String {
    let table = fx.table();
    let five = render_tree(table, HealthClasses::Five, ModelKind::DtAbOs, 2);
    let two = render_tree(table, HealthClasses::Two, ModelKind::Dt, 2);
    format!("Figure 10 — decision trees (top 2 levels)\n\n(a) 5-class (DT+AB+OS):\n{five}\n(b) 2-class (DT):\n{two}")
}

/// Table 9: online prediction accuracy vs training history.
pub fn table9(fx: &Fixture) -> String {
    let table = fx.table();
    let mut t = TextTable::new(vec!["M (months)", "5 classes", "2 classes"]);
    let max_m = fx.dataset.period.n_months().saturating_sub(1);
    for m in [1usize, 3, 6, 9] {
        if m > max_m {
            continue;
        }
        let (acc5, _) = online_accuracy(table, HealthClasses::Five, ModelKind::DtAbOs, m);
        let (acc2, _) = online_accuracy(table, HealthClasses::Two, ModelKind::Dt, m);
        t.row(vec![m.to_string(), format!("{acc5:.3}"), format!("{acc2:.3}")]);
    }
    format!("Table 9 — online prediction accuracy (train on t−M..t−1, predict t):\n{t}")
}

// ---------------------------------------------------------------------------
// Appendix A characterization
// ---------------------------------------------------------------------------

/// Figure 11: design-practice characterization (per-network CDF percentiles).
pub fn fig11(fx: &Fixture) -> String {
    let sums = fx.table().network_summaries();
    let col = |m: Metric| -> Vec<f64> { sums.iter().map(|s| s.value(m)).collect() };
    let mut out = String::from("Figure 11 — design practices across networks:\n");
    let mut t = TextTable::new(vec!["metric", "n", "p10", "p25", "p50", "p75", "p90"]);
    for m in [
        Metric::HardwareEntropy,
        Metric::FirmwareEntropy,
        Metric::L2Protocols,
        Metric::L3Protocols,
        Metric::Vlans,
        Metric::IntraComplexity,
        Metric::InterComplexity,
        Metric::BgpInstances,
        Metric::OspfInstances,
    ] {
        t.row(percentile_row(m.name(), &col(m)));
    }
    out.push_str(&t.to_string());

    // Headline fractions the paper quotes.
    let hw = Ecdf::new(col(Metric::HardwareEntropy));
    let protos: Vec<f64> = sums
        .iter()
        .map(|s| s.value(Metric::L2Protocols) + s.value(Metric::L3Protocols))
        .collect();
    let vlans = Ecdf::new(col(Metric::Vlans));
    out.push_str(&format!(
        "\nheadlines: hw entropy < 0.3: {:.0}%   hw entropy > 0.67: {:.0}%   protocols >= 8: {:.0}%   vlans < 5: {:.0}%   vlans > 100: {:.0}%\n",
        100.0 * hw.eval(0.3),
        100.0 * hw.frac_above(0.67),
        100.0 * Ecdf::new(protos).frac_above(7.99),
        100.0 * vlans.eval(4.99),
        100.0 * vlans.frac_above(100.0),
    ));
    out
}

/// Figure 12: operational-practice characterization.
pub fn fig12(fx: &Fixture) -> String {
    let sums = fx.table().network_summaries();
    let col = |m: Metric| -> Vec<f64> { sums.iter().map(|s| s.value(m)).collect() };
    let mut out = String::from("Figure 12 — operational practices across networks:\n");

    // (a) changes vs size.
    let sizes = col(Metric::Devices);
    let changes = col(Metric::ConfigChanges);
    out.push_str(&format!(
        "(a) Pearson(changes/month, size) = {:.2} (paper: 0.64)\n",
        pearson(&sizes, &changes)
    ));

    // (b)–(e): percentile tables.
    let mut t = TextTable::new(vec!["metric", "n", "p10", "p25", "p50", "p75", "p90"]);
    for m in [
        Metric::ConfigChanges,
        Metric::FracDevicesChanged,
        Metric::FracAutomated,
        Metric::ChangeEvents,
        Metric::ChangeTypes,
    ] {
        t.row(percentile_row(m.name(), &col(m)));
    }
    out.push_str(&t.to_string());

    // (c) most frequent change types: fraction of changes touching type T.
    let mut t2 = TextTable::new(vec!["change type", "n", "p10", "p25", "p50", "p75", "p90"]);
    use mpa_config::typemap::ChangeType;
    for ct in [
        ChangeType::Interface,
        ChangeType::Pool,
        ChangeType::Acl,
        ChangeType::User,
        ChangeType::Router,
        ChangeType::Vlan,
    ] {
        let fracs: Vec<f64> = fx
            .inference
            .device_changes
            .values()
            .filter(|chs| !chs.is_empty())
            .map(|chs| {
                chs.iter().filter(|c| c.touches(ct)).count() as f64 / chs.len() as f64
            })
            .collect();
        t2.row(percentile_row(ct.label(), &fracs));
    }
    out.push_str(&format!("\n(c) fraction of changes touching each type (per network):\n{t2}"));

    // automation headlines.
    let auto = Ecdf::new(col(Metric::FracAutomated));
    out.push_str(&format!(
        "\nheadlines: networks with >=50% automated changes: {:.0}%   with >=25%: {:.0}%\n",
        100.0 * auto.frac_above(0.5),
        100.0 * auto.frac_above(0.25),
    ));
    out
}

/// Figure 13: change-event characterization.
pub fn fig13(fx: &Fixture) -> String {
    let sums = fx.table().network_summaries();
    let col = |m: Metric| -> Vec<f64> { sums.iter().map(|s| s.value(m)).collect() };
    let mut t = TextTable::new(vec!["metric", "n", "p10", "p25", "p50", "p75", "p90"]);
    t.row(percentile_row("Avg. devices changed per event", &col(Metric::AvgDevicesPerEvent)));
    t.row(percentile_row("Frac. events w/ mbox change", &col(Metric::FracMboxEvents)));
    let small = Ecdf::new(col(Metric::AvgDevicesPerEvent));
    format!(
        "Figure 13 — change events:\n{t}\nheadline: networks with avg event size <= 2 devices: {:.0}% (paper: ~50%)\n",
        100.0 * small.eval(2.0)
    )
}

/// Opinion-vs-evidence comparison (the §1/§9 contradictions). Causal
/// analyses are run for every surveyed practice (not just the MI top 10),
/// so headline rows like the ACL-change fraction always carry a verdict.
pub fn comparison(fx: &Fixture) -> String {
    let responses = survey::generate_survey(42);
    let cfg = CausalConfig::default();
    let causal: Vec<mpa_core::CausalAnalysis> = mpa_synth::survey::SurveyPractice::ALL
        .iter()
        .map(|&p| {
            let metric = mpa_core::compare::survey_metric(p);
            fx.causal_for(metric)
                .cloned()
                .unwrap_or_else(|| mpa_core::analyze_treatment(fx.table(), metric, &cfg))
        })
        .collect();
    let rows = mpa_core::compare_survey(&responses, fx.mi(), &causal, &cfg);
    let mut t = TextTable::new(vec!["practice", "majority opinion", "MI rank", "causal", "verdict"]);
    for r in rows {
        t.row(vec![
            r.practice.label().to_string(),
            r.majority.label().to_string(),
            if r.mi_rank == usize::MAX { "-".into() } else { r.mi_rank.to_string() },
            match r.causal {
                Some(true) => "yes".to_string(),
                Some(false) => "no".to_string(),
                None => "not analyzed".to_string(),
            },
            format!("{:?}", r.agreement),
        ]);
    }
    format!("Opinion vs evidence (paper §5.2.6 / §9):\n{t}")
}

/// Calibration probe: the key distributional facts the synthetic OSP must
/// get right for the reproduction shapes to hold. Used while tuning the
/// generator; kept because it doubles as a dataset health check.
pub fn calibrate(fx: &Fixture) -> String {
    let table = fx.table();
    let mut out = String::new();
    out.push_str(&format!("cases: {}\n", table.n_cases()));

    // Ground-truth rate diagnostics: the share of cases in the "ambiguous"
    // Poisson zone bounds the achievable 2-class accuracy.
    let lambdas: Vec<f64> = fx.dataset.ground_truth.iter().map(|t| t.lambda).collect();
    let q = |p: f64| mpa_stats::percentile(&lambdas, p);
    out.push_str(&format!(
        "lambda quantiles: p10={:.2} p25={:.2} p50={:.2} p75={:.2} p90={:.2} p99={:.2}\n",
        q(10.0),
        q(25.0),
        q(50.0),
        q(75.0),
        q(90.0),
        q(99.0)
    ));
    let ambiguous =
        lambdas.iter().filter(|&&l| (0.5..2.5).contains(&l)).count() as f64 / lambdas.len() as f64;
    out.push_str(&format!("ambiguous-zone (0.5<=lambda<2.5) share: {ambiguous:.2}\n"));

    for (name, classes) in [("2-class", HealthClasses::Two), ("5-class", HealthClasses::Five)] {
        let dist = class_distribution(table, classes);
        let n = table.n_cases() as f64;
        let fracs: Vec<String> =
            dist.iter().map(|&c| format!("{:.1}%", 100.0 * c as f64 / n)).collect();
        out.push_str(&format!("{name}: {dist:?} = {}\n", fracs.join(" / ")));
    }
    for (name, classes) in [("2-class", HealthClasses::Two), ("5-class", HealthClasses::Five)] {
        let dt = cross_validation(table, classes, ModelKind::Dt, 7);
        let maj = cross_validation(table, classes, ModelKind::Majority, 7);
        out.push_str(&format!(
            "{name} CV: DT {:.3} vs majority {:.3}\n",
            dt.accuracy(),
            maj.accuracy()
        ));
    }

    out.push_str("MI ranking (top 12):\n");
    for (i, e) in fx.mi().iter().take(12).enumerate() {
        out.push_str(&format!("  {:2}. {:<34} {:.3}\n", i + 1, e.metric.to_string(), e.mi));
    }
    let rank_of =
        |m: Metric| fx.mi().iter().position(|e| e.metric == m).map(|p| p + 1).unwrap_or(0);
    for m in [Metric::IntraComplexity, Metric::FracIfaceEvents, Metric::FracMboxEvents] {
        out.push_str(&format!("  rank of {}: {}\n", m, rank_of(m)));
    }

    let cfg = CausalConfig::default();
    out.push_str("causal 1:2 (metric, pairs, p, balance, causal, truth):\n");
    for analysis in fx.causal_top10() {
        if let Some(c) = analysis.low_bin_comparison() {
            out.push_str(&format!(
                "  {:<36} pairs={:<5} p={:<9} imbal={:<2} causal={:<5} truth={}\n",
                analysis.metric.to_string(),
                c.n_pairs,
                c.p_value().map_or("n/a".into(), TextTable::num),
                c.n_imbalanced_covariates,
                c.causal(&cfg),
                truth_label(analysis.metric),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Ablations — sensitivity of the pipeline's design choices (not paper
// artifacts; run with `repro ablations` or individually).
// ---------------------------------------------------------------------------

/// Ablation: sensitivity of the dependence ranking to the event-grouping
/// window δ. The paper fixes δ = 5 min from operator feedback; this checks
/// how much the *conclusions* would change with a different choice.
pub fn ablation_delta(fx: &Fixture) -> String {
    let mut out = String::from("Ablation — MI top-10 stability vs event window δ:\n");
    let baseline: Vec<Metric> = fx.mi().iter().take(10).map(|e| e.metric).collect();
    let mut t = TextTable::new(vec!["delta (min)", "top-10 overlap with δ=5", "median events/case"]);
    for delta in [1u64, 5, 15, 30] {
        let inference = mpa_metrics::pipeline::infer(&fx.dataset, delta);
        let mi = mpa_core::mi_ranking(&inference.table, 20);
        let top: Vec<Metric> = mi.iter().take(10).map(|e| e.metric).collect();
        let overlap = top.iter().filter(|m| baseline.contains(m)).count();
        let events = inference.table.column(Metric::ChangeEvents);
        let med = if events.is_empty() { 0.0 } else { mpa_stats::percentile(&events, 50.0) };
        t.row(vec![delta.to_string(), format!("{overlap}/10"), TextTable::num(med)]);
    }
    out.push_str(&t.to_string());
    out.push_str("\nConclusion stability: the top-10 set should barely move across δ —\nthe ranking is driven by month-level aggregates, not by the grouping detail.\n");
    out
}

/// Ablation: dependence-analysis bin count (the paper uses 10).
pub fn ablation_bins(fx: &Fixture) -> String {
    use mpa_stats::{mutual_information, Binner};
    let table = fx.table();
    let tickets = table.tickets();
    let mut out = String::from("Ablation — MI vs discretization granularity:\n");
    let mut t = TextTable::new(vec!["bins", "MI(devices)", "MI(change events)", "MI(workloads)"]);
    for bins in [3usize, 5, 10, 20, 40] {
        let ticket_bins = Binner::fit(&tickets, bins).bin_all(&tickets);
        let mi_of = |m: Metric| {
            let col = table.column(m);
            let xb = Binner::fit(&col, bins).bin_all(&col);
            mutual_information(&xb, &ticket_bins)
        };
        t.row(vec![
            bins.to_string(),
            format!("{:.3}", mi_of(Metric::Devices)),
            format!("{:.3}", mi_of(Metric::ChangeEvents)),
            format!("{:.3}", mi_of(Metric::Workloads)),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("\nMore bins inflate every MI (plug-in bias grows with the table size) —\nincluding the no-effect control column — which is why the paper holds the\nbin count fixed rather than comparing MI across granularities.\n");
    out
}

/// Ablation: oversampling multipliers for the 5-class model (the paper uses
/// poor ×2, moderate/good ×3).
pub fn ablation_oversampling(fx: &Fixture) -> String {
    use mpa_learn::sampling::oversample;
    use mpa_learn::{cross_validate, DecisionTree};
    let set = mpa_core::predict::build_learnset(fx.table(), HealthClasses::Five);
    let mut out = String::from("Ablation — 5-class oversampling multipliers (plain C4.5):\n");
    let mut t = TextTable::new(vec![
        "multipliers [exc,good,mod,poor,vpoor]",
        "accuracy",
        "recall(good)",
        "recall(moderate)",
        "recall(poor)",
    ]);
    for (label, factors) in [
        ("none [1,1,1,1,1]", [1usize, 1, 1, 1, 1]),
        ("paper [1,3,3,2,1]", [1, 3, 3, 2, 1]),
        ("aggressive [1,6,6,4,1]", [1, 6, 6, 4, 1]),
    ] {
        let ev = cross_validate(&set, 5, 7, |train| {
            DecisionTree::fit_default(&oversample(train, &factors))
        });
        t.row(vec![
            label.to_string(),
            format!("{:.3}", ev.accuracy()),
            format!("{:.2}", ev.recall(1)),
            format!("{:.2}", ev.recall(2)),
            format!("{:.2}", ev.recall(3)),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("\nOversampling trades headline accuracy for intermediate-class recall;\nthe paper's multipliers sit at the knee of that trade.\n");
    out
}

/// Ablation: nearest-neighbour matching with and without the
/// Rosenbaum–Rubin caliper (the paper matches without one).
pub fn ablation_caliper(fx: &Fixture) -> String {
    let mut out = String::from("Ablation — matching caliper (treatment = no. of change events):\n");
    let mut t = TextTable::new(vec!["caliper", "pairs (1:2)", "imbalanced covariates", "p-value"]);
    for (label, caliper) in [("none (paper)", None), ("0.2 sd (R&R)", Some(0.2)), ("0.05 sd", Some(0.05))] {
        let cfg = CausalConfig { caliper_sd: caliper, ..CausalConfig::default() };
        let analysis = mpa_core::analyze_treatment(fx.table(), Metric::ChangeEvents, &cfg);
        if let Some(c) = analysis.low_bin_comparison() {
            t.row(vec![
                label.to_string(),
                c.n_pairs.to_string(),
                c.n_imbalanced_covariates.to_string(),
                c.p_value().map_or("-".into(), TextTable::num),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out.push_str("\nTighter calipers buy balance with sample size; the sign test loses power\nas pairs drop — the trade the paper implicitly makes by matching un-calipered\nand certifying quality through the §5.2.4 balance checks instead.\n");
    out
}

/// Ablation: the paper's AdaBoost variant (final tree on last-iteration
/// weights) vs the conventional SAMME ensemble.
pub fn ablation_boostmode(fx: &Fixture) -> String {
    use mpa_learn::boost::BoostConfig;
    use mpa_learn::{cross_validate, AdaBoost, BoostMode};
    let set = mpa_core::predict::build_learnset(fx.table(), HealthClasses::Five);
    let mut out = String::from("Ablation — AdaBoost final-model variants (5-class):\n");
    let mut t = TextTable::new(vec!["variant", "accuracy", "recall(excellent)", "recall(very poor)"]);
    for (label, mode) in [("last-tree (paper §6.1 text)", BoostMode::LastTree), ("SAMME ensemble", BoostMode::Ensemble)] {
        let ev = cross_validate(&set, 5, 7, |train| {
            AdaBoost::fit(train, BoostConfig { mode, ..BoostConfig::default() })
        });
        t.row(vec![
            label.to_string(),
            format!("{:.3}", ev.accuracy()),
            format!("{:.2}", ev.recall(0)),
            format!("{:.2}", ev.recall(4)),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("\nWith a strong base learner the literal last-tree variant degenerates (the\nfinal weights concentrate on residual noise); the prediction pipeline\ntherefore defaults to the ensemble — see EXPERIMENTS.md §Figure 8.\n");
    out
}

/// Ablation ids.
pub const ABLATIONS: [&str; 5] = [
    "ablation_delta",
    "ablation_bins",
    "ablation_oversampling",
    "ablation_caliper",
    "ablation_boostmode",
];

/// Every experiment id, in DESIGN.md §5 order.
pub const ALL_EXPERIMENTS: [&str; 21] = [
    "fig2", "fig3", "table2", "fig4", "fig5", "table3", "fig6", "table4", "table5", "fig7",
    "table6", "table7", "table8", "fig8", "fig9", "fig10", "table9", "fig11", "fig12", "fig13",
    "comparison",
];

/// Run one experiment by id.
pub fn run(id: &str, fx: &Fixture) -> Option<String> {
    Some(match id {
        "fig2" => fig2(fx),
        "fig3" => fig3(fx),
        "table2" => table2(fx),
        "fig4" => fig4(fx),
        "fig5" => fig5(fx),
        "table3" => table3(fx),
        "fig6" => fig6(fx),
        "table4" => table4(fx),
        "table5" => table5(fx),
        "fig7" => fig7(fx),
        "table6" => table6(fx),
        "table7" => table7(fx),
        "table8" => table8(fx),
        "fig8" => fig8(fx),
        "fig9" => fig9(fx),
        "fig10" => fig10(fx),
        "table9" => table9(fx),
        "fig11" => fig11(fx),
        "fig12" => fig12(fx),
        "fig13" => fig13(fx),
        "comparison" => comparison(fx),
        "calibrate" => calibrate(fx),
        "ablation_delta" => ablation_delta(fx),
        "ablation_bins" => ablation_bins(fx),
        "ablation_oversampling" => ablation_oversampling(fx),
        "ablation_caliper" => ablation_caliper(fx),
        "ablation_boostmode" => ablation_boostmode(fx),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn every_experiment_runs_on_the_tiny_fixture() {
        let fx = fixtures::tiny();
        for id in ALL_EXPERIMENTS {
            let out = run(id, fx).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(!out.is_empty(), "{id} produced no output");
        }
        assert!(run("calibrate", fx).is_some());
        assert!(run("nope", fx).is_none());
    }

    #[test]
    fn table3_lists_ten_rows() {
        let out = table3(fixtures::tiny());
        // Header + separator + 10 rows + title line.
        assert_eq!(out.lines().count(), 13, "{out}");
    }

    #[test]
    fn fig3_event_counts_decrease_with_delta() {
        let out = fig3(fixtures::tiny());
        // Extract the median column per δ row and check monotone non-increase.
        let medians: Vec<f64> = out
            .lines()
            .skip(3)
            .filter_map(|l| {
                let cells: Vec<&str> = l.split_whitespace().collect();
                if cells.len() >= 8 {
                    cells[4].parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(medians.len() >= 5, "{out}");
        for w in medians.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "median events must not grow with δ: {out}");
        }
    }
}
