//! # mpa-bench — reproduction and benchmark harness
//!
//! * [`fixtures`] — cached dataset + inference fixtures at several scales
//!   (generation and inference are deterministic, so caching is sound).
//! * [`experiments`] — one regenerator per table/figure of the paper; each
//!   returns the printable artifact, so the `repro` binary and the criterion
//!   benches share the exact same code paths.
//! * [`pipeline_bench`] — wall-clock benchmark of the generate → infer →
//!   MI pipeline across thread counts (`repro --bench-out`), with a
//!   built-in determinism cross-check.
//! * [`serve_load`] — closed-loop HTTP load generator for the `mpa-serve`
//!   daemon (`mpa-loadgen`), producing the `BENCH_serve.json` artifact.

pub mod experiments;
pub mod fixtures;
pub mod pipeline_bench;
pub mod serve_load;

pub use fixtures::{Fixture, FixtureScale};
pub use pipeline_bench::{
    assemble_pipeline_bench, assemble_pipeline_bench_with, run_pipeline_bench,
    run_pipeline_bench_with_mode, run_pipeline_single, run_pipeline_single_with, PipelineBench,
    PipelineRun, SingleRun,
};
pub use serve_load::{run_load, LoadConfig, ServeBench};
