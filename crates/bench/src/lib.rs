//! # mpa-bench — reproduction and benchmark harness
//!
//! * [`fixtures`] — cached dataset + inference fixtures at several scales
//!   (generation and inference are deterministic, so caching is sound).
//! * [`experiments`] — one regenerator per table/figure of the paper; each
//!   returns the printable artifact, so the `repro` binary and the criterion
//!   benches share the exact same code paths.

pub mod experiments;
pub mod fixtures;

pub use fixtures::{Fixture, FixtureScale};
