//! `mpa-loadgen` — closed-loop load generator for a live `mpa-serve`.
//!
//! ```text
//! mpa-loadgen --addr HOST:PORT [--clients N] [--requests N]
//!             [--ingest-every N] [--ticket-id-base N] [--out FILE]
//! ```
//!
//! Drives the daemon with a deterministic endpoint mix steered by its own
//! `/healthz` metadata, mixing one POST `/ingest` into every
//! `--ingest-every`-th request (0 disables ingest). Writes the
//! [`mpa_bench::ServeBench`] artifact (`BENCH_serve.json`) when `--out`
//! is given and exits 1 if **any** response fell outside the 2xx class —
//! CI gates on the exit code alone.

use mpa_bench::{run_load, LoadConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mpa-loadgen --addr HOST:PORT [--clients N] [--requests N] \
         [--ingest-every N] [--ticket-id-base N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a number, got {v:?}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadConfig::default();
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--clients" => cfg.clients = parse_num("--clients", it.next()),
            "--requests" => cfg.requests = parse_num("--requests", it.next()),
            "--ingest-every" => cfg.ingest_every = parse_num("--ingest-every", it.next()),
            "--ticket-id-base" => cfg.ticket_id_base = parse_num("--ticket-id-base", it.next()),
            "--out" => out = it.next().cloned(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        usage();
    };
    cfg.addr = addr;

    let bench = run_load(&cfg).unwrap_or_else(|e| {
        eprintln!("[mpa-loadgen] run failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[mpa-loadgen] {} requests ({} ingests) over {} client(s): \
         {:.1} req/s, p50 {} us, p99 {} us, max {} us, non-2xx {}, \
         events applied {}",
        bench.requests,
        bench.ingests,
        bench.clients,
        bench.qps,
        bench.p50_us,
        bench.p99_us,
        bench.max_us,
        bench.non_2xx,
        bench.events_applied
    );
    if let Some(path) = &out {
        let json = serde_json::to_string(&bench).expect("bench serializes");
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[mpa-loadgen] wrote {path}");
    }
    if bench.non_2xx > 0 {
        eprintln!("[mpa-loadgen] FAIL: {} non-2xx responses", bench.non_2xx);
        std::process::exit(1);
    }
}
