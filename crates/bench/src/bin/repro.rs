//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale tiny|small|medium|paper] [--threads N] [--out DIR] \
//!       [--bench-out FILE] [--infer-mode delta|full] [--gen-mode delta|full] \
//!       <experiment>... | all | calibrate
//! ```
//!
//! Experiment ids are the paper's table/figure numbers (`table3`, `fig8`,
//! ...) plus `comparison` (opinion vs evidence) and `calibrate` (dataset
//! health check). `all` runs everything and, with `--out`, also writes one
//! text file per experiment — the inputs EXPERIMENTS.md records.
//!
//! `--bench-out FILE` times the generate → infer → MI pipeline at 1 thread
//! and at the full worker count, cross-checks that both produced identical
//! results, and writes the JSON artifact (`BENCH_pipeline.json`); each run
//! also records its observability counter deltas (see `mpa_obs`).
//! Each thread count executes in a **fresh child process** (re-invoking
//! this binary with the hidden `--bench-single N` flag) so every recorded
//! peak RSS is a true per-configuration figure — `VmHWM` is monotone per
//! process, and back-to-back in-process runs used to smear the baseline
//! run's allocator high-water into the wider runs' "peaks".
//!
//! `--obs-out FILE` writes an [`mpa_obs::RunReport`] (span tree, counters,
//! scheduling stats, peak RSS) when the process finishes.

use mpa_bench::experiments;
use mpa_bench::fixtures::{by_scale, Fixture, FixtureScale};
use mpa_metrics::InferMode;
use mpa_synth::{CoverageReport, DegradeSpec, GenMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FixtureScale::Medium;
    let mut out_dir: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut infer_mode = InferMode::default();
    let mut gen_mode = GenMode::default();
    let mut degrade = DegradeSpec::none();
    // Raw flag values, kept verbatim for re-invoking self as a bench child.
    let mut scale_raw = "medium".to_string();
    let mut degrade_raw: Option<String> = None;
    let mut bench_single: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--degrade" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                degrade = DegradeSpec::parse(v).unwrap_or_else(|e| {
                    eprintln!("--degrade: {e}");
                    std::process::exit(2);
                });
                degrade_raw = Some(v.to_string());
            }
            "--infer-mode" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                infer_mode = InferMode::parse(v).unwrap_or_else(|| {
                    eprintln!("--infer-mode must be \"delta\" or \"full\", got {v:?}");
                    std::process::exit(2);
                });
            }
            "--gen-mode" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                gen_mode = GenMode::parse(v).unwrap_or_else(|| {
                    eprintln!("--gen-mode must be \"delta\" or \"full\", got {v:?}");
                    std::process::exit(2);
                });
            }
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                scale_raw = v.to_string();
                scale = match v {
                    "tiny" => FixtureScale::Tiny,
                    "small" => FixtureScale::Small,
                    "medium" => FixtureScale::Medium,
                    "paper" => FixtureScale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => out_dir = it.next().cloned(),
            "--bench-out" => bench_out = it.next().cloned(),
            // Hidden: run ONE bench configuration in this process and
            // print the SingleRun JSON on stdout. The parent `--bench-out`
            // invocation spawns one child per thread count so each
            // configuration gets a fresh VmHWM.
            "--bench-single" => {
                bench_single = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--bench-single needs a thread count");
                    std::process::exit(2);
                }));
            }
            "--obs-out" => obs_out = it.next().cloned(),
            "--threads" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
                mpa_exec::set_threads(n);
            }
            other => targets.push(other.to_string()),
        }
    }
    mpa_exec::set_phase_timing(true);
    if obs_out.is_some() {
        mpa_obs::install_collector();
    }

    // Child mode: one configuration in a fresh process, JSON on stdout.
    if let Some(threads) = bench_single {
        let single = mpa_bench::run_pipeline_single_with(
            &scale.scenario().with_degrade(degrade),
            threads,
            infer_mode,
            gen_mode,
        );
        println!("{}", serde_json::to_string(&single).expect("single serializes"));
        return;
    }

    if let Some(path) = &bench_out {
        let threads = mpa_exec::threads();
        let counts: Vec<usize> = if threads > 1 { vec![1, threads] } else { vec![1] };
        // mpa-lint: allow(R4) -- startup banner reports the host's core count on stderr; no artifact contains it
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        eprintln!(
            "[mpa] pipeline bench: scale {scale:?}, thread counts {counts:?} \
             ({host_cores} cores available), infer mode {}, gen mode {}, one \
             child process per configuration",
            infer_mode.label(),
            gen_mode.label()
        );
        let singles: Vec<mpa_bench::SingleRun> = counts
            .iter()
            .map(|&n| {
                run_bench_child(n, &scale_raw, infer_mode, gen_mode, degrade_raw.as_deref())
            })
            .collect();
        let bench = mpa_bench::assemble_pipeline_bench_with(
            &scale.scenario().with_degrade(degrade),
            infer_mode,
            gen_mode,
            &singles,
        );
        let json = serde_json::to_string(&bench).expect("bench serializes");
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        for r in &bench.runs {
            eprintln!(
                "[mpa]   {} thread(s): generate {:.2}s  infer {:.2}s  mi {:.2}s  \
                 total {:.2}s  peak-rss {:.0} MiB",
                r.threads, r.generate_s, r.infer_s, r.mi_ranking_s, r.total_s, r.peak_rss_mib
            );
        }
        eprintln!(
            "[mpa]   archive: {} B of config text held as {} B delta-encoded ({:.1}x)",
            bench.archive_total_bytes,
            bench.archive_text_bytes,
            bench.archive_total_bytes as f64 / bench.archive_text_bytes.max(1) as f64
        );
        eprintln!(
            "[mpa]   snapshot dedup: {:.1}% of replayed snapshots were distinct \
             (materialized + parsed once each)",
            bench.snapshot_dedup_ratio * 100.0
        );
        // A speedup figure is only honest when the widest run actually
        // achieved concurrency. On a one-core or oversubscribed host the
        // measured occupancy sits near 1 however many workers were
        // spawned, and "0.97x" would read as a pipeline regression — so
        // every phase line carries the caveat (a reader quoting any single
        // line must get the context with it), and the artifact records it
        // as `occupancy_limited`.
        let widest = bench.runs.last().expect("at least one run");
        let caveat = if bench.occupancy_limited {
            format!(
                " [occupancy-limited: effective parallelism {:.2} at {} threads — \
                 this ratio reflects host occupancy, not pipeline scaling]",
                widest.effective_parallelism, widest.threads
            )
        } else {
            String::new()
        };
        for (phase, ratio) in [
            ("total", bench.speedup),
            ("generate", bench.generate_speedup),
            ("infer", bench.infer_speedup),
            ("mi_ranking", bench.mi_ranking_speedup),
        ] {
            eprintln!("[mpa]   speedup {phase} {ratio:.2}x{caveat}");
        }
        eprintln!(
            "[mpa]   effective parallelism {:.2}, occupancy_limited: {}, \
             deterministic: {} -> wrote {path}",
            widest.effective_parallelism, bench.occupancy_limited, bench.deterministic
        );
        if targets.is_empty() {
            write_obs_report(obs_out.as_deref());
            return;
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro [--scale tiny|small|medium|paper] [--threads N] [--out DIR] \
             [--bench-out FILE] [--obs-out FILE] [--infer-mode delta|full] \
             [--gen-mode delta|full] [--degrade none|light|heavy|key=rate,...] \
             <experiment>...|all|calibrate"
        );
        eprintln!("experiments: {}", experiments::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    // Degraded scenarios and the full-render oracle bypass the pristine
    // per-scale cache (which is generated with the default engine).
    let custom: Option<Fixture> = (degrade.is_active() || gen_mode != GenMode::default())
        .then(|| Fixture::custom_with_mode(&scale.scenario().with_degrade(degrade), gen_mode));
    let fx = custom.as_ref().unwrap_or_else(|| by_scale(scale));

    // Publish the scenario coverage scan (RunReport carries it) and print
    // the one-line exercised/total summary per dimension.
    let coverage = CoverageReport::scan(&fx.dataset);
    coverage.publish();
    let summary: Vec<String> = ["dialect", "change_type", "stanza_kind", "degrade_knob"]
        .iter()
        .map(|dim| {
            let (ex, total) = coverage.exercised(dim);
            format!("{dim} {ex}/{total}")
        })
        .collect();
    eprintln!("[mpa] scenario coverage: {}", summary.join(", "));
    let mut ids: Vec<String> = Vec::new();
    for t in targets {
        match t.as_str() {
            "all" => ids.extend(experiments::ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(experiments::ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for id in &ids {
        let Some(output) = experiments::run(id, fx) else {
            eprintln!("unknown experiment {id:?} (known: {})", experiments::ALL_EXPERIMENTS.join(" "));
            std::process::exit(2);
        };
        println!("{output}");
        println!("{}", "=".repeat(78));
        if let Some(dir) = &out_dir {
            std::fs::write(format!("{dir}/{id}.txt"), &output).expect("write experiment output");
        }
    }
    write_obs_report(obs_out.as_deref());
}

/// Run one bench configuration in a fresh child process (`--bench-single`)
/// and parse its stdout. A fresh process per thread count is what makes
/// `peak_rss_mib` a per-configuration figure: `VmHWM` is monotone, so a
/// shared process would carry the baseline run's high-water into every
/// later run.
fn run_bench_child(
    threads: usize,
    scale_raw: &str,
    infer_mode: InferMode,
    gen_mode: GenMode,
    degrade_raw: Option<&str>,
) -> mpa_bench::SingleRun {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own binary for bench child: {e}");
        std::process::exit(1);
    });
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["--bench-single", &threads.to_string(), "--scale", scale_raw])
        .args(["--infer-mode", infer_mode.label()])
        .args(["--gen-mode", gen_mode.label()]);
    if let Some(d) = degrade_raw {
        cmd.args(["--degrade", d]);
    }
    let out = cmd.output().unwrap_or_else(|e| {
        eprintln!("bench child ({threads} threads) failed to start: {e}");
        std::process::exit(1);
    });
    if !out.status.success() {
        eprintln!(
            "bench child ({threads} threads) exited with {}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        std::process::exit(1);
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    serde_json::from_str(stdout.trim()).unwrap_or_else(|e| {
        eprintln!("bench child ({threads} threads) emitted unparsable output: {e}");
        std::process::exit(1);
    })
}

/// Write the run report if `--obs-out` was given. Called on every normal
/// exit path so a bench-only invocation still produces its report.
fn write_obs_report(path: Option<&str>) {
    let Some(path) = path else { return };
    let report = mpa_obs::RunReport::gather();
    report.write(path).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("[mpa] wrote run report {path}");
}
