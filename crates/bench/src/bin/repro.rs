//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale tiny|small|medium|paper] [--threads N] [--out DIR] \
//!       [--bench-out FILE] [--infer-mode delta|full] <experiment>... | all | calibrate
//! ```
//!
//! Experiment ids are the paper's table/figure numbers (`table3`, `fig8`,
//! ...) plus `comparison` (opinion vs evidence) and `calibrate` (dataset
//! health check). `all` runs everything and, with `--out`, also writes one
//! text file per experiment — the inputs EXPERIMENTS.md records.
//!
//! `--bench-out FILE` times the generate → infer → MI pipeline at 1 thread
//! and at the full worker count, cross-checks that both produced identical
//! results, and writes the JSON artifact (`BENCH_pipeline.json`); each run
//! also records its observability counter deltas (see `mpa_obs`).
//!
//! `--obs-out FILE` writes an [`mpa_obs::RunReport`] (span tree, counters,
//! scheduling stats, peak RSS) when the process finishes.

use mpa_bench::experiments;
use mpa_bench::fixtures::{by_scale, Fixture, FixtureScale};
use mpa_metrics::InferMode;
use mpa_synth::{CoverageReport, DegradeSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FixtureScale::Medium;
    let mut out_dir: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut infer_mode = InferMode::default();
    let mut degrade = DegradeSpec::none();
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--degrade" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                degrade = DegradeSpec::parse(v).unwrap_or_else(|e| {
                    eprintln!("--degrade: {e}");
                    std::process::exit(2);
                });
            }
            "--infer-mode" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                infer_mode = InferMode::parse(v).unwrap_or_else(|| {
                    eprintln!("--infer-mode must be \"delta\" or \"full\", got {v:?}");
                    std::process::exit(2);
                });
            }
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                scale = match v {
                    "tiny" => FixtureScale::Tiny,
                    "small" => FixtureScale::Small,
                    "medium" => FixtureScale::Medium,
                    "paper" => FixtureScale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => out_dir = it.next().cloned(),
            "--bench-out" => bench_out = it.next().cloned(),
            "--obs-out" => obs_out = it.next().cloned(),
            "--threads" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
                mpa_exec::set_threads(n);
            }
            other => targets.push(other.to_string()),
        }
    }
    mpa_exec::set_phase_timing(true);
    if obs_out.is_some() {
        mpa_obs::install_collector();
    }

    if let Some(path) = &bench_out {
        let threads = mpa_exec::threads();
        let counts: Vec<usize> = if threads > 1 { vec![1, threads] } else { vec![1] };
        // mpa-lint: allow(R4) -- startup banner reports the host's core count on stderr; no artifact contains it
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        eprintln!(
            "[mpa] pipeline bench: scale {scale:?}, thread counts {counts:?} \
             ({host_cores} cores available), infer mode {}",
            infer_mode.label()
        );
        let bench = mpa_bench::run_pipeline_bench_with_mode(
            &scale.scenario().with_degrade(degrade),
            &counts,
            infer_mode,
        );
        let json = serde_json::to_string(&bench).expect("bench serializes");
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        for r in &bench.runs {
            eprintln!(
                "[mpa]   {} thread(s): generate {:.2}s  infer {:.2}s  mi {:.2}s  \
                 total {:.2}s  peak-rss {:.0} MiB",
                r.threads, r.generate_s, r.infer_s, r.mi_ranking_s, r.total_s, r.peak_rss_mib
            );
        }
        eprintln!(
            "[mpa]   archive: {} B of config text held as {} B delta-encoded ({:.1}x)",
            bench.archive_total_bytes,
            bench.archive_text_bytes,
            bench.archive_total_bytes as f64 / bench.archive_text_bytes.max(1) as f64
        );
        eprintln!(
            "[mpa]   snapshot dedup: {:.1}% of replayed snapshots were distinct \
             (materialized + parsed once each)",
            bench.snapshot_dedup_ratio * 100.0
        );
        // A speedup figure is only honest when the widest run actually
        // achieved concurrency. On a one-core or oversubscribed host the
        // measured occupancy sits near 1 however many workers were
        // spawned, and "0.97x speedup" would read as a regression — so
        // refuse to print one and say why instead.
        let widest = bench.runs.last().expect("at least one run");
        if widest.threads > 1 && widest.effective_parallelism < 1.25 {
            eprintln!(
                "[mpa]   speedup caveat: the {}-thread run achieved effective \
                 parallelism {:.2} (workers were time-sliced, not concurrent), so the \
                 measured total ratio {:.2}x (generate {:.2}x, infer {:.2}x, mi {:.2}x) \
                 reflects occupancy, not the pipeline; \
                 deterministic: {} -> wrote {path}",
                widest.threads,
                widest.effective_parallelism,
                bench.speedup,
                bench.generate_speedup,
                bench.infer_speedup,
                bench.mi_ranking_speedup,
                bench.deterministic
            );
        } else {
            eprintln!(
                "[mpa]   speedup {:.2}x total (generate {:.2}x, infer {:.2}x, mi {:.2}x, \
                 effective parallelism {:.2}), deterministic: {} -> wrote {path}",
                bench.speedup,
                bench.generate_speedup,
                bench.infer_speedup,
                bench.mi_ranking_speedup,
                widest.effective_parallelism,
                bench.deterministic
            );
        }
        if targets.is_empty() {
            write_obs_report(obs_out.as_deref());
            return;
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro [--scale tiny|small|medium|paper] [--threads N] [--out DIR] \
             [--bench-out FILE] [--obs-out FILE] [--infer-mode delta|full] \
             [--degrade none|light|heavy|key=rate,...] \
             <experiment>...|all|calibrate"
        );
        eprintln!("experiments: {}", experiments::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    // Degraded scenarios bypass the pristine per-scale cache.
    let custom: Option<Fixture> = degrade
        .is_active()
        .then(|| Fixture::custom(&scale.scenario().with_degrade(degrade)));
    let fx = custom.as_ref().unwrap_or_else(|| by_scale(scale));

    // Publish the scenario coverage scan (RunReport carries it) and print
    // the one-line exercised/total summary per dimension.
    let coverage = CoverageReport::scan(&fx.dataset);
    coverage.publish();
    let summary: Vec<String> = ["dialect", "change_type", "stanza_kind", "degrade_knob"]
        .iter()
        .map(|dim| {
            let (ex, total) = coverage.exercised(dim);
            format!("{dim} {ex}/{total}")
        })
        .collect();
    eprintln!("[mpa] scenario coverage: {}", summary.join(", "));
    let mut ids: Vec<String> = Vec::new();
    for t in targets {
        match t.as_str() {
            "all" => ids.extend(experiments::ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(experiments::ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for id in &ids {
        let Some(output) = experiments::run(id, fx) else {
            eprintln!("unknown experiment {id:?} (known: {})", experiments::ALL_EXPERIMENTS.join(" "));
            std::process::exit(2);
        };
        println!("{output}");
        println!("{}", "=".repeat(78));
        if let Some(dir) = &out_dir {
            std::fs::write(format!("{dir}/{id}.txt"), &output).expect("write experiment output");
        }
    }
    write_obs_report(obs_out.as_deref());
}

/// Write the run report if `--obs-out` was given. Called on every normal
/// exit path so a bench-only invocation still produces its report.
fn write_obs_report(path: Option<&str>) {
    let Some(path) = path else { return };
    let report = mpa_obs::RunReport::gather();
    report.write(path).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("[mpa] wrote run report {path}");
}
