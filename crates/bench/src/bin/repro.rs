//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale tiny|small|medium|paper] [--out DIR] <experiment>... | all | calibrate
//! ```
//!
//! Experiment ids are the paper's table/figure numbers (`table3`, `fig8`,
//! ...) plus `comparison` (opinion vs evidence) and `calibrate` (dataset
//! health check). `all` runs everything and, with `--out`, also writes one
//! text file per experiment — the inputs EXPERIMENTS.md records.

use mpa_bench::experiments;
use mpa_bench::fixtures::{by_scale, FixtureScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FixtureScale::Medium;
    let mut out_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                scale = match v {
                    "tiny" => FixtureScale::Tiny,
                    "small" => FixtureScale::Small,
                    "medium" => FixtureScale::Medium,
                    "paper" => FixtureScale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => out_dir = it.next().cloned(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro [--scale tiny|small|medium|paper] [--out DIR] <experiment>...|all|calibrate"
        );
        eprintln!("experiments: {}", experiments::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let fx = by_scale(scale);
    let mut ids: Vec<String> = Vec::new();
    for t in targets {
        match t.as_str() {
            "all" => ids.extend(experiments::ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(experiments::ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for id in &ids {
        let Some(output) = experiments::run(id, fx) else {
            eprintln!("unknown experiment {id:?} (known: {})", experiments::ALL_EXPERIMENTS.join(" "));
            std::process::exit(2);
        };
        println!("{output}");
        println!("{}", "=".repeat(78));
        if let Some(dir) = &out_dir {
            std::fs::write(format!("{dir}/{id}.txt"), &output).expect("write experiment output");
        }
    }
}
