//! Cached dataset/inference fixtures.
//!
//! Generating an organization and inferring its case table is deterministic
//! per scenario, so fixtures are computed once per process and shared by
//! every experiment and bench (`OnceLock`). The paper-scale fixture is only
//! built when explicitly requested — it takes tens of seconds.

use mpa_metrics::pipeline::{infer, Inference};
use mpa_metrics::CaseTable;
use mpa_synth::{Dataset, GenMode, Scenario};
use std::sync::OnceLock;

/// Fixture scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixtureScale {
    /// 12 networks × 3 months (unit-test speed).
    Tiny,
    /// 48 networks × 5 months (bench speed).
    Small,
    /// 220 networks × 10 months (statistically meaningful).
    Medium,
    /// 860 networks × 17 months (the paper's scale).
    Paper,
}

impl FixtureScale {
    /// The scenario backing this scale.
    pub fn scenario(self) -> Scenario {
        match self {
            FixtureScale::Tiny => Scenario::tiny(),
            FixtureScale::Small => Scenario::small(),
            FixtureScale::Medium => Scenario::medium(),
            FixtureScale::Paper => Scenario::paper(),
        }
    }
}

/// A generated dataset plus its inference output.
pub struct Fixture {
    /// The raw dataset (inventory, archive, tickets, ...).
    pub dataset: Dataset,
    /// Inference output at the default δ = 5 minutes.
    pub inference: Inference,
    mi_cache: OnceLock<Vec<mpa_core::MiEntry>>,
    causal_cache: OnceLock<Vec<mpa_core::CausalAnalysis>>,
}

impl Fixture {
    fn build(scale: FixtureScale) -> Fixture {
        Self::custom(&scale.scenario())
    }

    /// Build a fixture for an arbitrary scenario, uncached. The cached
    /// accessors below only cover the pristine presets; degraded or
    /// otherwise customized scenarios (e.g. `repro --degrade heavy`) go
    /// through here and live as long as the caller keeps them.
    pub fn custom(scenario: &Scenario) -> Fixture {
        Self::custom_with_mode(scenario, GenMode::default())
    }

    /// [`Fixture::custom`] with an explicit generation engine — how
    /// `repro --gen-mode full` runs the experiments against the
    /// full-render oracle.
    pub fn custom_with_mode(scenario: &Scenario, gen_mode: GenMode) -> Fixture {
        let dataset = scenario.generate_with_mode(gen_mode);
        let inference = infer(&dataset, mpa_metrics::DELTA_DEFAULT_MINUTES);
        Fixture { dataset, inference, mi_cache: OnceLock::new(), causal_cache: OnceLock::new() }
    }

    /// The case table.
    pub fn table(&self) -> &CaseTable {
        &self.inference.table
    }

    /// MI ranking (cached; shared by Table 3, Table 7 and the comparison).
    pub fn mi(&self) -> &[mpa_core::MiEntry] {
        self.mi_cache.get_or_init(|| mpa_core::mi_ranking(self.table(), 30))
    }

    /// Causal analyses of the top-10 MI practices (cached; shared by
    /// Tables 5–8 and Figure 7).
    pub fn causal_top10(&self) -> &[mpa_core::CausalAnalysis] {
        self.causal_cache.get_or_init(|| {
            let cfg = mpa_core::CausalConfig::default();
            // Each treatment metric is matched and tested independently;
            // fan out across the worker threads, order preserved.
            let top: Vec<_> = self.mi().iter().take(10).collect();
            mpa_exec::par_map(&top, |_, e| {
                mpa_core::analyze_treatment(self.table(), e.metric, &cfg)
            })
        })
    }

    /// The cached causal analysis for one metric, if it is in the top 10.
    pub fn causal_for(&self, metric: mpa_metrics::Metric) -> Option<&mpa_core::CausalAnalysis> {
        self.causal_top10().iter().find(|a| a.metric == metric)
    }
}

macro_rules! cached {
    ($fn_name:ident, $scale:expr) => {
        /// Cached fixture at this scale (built on first use).
        pub fn $fn_name() -> &'static Fixture {
            static CELL: OnceLock<Fixture> = OnceLock::new();
            CELL.get_or_init(|| Fixture::build($scale))
        }
    };
}

cached!(tiny, FixtureScale::Tiny);
cached!(small, FixtureScale::Small);
cached!(medium, FixtureScale::Medium);
cached!(paper, FixtureScale::Paper);

/// Fixture by scale.
pub fn by_scale(scale: FixtureScale) -> &'static Fixture {
    match scale {
        FixtureScale::Tiny => tiny(),
        FixtureScale::Small => small(),
        FixtureScale::Medium => medium(),
        FixtureScale::Paper => paper(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fixture_builds_and_caches() {
        let a = tiny() as *const Fixture;
        let b = tiny() as *const Fixture;
        assert_eq!(a, b, "cached: same instance");
        assert!(tiny().table().n_cases() > 0);
        assert!(!tiny().inference.device_changes.is_empty());
    }
}
