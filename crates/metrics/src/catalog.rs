//! The practice-metric catalog: the 28 metrics of Table 1.
//!
//! Seventeen **design** metrics (long-term structural decisions, lines
//! D1–D6) and eleven **operational** metrics (day-to-day change behaviour,
//! lines O1–O4). The causal analysis treats each of the 28 in turn as a
//! treatment with the other 27 as confounders, so the catalog order is
//! load-bearing: it defines the column layout of every case table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of practice metrics.
pub const N_METRICS: usize = 28;

/// Whether a metric describes design or operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricCategory {
    /// Long-term structure and provisioning decisions.
    Design,
    /// Day-to-day change activity.
    Operational,
}

impl MetricCategory {
    /// One-letter tag used in the paper's tables ("D" / "O").
    pub fn tag(self) -> &'static str {
        match self {
            MetricCategory::Design => "D",
            MetricCategory::Operational => "O",
        }
    }
}

/// One of the 28 inferred practice metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Metric {
    // --- design (Table 1 lines D1–D6) --------------------------------------
    /// D1: workloads (services/user groups) hosted.
    Workloads,
    /// D2: devices in the network.
    Devices,
    /// D2: distinct vendors.
    Vendors,
    /// D2: distinct hardware models.
    Models,
    /// D2: distinct device roles.
    Roles,
    /// D2: distinct firmware versions.
    FirmwareVersions,
    /// D3: hardware heterogeneity (normalized model×role entropy).
    HardwareEntropy,
    /// D3: firmware heterogeneity (normalized firmware×role entropy).
    FirmwareEntropy,
    /// D4: distinct layer-2 protocols in use.
    L2Protocols,
    /// D4: distinct layer-3 routing protocols in use.
    L3Protocols,
    /// D4: distinct VLANs configured network-wide.
    Vlans,
    /// D5: BGP routing instances (transitive closure of adjacency).
    BgpInstances,
    /// D5: OSPF routing instances.
    OspfInstances,
    /// D5: mean devices per BGP instance.
    AvgBgpInstanceSize,
    /// D5: mean devices per OSPF instance.
    AvgOspfInstanceSize,
    /// D6: mean intra-device configuration references per device.
    IntraComplexity,
    /// D6: mean inter-device configuration references per device.
    InterComplexity,
    // --- operational (Table 1 lines O1–O4) -------------------------------
    /// O1: per-device configuration changes in the month.
    ConfigChanges,
    /// O1: distinct devices changed in the month.
    DevicesChanged,
    /// O1: fraction of the network's devices changed in the month.
    FracDevicesChanged,
    /// O2: fraction of changes made by automation accounts.
    FracAutomated,
    /// O3: distinct vendor-agnostic change types touched.
    ChangeTypes,
    /// O4: change events (δ-grouped).
    ChangeEvents,
    /// O4: mean devices changed per event.
    AvgDevicesPerEvent,
    /// O3/O4: fraction of events including an interface change.
    FracIfaceEvents,
    /// O3/O4: fraction of events including an ACL change.
    FracAclEvents,
    /// O3/O4: fraction of events including a router change.
    FracRouterEvents,
    /// O4: fraction of events touching a middlebox device.
    FracMboxEvents,
}

impl Metric {
    /// All metrics in case-table column order.
    pub const ALL: [Metric; N_METRICS] = [
        Metric::Workloads,
        Metric::Devices,
        Metric::Vendors,
        Metric::Models,
        Metric::Roles,
        Metric::FirmwareVersions,
        Metric::HardwareEntropy,
        Metric::FirmwareEntropy,
        Metric::L2Protocols,
        Metric::L3Protocols,
        Metric::Vlans,
        Metric::BgpInstances,
        Metric::OspfInstances,
        Metric::AvgBgpInstanceSize,
        Metric::AvgOspfInstanceSize,
        Metric::IntraComplexity,
        Metric::InterComplexity,
        Metric::ConfigChanges,
        Metric::DevicesChanged,
        Metric::FracDevicesChanged,
        Metric::FracAutomated,
        Metric::ChangeTypes,
        Metric::ChangeEvents,
        Metric::AvgDevicesPerEvent,
        Metric::FracIfaceEvents,
        Metric::FracAclEvents,
        Metric::FracRouterEvents,
        Metric::FracMboxEvents,
    ];

    /// Column index in the case table.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&m| m == self).expect("metric in catalog")
    }

    /// Category (design vs operational).
    pub fn category(self) -> MetricCategory {
        if self.index() < 17 {
            MetricCategory::Design
        } else {
            MetricCategory::Operational
        }
    }

    /// Human-readable name as the paper's tables print it.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Workloads => "No. of workloads",
            Metric::Devices => "No. of devices",
            Metric::Vendors => "No. of vendors",
            Metric::Models => "No. of models",
            Metric::Roles => "No. of roles",
            Metric::FirmwareVersions => "No. of firmware versions",
            Metric::HardwareEntropy => "Hardware entropy",
            Metric::FirmwareEntropy => "Firmware entropy",
            Metric::L2Protocols => "No. of L2 protocols",
            Metric::L3Protocols => "No. of L3 protocols",
            Metric::Vlans => "No. of VLANs",
            Metric::BgpInstances => "No. of BGP instances",
            Metric::OspfInstances => "No. of OSPF instances",
            Metric::AvgBgpInstanceSize => "Avg. size of a BGP instance",
            Metric::AvgOspfInstanceSize => "Avg. size of an OSPF instance",
            Metric::IntraComplexity => "Intra-device complexity",
            Metric::InterComplexity => "Inter-device complexity",
            Metric::ConfigChanges => "No. of config changes",
            Metric::DevicesChanged => "No. of devices changed",
            Metric::FracDevicesChanged => "Frac. devices changed",
            Metric::FracAutomated => "Frac. changes automated",
            Metric::ChangeTypes => "No. of change types",
            Metric::ChangeEvents => "No. of change events",
            Metric::AvgDevicesPerEvent => "Avg. devices changed per event",
            Metric::FracIfaceEvents => "Frac. events w/ interface change",
            Metric::FracAclEvents => "Frac. events w/ ACL change",
            Metric::FracRouterEvents => "Frac. events w/ router change",
            Metric::FracMboxEvents => "Frac. events w/ mbox change",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.category().tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_28_distinct_metrics() {
        assert_eq!(Metric::ALL.len(), N_METRICS);
        let set: std::collections::BTreeSet<_> = Metric::ALL.iter().collect();
        assert_eq!(set.len(), N_METRICS);
    }

    #[test]
    fn index_round_trips() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn category_split_is_17_design_11_operational() {
        let design = Metric::ALL.iter().filter(|m| m.category() == MetricCategory::Design).count();
        assert_eq!(design, 17);
        assert_eq!(N_METRICS - design, 11);
        assert_eq!(Metric::InterComplexity.category(), MetricCategory::Design);
        assert_eq!(Metric::ConfigChanges.category(), MetricCategory::Operational);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_METRICS);
    }

    #[test]
    fn display_includes_category_tag() {
        assert_eq!(Metric::Devices.to_string(), "No. of devices (D)");
        assert_eq!(Metric::ChangeEvents.to_string(), "No. of change events (O)");
    }
}
