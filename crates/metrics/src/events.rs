//! Grouping device changes into change events (§2.2, line O4).
//!
//! > "If a configuration change on a device occurs within δ time units of a
//! > change on another device in the same network, then we assume the
//! > changes on both devices are part of the same change event."
//!
//! The heuristic is a *chain* rule: changes sorted by time, a new event
//! starts whenever the gap to the previous change exceeds δ. Figure 3
//! studies the sensitivity of the event count to δ ∈ {NA, 1, 2, 5, 10, 15,
//! 30} minutes; the paper settles on δ = 5 because "operators indicated
//! they complete most related changes within such a time window".

use crate::changes::DeviceChange;
use mpa_config::typemap::ChangeType;
use mpa_model::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The paper's default grouping window, minutes.
pub const DELTA_DEFAULT_MINUTES: u64 = 5;

/// One change event: a maximal chain of changes with inter-change gaps ≤ δ.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeEvent {
    /// Indices into the input change slice, in time order.
    pub change_ix: Vec<usize>,
    /// Distinct devices touched.
    pub devices: Vec<DeviceId>,
    /// Distinct change types touched (sorted).
    pub types: Vec<ChangeType>,
    /// Whether every change in the event was automated.
    pub automated: bool,
}

impl ChangeEvent {
    /// Number of devices changed in this event.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Whether the event includes a change of the given type.
    pub fn touches(&self, t: ChangeType) -> bool {
        self.types.binary_search(&t).is_ok()
    }
}

/// Group a network's device changes into events with window `delta_minutes`.
///
/// `delta_minutes = 0` means "no grouping" (Figure 3's NA point): every
/// device change is its own event. The input may be in any order; events
/// are returned in time order.
pub fn group_events(changes: &[DeviceChange], delta_minutes: u64) -> Vec<ChangeEvent> {
    if changes.is_empty() {
        return Vec::new();
    }
    // Sort indices by (time, device) for determinism.
    let mut order: Vec<usize> = (0..changes.len()).collect();
    order.sort_by_key(|&i| (changes[i].time, changes[i].device));

    let mut events = Vec::new();
    let mut current: Vec<usize> = vec![order[0]];
    for w in order.windows(2) {
        let prev = &changes[w[0]];
        let next = &changes[w[1]];
        let gap = next.time.abs_diff(prev.time);
        if delta_minutes > 0 && gap <= delta_minutes {
            current.push(w[1]);
        } else {
            events.push(finish_event(changes, std::mem::take(&mut current)));
            current.push(w[1]);
        }
    }
    events.push(finish_event(changes, current));
    events
}

fn finish_event(changes: &[DeviceChange], ix: Vec<usize>) -> ChangeEvent {
    let devices: BTreeSet<DeviceId> = ix.iter().map(|&i| changes[i].device).collect();
    let mut types: Vec<ChangeType> =
        ix.iter().flat_map(|&i| changes[i].types.iter().copied()).collect();
    types.sort_unstable();
    types.dedup();
    let automated = ix.iter().all(|&i| changes[i].automated);
    ChangeEvent { change_ix: ix, devices: devices.into_iter().collect(), types, automated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_config::snapshot::Login;
    use mpa_model::Timestamp;
    use proptest::prelude::*;

    fn ch(dev: u32, t: u64, types: &[ChangeType], automated: bool) -> DeviceChange {
        let mut ts = types.to_vec();
        ts.sort_unstable();
        DeviceChange {
            device: DeviceId(dev),
            time: Timestamp(t),
            login: Login::new(if automated { "svc-netauto" } else { "alice" }),
            automated,
            types: ts,
            n_stanzas: types.len().max(1),
        }
    }

    #[test]
    fn chain_grouping_merges_within_delta() {
        let changes = vec![
            ch(1, 0, &[ChangeType::Interface], false),
            ch(2, 3, &[ChangeType::Interface], false),
            ch(3, 6, &[ChangeType::Vlan], false),
            // Gap of 20 > δ=5 → new event.
            ch(1, 26, &[ChangeType::Acl], true),
        ];
        let events = group_events(&changes, 5);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].n_devices(), 3);
        assert_eq!(events[0].types, vec![ChangeType::Interface, ChangeType::Vlan]);
        assert!(!events[0].automated);
        assert_eq!(events[1].n_devices(), 1);
        assert!(events[1].automated);
    }

    #[test]
    fn chaining_is_transitive_beyond_a_single_window() {
        // 0 → 4 → 8 → 12: each hop ≤ 5 but first-to-last is 12 > 5;
        // the chain rule still merges them all.
        let changes: Vec<DeviceChange> = (0..4)
            .map(|i| ch(i, u64::from(i) * 4, &[ChangeType::Interface], false))
            .collect();
        assert_eq!(group_events(&changes, 5).len(), 1);
    }

    #[test]
    fn delta_zero_disables_grouping() {
        let changes = vec![
            ch(1, 0, &[ChangeType::Interface], false),
            ch(2, 0, &[ChangeType::Interface], false),
            ch(3, 1, &[ChangeType::Interface], false),
        ];
        assert_eq!(group_events(&changes, 0).len(), 3);
    }

    #[test]
    fn larger_delta_never_increases_event_count() {
        let changes: Vec<DeviceChange> = [0u64, 2, 9, 11, 30, 34, 90]
            .iter()
            .enumerate()
            .map(|(i, &t)| ch(i as u32, t, &[ChangeType::Interface], false))
            .collect();
        let mut last = usize::MAX;
        for delta in [0u64, 1, 2, 5, 10, 15, 30] {
            let n = group_events(&changes, delta).len();
            assert!(n <= last, "δ={delta}: {n} > {last}");
            last = n;
        }
    }

    #[test]
    fn empty_input() {
        assert!(group_events(&[], 5).is_empty());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let changes = vec![
            ch(2, 50, &[ChangeType::Acl], false),
            ch(1, 0, &[ChangeType::Interface], false),
            ch(3, 52, &[ChangeType::Acl], false),
        ];
        let events = group_events(&changes, 5);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].devices, vec![DeviceId(1)]);
        assert_eq!(events[1].n_devices(), 2);
    }

    proptest! {
        #[test]
        fn events_partition_the_changes(
            times in proptest::collection::vec(0u64..10_000, 1..100),
            delta in 0u64..40,
        ) {
            let changes: Vec<DeviceChange> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| ch((i % 7) as u32, t, &[ChangeType::Interface], false))
                .collect();
            let events = group_events(&changes, delta);
            let mut seen: Vec<usize> = events.iter().flat_map(|e| e.change_ix.clone()).collect();
            seen.sort_unstable();
            let expected: Vec<usize> = (0..changes.len()).collect();
            prop_assert_eq!(seen, expected);
        }

        #[test]
        fn within_event_gaps_respect_delta(
            times in proptest::collection::vec(0u64..5_000, 2..80),
            delta in 1u64..30,
        ) {
            let changes: Vec<DeviceChange> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| ch(i as u32, t, &[ChangeType::Interface], false))
                .collect();
            for event in group_events(&changes, delta) {
                let mut ts: Vec<u64> =
                    event.change_ix.iter().map(|&i| changes[i].time.0).collect();
                ts.sort_unstable();
                for w in ts.windows(2) {
                    prop_assert!(w[1] - w[0] <= delta);
                }
            }
        }
    }
}
