//! End-to-end inference: dataset → case table.
//!
//! For every network the pipeline makes a single pass over each device's
//! snapshot history (each distinct snapshot state is analyzed exactly
//! once), deriving:
//!
//! 1. **change records** — stanza diffs of successive snapshots, typed and
//!    classified as automated/manual (O1–O3);
//! 2. **monthly design facts** — the parsed state of the latest snapshot at
//!    each month's end feeds the design metrics (D1–D6);
//! 3. **events** — change records chained with the δ heuristic (O4);
//! 4. **health** — incident tickets per month, planned maintenance excluded.
//!
//! Two interchangeable engines produce the change records and facts
//! ([`InferMode`]): the **delta-native** default replays the archive's
//! line-id deltas through [`DeltaInference`], re-parsing only segments
//! whose line span changed; the **full** oracle materializes every
//! distinct text and runs the whole parser on each. Their outputs are
//! byte-identical (golden- and property-tested) — the delta path just
//! does string work proportional to changed bytes instead of archive
//! bytes.
//!
//! Network-months without logging coverage are dropped, mirroring the
//! paper's missing-snapshot months (≈11K usable cases out of 850 × 17).

use crate::catalog::{Metric, N_METRICS};
use crate::changes::DeviceChange;
use crate::design::compute_design;
use crate::events::{group_events, DELTA_DEFAULT_MINUTES};
use crate::table::{Case, CaseTable};
use mpa_config::facts::{extract_facts, ConfigFacts};
use mpa_config::typemap::ChangeType;
use mpa_config::{
    diff_configs, parse_config, ChangeAction, DeltaInference, KeyId, LineClasses, ParsedConfig,
    ReplayBuffer, SnapshotMeta,
};
use mpa_model::{DeviceId, NetworkId, Role};
use mpa_synth::Dataset;
use std::collections::BTreeMap;

/// History holes longer than this (~45 days, in the simulator's minute
/// units) count as spanned gaps in `infer_gaps_spanned` — wider than any
/// pristine month-to-month cadence, so pristine corpora report few and
/// degraded ones audit their missing windows.
const GAP_SPAN_MINUTES: u64 = 45 * 24 * 60;

/// Cap on the replay arena a full-mode worker keeps between devices. A
/// reused [`ReplayBuffer`] otherwise retains the largest device's footprint
/// for the rest of its region (per-worker high-water memory that only
/// returns to the allocator when the region ends); reclaiming past 1 MiB
/// bounds that retention while leaving the common case — config texts are
/// a few KiB — reallocation-free.
const REPLAY_ARENA_CAP_BYTES: usize = 1 << 20;

/// Which engine derives change records and month-end facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferMode {
    /// Materialize every distinct snapshot text and run the full parser on
    /// each — the original pipeline, retained as the equivalence oracle.
    Full,
    /// Replay the archive's line-id deltas and re-parse only segments
    /// whose line span changed (the default).
    #[default]
    Delta,
}

impl InferMode {
    /// Parse a CLI flag value (`"full"` / `"delta"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(Self::Full),
            "delta" => Some(Self::Delta),
            _ => None,
        }
    }

    /// The flag spelling, for reports and usage text.
    pub fn label(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::Delta => "delta",
        }
    }
}

/// Everything inference produces. The case table drives the analytics; the
/// per-network change records additionally back the δ-sensitivity and
/// change-characterization figures (Figs 3, 12, 13).
#[derive(Debug, Clone)]
pub struct Inference {
    /// The `(network, month)` case table.
    pub table: CaseTable,
    /// All inferred device changes per network, time-sorted.
    pub device_changes: BTreeMap<NetworkId, Vec<DeviceChange>>,
}

/// Run inference with the default δ = 5 minutes.
pub fn infer_case_table(dataset: &Dataset) -> CaseTable {
    infer(dataset, DELTA_DEFAULT_MINUTES).table
}

/// Run the full inference pipeline with an explicit event window, using
/// the default (delta-native) engine.
pub fn infer(dataset: &Dataset, delta_minutes: u64) -> Inference {
    infer_with_mode(dataset, delta_minutes, InferMode::default())
}

/// Run the full inference pipeline with an explicit event window and
/// engine choice.
pub fn infer_with_mode(dataset: &Dataset, delta_minutes: u64, mode: InferMode) -> Inference {
    let ctx = NetworkInferCtx::new(dataset, delta_minutes, mode);

    // Each network's inference reads only shared immutable state (dataset,
    // ticket counts, line classes) and produces its own case rows, so
    // networks fan out across worker threads; merging in network order
    // keeps the CaseTable identical to a sequential run at any thread
    // count.
    let per_network =
        mpa_exec::par_map(&dataset.networks, |_, network| ctx.infer_network(dataset, network));

    let mut all_cases = Vec::new();
    let mut device_changes_by_net: BTreeMap<NetworkId, Vec<DeviceChange>> = BTreeMap::new();
    for (network_id, cases, net_changes) in per_network {
        all_cases.extend(cases);
        device_changes_by_net.insert(network_id, net_changes);
    }

    Inference { table: CaseTable::new(all_cases), device_changes: device_changes_by_net }
}

/// Shared read-only context for inferring individual networks against a
/// dataset: the per-`(network, month)` incident-ticket counts and (in delta
/// mode) the line classification, both pure functions of the dataset's
/// ticket stream and archive intern table.
///
/// `infer_with_mode` builds one per batch run; long-lived callers (the
/// `mpa-serve` resident session) rebuild it whenever the archive or ticket
/// stream grows and then re-infer only the networks an ingested event
/// touched. Because [`Self::infer_network`] is the exact parallel unit of
/// the batch pipeline and reads nothing but this context plus the dataset,
/// a per-network re-inference is byte-identical to what a cold batch run
/// over the same (grown) dataset would produce for that network — the
/// foundation of the daemon's ingest-equals-batch guarantee.
pub struct NetworkInferCtx {
    tickets: BTreeMap<(NetworkId, usize), f64>,
    classes: Option<LineClasses>,
    n_months: usize,
    delta_minutes: u64,
}

impl NetworkInferCtx {
    /// Build the context from the dataset's current tickets and archive.
    pub fn new(dataset: &Dataset, delta_minutes: u64, mode: InferMode) -> Self {
        // Incident tickets per (network, month).
        let mut tickets: BTreeMap<(NetworkId, usize), f64> = BTreeMap::new();
        for t in &dataset.tickets {
            if !t.kind.counts_toward_health() {
                continue;
            }
            if let Some(m) = dataset.period.month_of(t.opened) {
                *tickets.entry((t.network, m)).or_insert(0.0) += 1.0;
            }
        }
        // Line classification is a pure function of the archive's intern
        // table: built once, shared read-only by every network's delta
        // engine. `Some` doubles as the mode switch for `infer_network`.
        let classes = match mode {
            InferMode::Delta => Some(LineClasses::new(&dataset.archive)),
            InferMode::Full => None,
        };
        Self { tickets, classes, n_months: dataset.period.n_months(), delta_minutes }
    }

    /// Infer one network's case rows and change records. `dataset` must be
    /// the dataset this context was built from (or an unmodified clone).
    pub fn infer_network(
        &self,
        dataset: &Dataset,
        network: &mpa_model::Network,
    ) -> (NetworkId, Vec<Case>, Vec<DeviceChange>) {
        infer_network(
            dataset,
            network,
            &self.tickets,
            self.n_months,
            self.delta_minutes,
            self.classes.as_ref(),
        )
    }
}

/// Infer all case rows and change records for one network (pure w.r.t. the
/// shared dataset; the parallel unit of `infer`). `classes` selects the
/// engine: `Some` runs delta-native inference, `None` the full-parse
/// oracle.
fn infer_network(
    dataset: &Dataset,
    network: &mpa_model::Network,
    tickets: &BTreeMap<(NetworkId, usize), f64>,
    n_months: usize,
    delta_minutes: u64,
    classes: Option<&LineClasses>,
) -> (NetworkId, Vec<Case>, Vec<DeviceChange>) {
    let mut all_cases = Vec::new();
    let roles: BTreeMap<DeviceId, Role> =
        network.devices.iter().map(|d| (d.id, d.role)).collect();

    // Single analysis pass per device: change records + month-end facts.
    let mut net_changes: Vec<DeviceChange> = Vec::new();
    // facts_by_month[m][device] = facts at end of month m.
    let mut facts_by_month: Vec<BTreeMap<DeviceId, ConfigFacts>> =
        vec![BTreeMap::new(); n_months];

    // One engine (or one replay arena, in full mode) serves every device
    // of the network, so segment parses are shared across devices —
    // stanzas repeat heavily within a network.
    let mut engine = classes.map(|c| DeltaInference::new(&dataset.archive, c));
    let mut replay = ReplayBuffer::new();
    let mut pairs: Vec<(KeyId, ChangeAction)> = Vec::new();
    for device in &network.devices {
        let metas = dataset.archive.device_metas(device.id);
        if metas.is_empty() {
            continue;
        }
        // Large holes in a device's history (a degraded corpus's missing
        // collector windows, but also quiet devices in pristine ones) are
        // spanned, not errored on: count them so degraded runs can audit
        // that every gap was walked through. Mode-independent by
        // construction — both engines see the same metas.
        let gaps = metas
            .windows(2)
            .filter(|w| w[1].time.0.saturating_sub(w[0].time.0) > GAP_SPAN_MINUTES)
            .count() as u64;
        if gaps > 0 {
            mpa_obs::counters::INFER_GAPS_SPANNED.add(gaps);
        }
        match engine.as_mut() {
            Some(engine) => infer_device_delta(
                dataset,
                device,
                metas,
                engine,
                &mut pairs,
                &mut net_changes,
                &mut facts_by_month,
            ),
            None => {
                infer_device_full(
                    dataset,
                    device,
                    metas,
                    &mut replay,
                    &mut net_changes,
                    &mut facts_by_month,
                );
                replay.reclaim(REPLAY_ARENA_CAP_BYTES);
            }
        }
    }

    net_changes.sort_by_key(|c| (c.time, c.device));

    for (month, month_facts) in facts_by_month.iter().enumerate() {
        if !dataset.is_logged(network.id, month) {
            continue;
        }
        let start = dataset.period.month_start(month);
        let end = dataset.period.month_end(month);
        let month_changes: Vec<DeviceChange> = net_changes
            .iter()
            .filter(|c| c.time >= start && c.time < end)
            .cloned()
            .collect();
        let events = group_events(&month_changes, delta_minutes);

        let design = compute_design(network, month_facts);

        let n_changes = month_changes.len() as f64;
        let devices_changed: std::collections::BTreeSet<DeviceId> =
            month_changes.iter().map(|c| c.device).collect();
        let automated = month_changes.iter().filter(|c| c.automated).count() as f64;
        let mut types: Vec<ChangeType> =
            month_changes.iter().flat_map(|c| c.types.iter().copied()).collect();
        types.sort_unstable();
        types.dedup();

        let n_events = events.len() as f64;
        let frac_events = |pred: &dyn Fn(&crate::events::ChangeEvent) -> bool| {
            if events.is_empty() {
                0.0
            } else {
                events.iter().filter(|e| pred(e)).count() as f64 / n_events
            }
        };
        let avg_event_size = if events.is_empty() {
            0.0
        } else {
            events.iter().map(|e| e.n_devices() as f64).sum::<f64>() / n_events
        };

        let mut values = vec![0.0; N_METRICS];
        // mpa-lint: allow(R7) -- Metric::index() is the dense slot in a values vec sized N_METRICS
        let mut set = |m: Metric, v: f64| values[m.index()] = v;
        set(Metric::Workloads, design.workloads);
        set(Metric::Devices, design.devices);
        set(Metric::Vendors, design.vendors);
        set(Metric::Models, design.models);
        set(Metric::Roles, design.roles);
        set(Metric::FirmwareVersions, design.firmware_versions);
        set(Metric::HardwareEntropy, design.hardware_entropy);
        set(Metric::FirmwareEntropy, design.firmware_entropy);
        set(Metric::L2Protocols, design.l2_protocols);
        set(Metric::L3Protocols, design.l3_protocols);
        set(Metric::Vlans, design.vlans);
        set(Metric::BgpInstances, design.bgp_instances);
        set(Metric::OspfInstances, design.ospf_instances);
        set(Metric::AvgBgpInstanceSize, design.avg_bgp_instance_size);
        set(Metric::AvgOspfInstanceSize, design.avg_ospf_instance_size);
        set(Metric::IntraComplexity, design.intra_complexity);
        set(Metric::InterComplexity, design.inter_complexity);
        set(Metric::ConfigChanges, n_changes);
        set(Metric::DevicesChanged, devices_changed.len() as f64);
        set(
            Metric::FracDevicesChanged,
            if network.devices.is_empty() {
                0.0
            } else {
                devices_changed.len() as f64 / network.devices.len() as f64
            },
        );
        set(Metric::FracAutomated, if n_changes > 0.0 { automated / n_changes } else { 0.0 });
        set(Metric::ChangeTypes, types.len() as f64);
        set(Metric::ChangeEvents, n_events);
        set(Metric::AvgDevicesPerEvent, avg_event_size);
        set(Metric::FracIfaceEvents, frac_events(&|e| e.touches(ChangeType::Interface)));
        set(Metric::FracAclEvents, frac_events(&|e| e.touches(ChangeType::Acl)));
        set(Metric::FracRouterEvents, frac_events(&|e| e.touches(ChangeType::Router)));
        set(
            Metric::FracMboxEvents,
            frac_events(&|e| {
                e.devices.iter().any(|d| roles.get(d).is_some_and(|r| r.is_middlebox()))
            }),
        );

        all_cases.push(Case {
            network: network.id,
            month,
            values,
            tickets: tickets.get(&(network.id, month)).copied().unwrap_or(0.0),
        });
    }

    (network.id, all_cases, net_changes)
}

/// Full-parse oracle for one device: materialize every distinct snapshot
/// text and run the whole parser on each. Retained as the equivalence
/// oracle for the delta path (`--infer-mode full`).
fn infer_device_full(
    dataset: &Dataset,
    device: &mpa_model::Device,
    metas: &[SnapshotMeta],
    replay: &mut ReplayBuffer,
    net_changes: &mut Vec<DeviceChange>,
    facts_by_month: &mut [BTreeMap<DeviceId, ConfigFacts>],
) {
    dataset.archive.device_distinct_texts(device.id, replay);
    // Parse cache: `canon[ix]` is the distinct slot carrying snapshot
    // `ix`'s text (first-appearance order), so each *distinct* config
    // of the device is parsed (and fact-extracted) exactly once.
    // Adjacent duplicates never reach the archive, but reverts to an
    // earlier state do. Slot assignment equals full-text dedup
    // (property-tested), so the counters below are mode-independent.
    // Invariant maintained here: hits + misses == snapshots visited.
    let canon = replay.canon();
    let n_distinct = replay.n_distinct() as u64;
    mpa_obs::counters::PARSE_SNAPSHOTS_VISITED.add(canon.len() as u64);
    mpa_obs::counters::PARSE_CACHE_HITS.add(canon.len() as u64 - n_distinct);
    mpa_obs::counters::PARSE_CACHE_MISSES.add(n_distinct);
    mpa_obs::counters::INFER_FULL_PARSES.add(n_distinct);
    let parsed: Vec<Option<ParsedConfig<'_>>> = (0..replay.n_distinct())
        .map(|slot| parse_config(replay.text(slot), device.dialect()).ok())
        .collect();
    let parsed_at = |ix: usize| parsed[canon[ix]].as_ref();

    // Change records from successive parseable snapshots.
    let mut prev_ix: Option<usize> = None;
    for (ix, meta) in metas.iter().enumerate() {
        if parsed_at(ix).is_none() {
            continue;
        }
        if let Some(pi) = prev_ix {
            let old = parsed_at(pi).expect("tracked as parseable");
            let new = parsed_at(ix).expect("checked");
            let stanza_changes = diff_configs(old, new);
            if !stanza_changes.is_empty() {
                let mut types: Vec<ChangeType> =
                    stanza_changes.iter().map(|c| c.change_type).collect();
                types.sort_unstable();
                types.dedup();
                net_changes.push(DeviceChange {
                    device: device.id,
                    time: meta.time,
                    login: meta.login.clone(),
                    automated: dataset.directory.is_automated(&meta.login),
                    types,
                    n_stanzas: stanza_changes.len(),
                });
            }
        }
        prev_ix = Some(ix);
    }

    // Month-end facts: the latest parseable snapshot at or before
    // each month boundary. Facts are memoized per *distinct* config
    // (canonical index) so a quiet device is only analyzed once.
    let mut facts_cache: BTreeMap<usize, ConfigFacts> = BTreeMap::new();
    for (month, month_facts) in facts_by_month.iter_mut().enumerate() {
        let end = dataset.period.month_end(month);
        // partition_point over snapshot times (sorted per archive).
        let upto = metas.partition_point(|m| m.time < end);
        let Some(ix) = (0..upto).rev().find(|&i| parsed_at(i).is_some()) else {
            continue;
        };
        let facts = facts_cache
            .entry(canon[ix])
            .or_insert_with(|| extract_facts(parsed_at(ix).expect("parseable")));
        month_facts.insert(device.id, facts.clone());
    }
}

/// Delta-native inference for one device: replay the archive's line-id
/// deltas through `engine`, paying string-parse cost only for cache-novel
/// segments. Emits exactly the records `infer_device_full` would
/// (golden- and property-tested), including the parse-cache counter
/// triple — state dedup is the same `(line ids, byte length)` keying the
/// replay buffer uses, so `hits + misses == visited` holds identically
/// in both modes.
fn infer_device_delta(
    dataset: &Dataset,
    device: &mpa_model::Device,
    metas: &[SnapshotMeta],
    engine: &mut DeltaInference<'_>,
    pairs: &mut Vec<(KeyId, ChangeAction)>,
    net_changes: &mut Vec<DeviceChange>,
    facts_by_month: &mut [BTreeMap<DeviceId, ConfigFacts>],
) {
    let replay = engine
        .replay_device(device.id, device.dialect())
        .expect("device has snapshots (metas is non-empty)");
    let n_distinct = replay.n_distinct() as u64;
    mpa_obs::counters::PARSE_SNAPSHOTS_VISITED.add(replay.n_snapshots() as u64);
    mpa_obs::counters::PARSE_CACHE_HITS.add(replay.n_snapshots() as u64 - n_distinct);
    mpa_obs::counters::PARSE_CACHE_MISSES.add(n_distinct);

    // Change records from successive parseable snapshots. The merge walk
    // in `changes_between` yields one `(key, action)` pair per stanza
    // `diff_configs` would report, so the counts and deduped type sets
    // below match the oracle's.
    let mut prev_ix: Option<usize> = None;
    for (ix, meta) in metas.iter().enumerate() {
        let slot = replay.slot(ix);
        if !replay.parseable(slot) {
            continue;
        }
        if let Some(pi) = prev_ix {
            engine.changes_between(&replay, replay.slot(pi), slot, pairs);
            if !pairs.is_empty() {
                let mut types: Vec<ChangeType> =
                    pairs.iter().map(|&(k, _)| engine.change_type(k)).collect();
                types.sort_unstable();
                types.dedup();
                net_changes.push(DeviceChange {
                    device: device.id,
                    time: meta.time,
                    login: meta.login.clone(),
                    automated: dataset.directory.is_automated(&meta.login),
                    types,
                    n_stanzas: pairs.len(),
                });
            }
        }
        prev_ix = Some(ix);
    }

    // Month-end facts, memoized per distinct state exactly as in the full
    // path; the parsed config is assembled from cached segments, never
    // from re-rendered text.
    let mut facts_cache: BTreeMap<u32, ConfigFacts> = BTreeMap::new();
    for (month, month_facts) in facts_by_month.iter_mut().enumerate() {
        let end = dataset.period.month_end(month);
        let upto = metas.partition_point(|m| m.time < end);
        let Some(ix) = (0..upto).rev().find(|&i| replay.parseable(replay.slot(i))) else {
            continue;
        };
        let slot = replay.slot(ix);
        let facts = facts_cache.entry(slot).or_insert_with(|| {
            extract_facts(&engine.state_config(&replay, slot).expect("parseable"))
        });
        month_facts.insert(device.id, facts.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_synth::Scenario;

    fn tiny() -> Dataset {
        Scenario::tiny().generate()
    }

    #[test]
    fn case_count_matches_coverage() {
        let ds = tiny();
        let table = infer_case_table(&ds);
        assert_eq!(table.n_cases(), ds.coverage.len());
    }

    #[test]
    fn design_metrics_match_inventory_ground_truth() {
        let ds = tiny();
        let table = infer_case_table(&ds);
        for case in table.cases() {
            let net = ds.network(case.network).expect("known network");
            assert_eq!(case.value(Metric::Devices), net.size() as f64);
            let models: std::collections::BTreeSet<_> =
                net.devices.iter().map(|d| d.model).collect();
            assert_eq!(case.value(Metric::Models), models.len() as f64);
            let roles: std::collections::BTreeSet<_> =
                net.devices.iter().map(|d| d.role).collect();
            assert_eq!(case.value(Metric::Roles), roles.len() as f64);
            assert_eq!(case.value(Metric::Workloads), net.workloads.len() as f64);
        }
    }

    #[test]
    fn operational_metrics_track_simulated_events() {
        // The inferred event count should approximate the ground truth
        // (exact equality is not expected: events can merge when two
        // simulated events land within δ of each other).
        let ds = tiny();
        let table = infer_case_table(&ds);
        let mut total_true = 0.0;
        let mut total_inferred = 0.0;
        for case in table.cases() {
            let truth = ds.truth(case.network, case.month).expect("truth exists");
            total_true += f64::from(truth.n_events);
            total_inferred += case.value(Metric::ChangeEvents);
        }
        assert!(total_true > 0.0);
        let ratio = total_inferred / total_true;
        assert!(
            (0.7..=1.05).contains(&ratio),
            "inferred/true event ratio {ratio} (inferred {total_inferred}, true {total_true})"
        );
    }

    #[test]
    fn ticket_counts_exclude_maintenance() {
        let ds = tiny();
        let table = infer_case_table(&ds);
        for case in table.cases() {
            let truth = ds.truth(case.network, case.month).expect("truth");
            assert_eq!(
                case.tickets,
                f64::from(truth.incident_tickets),
                "net {} month {}",
                case.network,
                case.month
            );
        }
    }

    #[test]
    fn automation_fraction_is_sane() {
        let ds = tiny();
        let table = infer_case_table(&ds);
        let col = table.column(Metric::FracAutomated);
        assert!(col.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(col.iter().any(|&v| v > 0.0), "some automation must be detected");
        assert!(col.iter().any(|&v| v < 1.0), "not everything is automated");
    }

    #[test]
    fn fractions_bounded_and_event_sizes_consistent() {
        let ds = tiny();
        let table = infer_case_table(&ds);
        for case in table.cases() {
            for m in [
                Metric::FracDevicesChanged,
                Metric::FracAutomated,
                Metric::FracIfaceEvents,
                Metric::FracAclEvents,
                Metric::FracRouterEvents,
                Metric::FracMboxEvents,
            ] {
                let v = case.value(m);
                assert!((0.0..=1.0).contains(&v), "{m}: {v}");
            }
            if case.value(Metric::ChangeEvents) > 0.0 {
                assert!(case.value(Metric::AvgDevicesPerEvent) >= 1.0);
                assert!(case.value(Metric::ConfigChanges) >= case.value(Metric::ChangeEvents));
                assert!(case.value(Metric::DevicesChanged) <= case.value(Metric::Devices));
            }
        }
    }

    #[test]
    fn delta_and_full_modes_agree_exactly() {
        let ds = tiny();
        let full = infer_with_mode(&ds, DELTA_DEFAULT_MINUTES, InferMode::Full);
        let delta = infer_with_mode(&ds, DELTA_DEFAULT_MINUTES, InferMode::Delta);
        assert_eq!(full.device_changes, delta.device_changes);
        assert_eq!(full.table, delta.table);
    }

    #[test]
    fn smaller_delta_yields_at_least_as_many_events() {
        let ds = tiny();
        let fine = infer(&ds, 1);
        let coarse = infer(&ds, 30);
        let sum = |t: &CaseTable| -> f64 { t.column(Metric::ChangeEvents).iter().sum() };
        assert!(sum(&fine.table) >= sum(&coarse.table));
    }
}
