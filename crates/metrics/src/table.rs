//! The case table: one row per `(network, month)` with all 28 metric values
//! and the health outcome.
//!
//! "We compute the mean value of each management practice and health metric
//! on a monthly basis for each network, giving us ≈11K data points"
//! (§5.1.1). The case table is that data set; every downstream analysis —
//! MI ranking, CMI pairs, propensity matching, decision-tree learning —
//! consumes it.

use crate::catalog::{Metric, N_METRICS};
use mpa_model::NetworkId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row: a network observed for one month.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    /// Network.
    pub network: NetworkId,
    /// Month index within the study period.
    pub month: usize,
    /// The 28 metric values, in [`Metric::ALL`] order.
    pub values: Vec<f64>,
    /// Incident tickets this month (maintenance excluded).
    pub tickets: f64,
}

impl Case {
    /// Value of one metric.
    pub fn value(&self, m: Metric) -> f64 {
        self.values[m.index()]
    }
}

/// The full case table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseTable {
    cases: Vec<Case>,
}

/// Per-network mean values across its observed months (the unit of the
/// Appendix A characterization figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Network.
    pub network: NetworkId,
    /// Mean of each metric across the network's observed months.
    pub values: Vec<f64>,
    /// Mean monthly incident tickets.
    pub tickets: f64,
    /// Months observed.
    pub n_months: usize,
}

impl NetworkSummary {
    /// Mean value of one metric.
    pub fn value(&self, m: Metric) -> f64 {
        self.values[m.index()]
    }
}

impl CaseTable {
    /// Build from rows.
    ///
    /// # Panics
    /// Panics if any row does not have exactly 28 values.
    pub fn new(cases: Vec<Case>) -> Self {
        for c in &cases {
            assert_eq!(c.values.len(), N_METRICS, "case must carry all 28 metrics");
        }
        Self { cases }
    }

    /// All rows.
    pub fn cases(&self) -> &[Case] {
        &self.cases
    }

    /// Number of rows.
    pub fn n_cases(&self) -> usize {
        self.cases.len()
    }

    /// One metric's column.
    pub fn column(&self, m: Metric) -> Vec<f64> {
        let ix = m.index();
        self.cases.iter().map(|c| c.values[ix]).collect()
    }

    /// The outcome column (incident tickets).
    pub fn tickets(&self) -> Vec<f64> {
        self.cases.iter().map(|c| c.tickets).collect()
    }

    /// Month indices present, ascending.
    pub fn months(&self) -> Vec<usize> {
        let mut months: Vec<usize> = self.cases.iter().map(|c| c.month).collect();
        months.sort_unstable();
        months.dedup();
        months
    }

    /// Rows belonging to one month.
    pub fn cases_in_month(&self, month: usize) -> Vec<&Case> {
        self.cases.iter().filter(|c| c.month == month).collect()
    }

    /// A sub-table restricted to a month range `[from, to)` (used by the
    /// online-prediction experiment: train on months `t−M..t`, test on `t`).
    pub fn slice_months(&self, from: usize, to: usize) -> CaseTable {
        CaseTable {
            cases: self
                .cases
                .iter()
                .filter(|c| (from..to).contains(&c.month))
                .cloned()
                .collect(),
        }
    }

    /// Per-network means across observed months.
    pub fn network_summaries(&self) -> Vec<NetworkSummary> {
        let mut grouped: BTreeMap<NetworkId, Vec<&Case>> = BTreeMap::new();
        for c in &self.cases {
            grouped.entry(c.network).or_default().push(c);
        }
        grouped
            .into_iter()
            .map(|(network, rows)| {
                let n = rows.len() as f64;
                let mut values = vec![0.0; N_METRICS];
                let mut tickets = 0.0;
                for r in &rows {
                    for (v, rv) in values.iter_mut().zip(&r.values) {
                        *v += rv;
                    }
                    tickets += r.tickets;
                }
                for v in &mut values {
                    *v /= n;
                }
                NetworkSummary { network, values, tickets: tickets / n, n_months: rows.len() }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(net: u32, month: usize, devices: f64, tickets: f64) -> Case {
        let mut values = vec![0.0; N_METRICS];
        values[Metric::Devices.index()] = devices;
        Case { network: NetworkId(net), month, values, tickets }
    }

    #[test]
    fn columns_and_accessors() {
        let t = CaseTable::new(vec![case(0, 0, 5.0, 1.0), case(1, 0, 9.0, 3.0)]);
        assert_eq!(t.n_cases(), 2);
        assert_eq!(t.column(Metric::Devices), vec![5.0, 9.0]);
        assert_eq!(t.tickets(), vec![1.0, 3.0]);
        assert_eq!(t.cases()[0].value(Metric::Devices), 5.0);
    }

    #[test]
    #[should_panic(expected = "28 metrics")]
    fn wrong_width_panics() {
        CaseTable::new(vec![Case {
            network: NetworkId(0),
            month: 0,
            values: vec![1.0; 5],
            tickets: 0.0,
        }]);
    }

    #[test]
    fn month_slicing() {
        let t = CaseTable::new(vec![
            case(0, 0, 1.0, 0.0),
            case(0, 1, 2.0, 0.0),
            case(0, 2, 3.0, 0.0),
            case(1, 1, 4.0, 0.0),
        ]);
        assert_eq!(t.months(), vec![0, 1, 2]);
        assert_eq!(t.cases_in_month(1).len(), 2);
        let s = t.slice_months(1, 3);
        assert_eq!(s.n_cases(), 3);
        assert_eq!(s.months(), vec![1, 2]);
    }

    #[test]
    fn network_summaries_average_across_months() {
        let t = CaseTable::new(vec![
            case(0, 0, 10.0, 2.0),
            case(0, 1, 14.0, 4.0),
            case(1, 0, 100.0, 0.0),
        ]);
        let sums = t.network_summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].network, NetworkId(0));
        assert_eq!(sums[0].value(Metric::Devices), 12.0);
        assert_eq!(sums[0].tickets, 3.0);
        assert_eq!(sums[0].n_months, 2);
        assert_eq!(sums[1].value(Metric::Devices), 100.0);
    }
}
