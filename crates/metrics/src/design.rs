//! Design-practice metrics (Table 1, lines D1–D6).
//!
//! Composition metrics (D1–D2) come from inventory records; heterogeneity
//! (D3) is the normalized model×role (resp. firmware×role) entropy of §2.2;
//! data-plane and control-plane structure (D4–D6) comes from parsed
//! configuration facts, with routing instances extracted as connected
//! components of the "adjacent-to" relation restricted to devices running
//! the protocol (Benson et al.'s methodology, as adopted by the paper):
//!
//! * **BGP** adjacency = neighbor statements resolving to managed devices
//!   (the configuration itself declares who speaks to whom);
//! * **OSPF** adjacency = physical links between OSPF-running devices
//!   (OSPF neighbors are discovered, not configured).

use mpa_config::facts::ConfigFacts;
use mpa_model::{DeviceId, Link, Network, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The 17 design metric values for one network at one point in time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignMetrics {
    /// D1: hosted workloads.
    pub workloads: f64,
    /// D2: devices.
    pub devices: f64,
    /// D2: distinct vendors.
    pub vendors: f64,
    /// D2: distinct models.
    pub models: f64,
    /// D2: distinct roles.
    pub roles: f64,
    /// D2: distinct firmware versions.
    pub firmware_versions: f64,
    /// D3: hardware heterogeneity entropy.
    pub hardware_entropy: f64,
    /// D3: firmware heterogeneity entropy.
    pub firmware_entropy: f64,
    /// D4: distinct L2 protocols in use.
    pub l2_protocols: f64,
    /// D4: distinct L3 protocols in use.
    pub l3_protocols: f64,
    /// D4: distinct VLANs network-wide.
    pub vlans: f64,
    /// D5: BGP instances.
    pub bgp_instances: f64,
    /// D5: OSPF instances.
    pub ospf_instances: f64,
    /// D5: mean BGP instance size.
    pub avg_bgp_instance_size: f64,
    /// D5: mean OSPF instance size.
    pub avg_ospf_instance_size: f64,
    /// D6: mean intra-device references per device.
    pub intra_complexity: f64,
    /// D6: mean inter-device references per device.
    pub inter_complexity: f64,
}

/// BGP instances: connected components of the neighbor-reference graph over
/// devices with a BGP process. Only references to devices in the same
/// network count (cross-network peerings are organizational boundaries).
pub fn bgp_instances(
    network: &Network,
    facts: &BTreeMap<DeviceId, ConfigFacts>,
) -> Vec<Vec<DeviceId>> {
    let members: BTreeSet<DeviceId> = network.devices.iter().map(|d| d.id).collect();
    let speakers: Vec<DeviceId> = network
        .devices
        .iter()
        .filter(|d| facts.get(&d.id).is_some_and(|f| f.bgp_local_as.is_some()))
        .map(|d| d.id)
        .collect();
    let mut graph = Topology::new();
    for &dev in &speakers {
        let Some(f) = facts.get(&dev) else { continue };
        for &peer in &f.bgp_neighbor_devices {
            if peer != dev && members.contains(&peer) {
                graph.add_link(Link::new(dev, peer));
            }
        }
    }
    graph.components(&speakers)
}

/// OSPF instances: connected components of the physical topology induced on
/// OSPF-running devices.
pub fn ospf_instances(
    network: &Network,
    facts: &BTreeMap<DeviceId, ConfigFacts>,
) -> Vec<Vec<DeviceId>> {
    let speakers: Vec<DeviceId> = network
        .devices
        .iter()
        .filter(|d| facts.get(&d.id).is_some_and(|f| f.ospf_process.is_some()))
        .map(|d| d.id)
        .collect();
    let speaker_set: BTreeSet<DeviceId> = speakers.iter().copied().collect();
    let mut induced = Topology::new();
    for link in network.topology.links() {
        if speaker_set.contains(&link.a) && speaker_set.contains(&link.b) {
            induced.add_link(*link);
        }
    }
    induced.components(&speakers)
}

/// Compute all design metrics for a network given per-device parsed facts.
pub fn compute_design(network: &Network, facts: &BTreeMap<DeviceId, ConfigFacts>) -> DesignMetrics {
    let devices = &network.devices;
    let n = devices.len();

    let vendors: BTreeSet<_> = devices.iter().map(|d| d.vendor()).collect();
    let models: BTreeSet<_> = devices.iter().map(|d| d.model).collect();
    let roles: BTreeSet<_> = devices.iter().map(|d| d.role).collect();
    let firmwares: BTreeSet<_> = devices.iter().map(|d| d.firmware).collect();

    // Heterogeneity: category = (model, role) resp. (firmware, role).
    let mut hw_counts: BTreeMap<(mpa_model::DeviceModel, mpa_model::Role), usize> =
        BTreeMap::new();
    let mut fw_counts: BTreeMap<(mpa_model::Firmware, mpa_model::Role), usize> = BTreeMap::new();
    for d in devices {
        *hw_counts.entry((d.model, d.role)).or_insert(0) += 1;
        *fw_counts.entry((d.firmware, d.role)).or_insert(0) += 1;
    }
    let hw_vec: Vec<usize> = hw_counts.values().copied().collect();
    let fw_vec: Vec<usize> = fw_counts.values().copied().collect();

    // Protocol usage and VLANs, network-wide.
    let mut l2: BTreeSet<mpa_config::facts::L2Protocol> = BTreeSet::new();
    let mut vlan_ids: BTreeSet<u16> = BTreeSet::new();
    let mut any_bgp = false;
    let mut any_ospf = false;
    let mut intra_total = 0.0;
    let mut inter_total = 0.0;
    for d in devices {
        if let Some(f) = facts.get(&d.id) {
            l2.extend(f.l2_protocols.iter().copied());
            vlan_ids.extend(f.vlan_ids.iter().copied());
            any_bgp |= f.bgp_local_as.is_some();
            any_ospf |= f.ospf_process.is_some();
            intra_total += f.intra_refs as f64;
            inter_total += f.inter_refs() as f64;
        }
    }

    let bgp = bgp_instances(network, facts);
    let ospf = ospf_instances(network, facts);
    let avg_size = |instances: &[Vec<DeviceId>]| {
        if instances.is_empty() {
            0.0
        } else {
            instances.iter().map(Vec::len).sum::<usize>() as f64 / instances.len() as f64
        }
    };

    DesignMetrics {
        workloads: network.workloads.len() as f64,
        devices: n as f64,
        vendors: vendors.len() as f64,
        models: models.len() as f64,
        roles: roles.len() as f64,
        firmware_versions: firmwares.len() as f64,
        hardware_entropy: mpa_stats::normalized_entropy(&hw_vec),
        firmware_entropy: mpa_stats::normalized_entropy(&fw_vec),
        l2_protocols: l2.len() as f64,
        l3_protocols: f64::from(u8::from(any_bgp) + u8::from(any_ospf)),
        vlans: vlan_ids.len() as f64,
        bgp_instances: bgp.len() as f64,
        ospf_instances: ospf.len() as f64,
        avg_bgp_instance_size: avg_size(&bgp),
        avg_ospf_instance_size: avg_size(&ospf),
        intra_complexity: if n > 0 { intra_total / n as f64 } else { 0.0 },
        inter_complexity: if n > 0 { inter_total / n as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_model::{Device, DeviceModel, Firmware, NetworkId, NetworkPurpose, Role, Vendor, Workload};

    fn dev(id: u32, role: Role, line: u16) -> Device {
        Device {
            id: DeviceId(id),
            network: NetworkId(0),
            model: DeviceModel { vendor: Vendor::Cirrus, line },
            role,
            firmware: Firmware { major: 1, minor: 0, patch: 0 },
        }
    }

    fn net(devices: Vec<Device>, topology: Topology) -> Network {
        Network {
            id: NetworkId(0),
            purpose: NetworkPurpose::Hosting,
            workloads: vec![Workload { service: 1, name: "w".into() }],
            devices,
            topology,
        }
    }

    fn facts_with(
        entries: Vec<(u32, ConfigFacts)>,
    ) -> BTreeMap<DeviceId, ConfigFacts> {
        entries.into_iter().map(|(id, f)| (DeviceId(id), f)).collect()
    }

    fn bgp_facts(neighbors: &[u32]) -> ConfigFacts {
        ConfigFacts {
            bgp_local_as: Some(65_000),
            bgp_neighbor_devices: neighbors.iter().map(|&n| DeviceId(n)).collect(),
            ..ConfigFacts::default()
        }
    }

    #[test]
    fn bgp_instance_extraction_uses_neighbor_transitive_closure() {
        // 0–1 meshed, 2–3 meshed, 4 isolated speaker: 3 instances.
        let devices: Vec<Device> = (0..5).map(|i| dev(i, Role::Router, 7000)).collect();
        let network = net(devices, Topology::new());
        let facts = facts_with(vec![
            (0, bgp_facts(&[1])),
            (1, bgp_facts(&[0])),
            (2, bgp_facts(&[3])),
            (3, bgp_facts(&[2])),
            (4, bgp_facts(&[])),
        ]);
        let inst = bgp_instances(&network, &facts);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst[0], vec![DeviceId(0), DeviceId(1)]);
        let m = compute_design(&network, &facts);
        assert_eq!(m.bgp_instances, 3.0);
        assert!((m.avg_bgp_instance_size - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bgp_neighbors_outside_network_are_ignored() {
        let devices: Vec<Device> = (0..2).map(|i| dev(i, Role::Router, 7000)).collect();
        let network = net(devices, Topology::new());
        // Device 0 peers with a device that is not a member (id 99).
        let facts = facts_with(vec![(0, bgp_facts(&[99])), (1, bgp_facts(&[]))]);
        assert_eq!(bgp_instances(&network, &facts).len(), 2);
    }

    #[test]
    fn ospf_instances_split_on_non_speaker_gap() {
        // Chain 0–1–2–3–4; OSPF on all but 2 → two instances.
        let devices: Vec<Device> = (0..5).map(|i| dev(i, Role::Router, 7000)).collect();
        let mut topo = Topology::new();
        for i in 0..4u32 {
            topo.add_link(Link::new(DeviceId(i), DeviceId(i + 1)));
        }
        let network = net(devices, topo);
        let ospf = ConfigFacts { ospf_process: Some(1), ..ConfigFacts::default() };
        let facts = facts_with(vec![
            (0, ospf.clone()),
            (1, ospf.clone()),
            (3, ospf.clone()),
            (4, ospf),
        ]);
        let inst = ospf_instances(&network, &facts);
        assert_eq!(inst.len(), 2);
        let m = compute_design(&network, &facts);
        assert_eq!(m.ospf_instances, 2.0);
        assert_eq!(m.avg_ospf_instance_size, 2.0);
    }

    #[test]
    fn heterogeneity_entropy_from_inventory() {
        // 4 devices: 2 models × same role → entropy = 1/2 (H=1, log2 4 = 2).
        let devices = vec![
            dev(0, Role::Switch, 4000),
            dev(1, Role::Switch, 4000),
            dev(2, Role::Switch, 4010),
            dev(3, Role::Switch, 4010),
        ];
        let network = net(devices, Topology::new());
        let m = compute_design(&network, &BTreeMap::new());
        assert!((m.hardware_entropy - 0.5).abs() < 1e-12);
        assert_eq!(m.firmware_entropy, 0.0, "all firmware identical");
        assert_eq!(m.models, 2.0);
        assert_eq!(m.roles, 1.0);
        assert_eq!(m.vendors, 1.0);
    }

    #[test]
    fn aggregates_vlans_and_protocols_across_devices() {
        let devices = vec![dev(0, Role::Switch, 4000), dev(1, Role::Switch, 4000)];
        let network = net(devices, Topology::new());
        let mut f0 = ConfigFacts {
            vlan_ids: [10, 20].into_iter().collect(),
            intra_refs: 4,
            ..Default::default()
        };
        f0.l2_protocols.insert(mpa_config::facts::L2Protocol::Vlan);
        f0.l2_protocols.insert(mpa_config::facts::L2Protocol::SpanningTree);
        let mut f1 = ConfigFacts {
            vlan_ids: [20, 30].into_iter().collect(),
            inter_ref_devices: vec![DeviceId(0)],
            ..Default::default()
        };
        f1.l2_protocols.insert(mpa_config::facts::L2Protocol::Vlan);
        let facts = facts_with(vec![(0, f0), (1, f1)]);
        let m = compute_design(&network, &facts);
        assert_eq!(m.vlans, 3.0, "distinct union of vlan ids");
        assert_eq!(m.l2_protocols, 2.0);
        assert_eq!(m.l3_protocols, 0.0);
        assert_eq!(m.intra_complexity, 2.0, "4 refs / 2 devices");
        assert_eq!(m.inter_complexity, 0.5);
    }

    #[test]
    fn missing_facts_degrade_gracefully() {
        let devices = vec![dev(0, Role::Switch, 4000)];
        let network = net(devices, Topology::new());
        let m = compute_design(&network, &BTreeMap::new());
        assert_eq!(m.devices, 1.0);
        assert_eq!(m.vlans, 0.0);
        assert_eq!(m.bgp_instances, 0.0);
        assert_eq!(m.avg_bgp_instance_size, 0.0);
    }
}
