//! Replaying the snapshot archive into per-device change records.
//!
//! "We infer operational practices by comparing two successive configuration
//! snapshots from the same device" (§2.2). Each successive snapshot pair
//! that differs in at least one stanza becomes one [`DeviceChange`], typed
//! by the vendor-agnostic stanza types it touched and classified as
//! automated or manual from its login metadata.

use mpa_config::snapshot::{Login, UserDirectory};
use mpa_config::typemap::ChangeType;
use mpa_config::{diff_configs, parse_config, Archive, ParsedConfig};
use mpa_model::device::Dialect;
use mpa_model::{DeviceId, Timestamp};
use serde::{Deserialize, Serialize};

/// One inferred configuration change on one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceChange {
    /// Device that changed.
    pub device: DeviceId,
    /// Snapshot timestamp of the new configuration.
    pub time: Timestamp,
    /// Login that made the change.
    pub login: Login,
    /// Whether the login is an automation account.
    pub automated: bool,
    /// Distinct vendor-agnostic change types touched (sorted, deduped).
    pub types: Vec<ChangeType>,
    /// Number of stanzas that differed.
    pub n_stanzas: usize,
}

impl DeviceChange {
    /// Whether this change touched a given type.
    pub fn touches(&self, t: ChangeType) -> bool {
        self.types.binary_search(&t).is_ok()
    }
}

/// Replay a device's whole archived history into change records.
///
/// Snapshot pairs that are textually different but stanza-identical (e.g.
/// reordered whitespace) produce no record, matching the paper's "at least
/// one stanza differs" rule. Snapshots that fail to parse are skipped with
/// their predecessor retained as the diff base (defensive: our renderer
/// never produces such snapshots, but an inference layer must not panic on
/// dirty archives).
pub fn replay_device_changes(
    archive: &Archive,
    device: DeviceId,
    dialect: Dialect,
    directory: &UserDirectory,
) -> Vec<DeviceChange> {
    // Materialize the device's texts once (one forward delta replay); the
    // zero-copy parses borrow from this buffer for the whole walk.
    let texts = archive.device_texts(device);
    let metas = archive.device_metas(device);
    let mut out = Vec::new();
    let mut prev: Option<ParsedConfig<'_>> = None;
    for (text, meta) in texts.iter().zip(metas) {
        let Ok(parsed) = parse_config(text, dialect) else {
            continue;
        };
        if let Some(prev_cfg) = &prev {
            let stanza_changes = diff_configs(prev_cfg, &parsed);
            if !stanza_changes.is_empty() {
                let mut types: Vec<ChangeType> =
                    stanza_changes.iter().map(|c| c.change_type).collect();
                types.sort_unstable();
                types.dedup();
                out.push(DeviceChange {
                    device,
                    time: meta.time,
                    login: meta.login.clone(),
                    automated: directory.is_automated(&meta.login),
                    types,
                    n_stanzas: stanza_changes.len(),
                });
            }
        }
        prev = Some(parsed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_config::render_config;
    use mpa_config::semantic::{AclRule, DeviceConfig};
    use mpa_config::snapshot::{Snapshot, SnapshotMeta};

    fn snap(dev: u32, t: u64, login: &str, cfg: &DeviceConfig) -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                device: DeviceId(dev),
                time: Timestamp(t),
                login: Login::new(login),
            },
            text: render_config(cfg),
        }
    }

    fn directory() -> UserDirectory {
        UserDirectory::new(["svc-netauto".to_string()])
    }

    #[test]
    fn replay_produces_typed_records() {
        let mut cfg = DeviceConfig::new("h", Dialect::BlockKeyword);
        cfg.assign_interface_vlan(1, 10);
        let mut archive = Archive::new();
        archive.push(snap(1, 0, "alice", &cfg)).unwrap();

        cfg.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
        archive.push(snap(1, 100, "svc-netauto", &cfg)).unwrap();

        cfg.set_description(1, "rewired");
        archive.push(snap(1, 200, "bob", &cfg)).unwrap();

        let changes =
            replay_device_changes(&archive, DeviceId(1), Dialect::BlockKeyword, &directory());
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].types, vec![ChangeType::Acl]);
        assert!(changes[0].automated);
        assert_eq!(changes[1].types, vec![ChangeType::Interface]);
        assert!(!changes[1].automated);
        assert!(changes[0].touches(ChangeType::Acl));
        assert!(!changes[0].touches(ChangeType::Interface));
    }

    #[test]
    fn identical_snapshots_produce_no_record() {
        let cfg = DeviceConfig::new("h", Dialect::BlockKeyword);
        let mut archive = Archive::new();
        archive.push(snap(1, 0, "a", &cfg)).unwrap();
        archive.push(snap(1, 50, "a", &cfg)).unwrap();
        let changes =
            replay_device_changes(&archive, DeviceId(1), Dialect::BlockKeyword, &directory());
        assert!(changes.is_empty());
    }

    #[test]
    fn unknown_device_yields_empty() {
        let archive = Archive::new();
        assert!(replay_device_changes(&archive, DeviceId(9), Dialect::BlockKeyword, &directory())
            .is_empty());
    }

    #[test]
    fn unparseable_snapshots_are_skipped_gracefully() {
        let mut cfg = DeviceConfig::new("h", Dialect::BlockKeyword);
        let mut archive = Archive::new();
        archive.push(snap(1, 0, "a", &cfg)).unwrap();
        // A corrupt snapshot (no hostname) in the middle.
        archive
            .push(Snapshot {
                meta: SnapshotMeta {
                    device: DeviceId(1),
                    time: Timestamp(10),
                    login: Login::new("a"),
                },
                text: "  orphan garbage\n".to_string(),
            })
            .unwrap();
        cfg.add_vlan(20);
        archive.push(snap(1, 20, "a", &cfg)).unwrap();
        let changes =
            replay_device_changes(&archive, DeviceId(1), Dialect::BlockKeyword, &directory());
        assert_eq!(changes.len(), 1, "diff bridges across the corrupt snapshot");
        assert_eq!(changes[0].types, vec![ChangeType::Vlan]);
    }

    #[test]
    fn multi_stanza_change_counts_each_type_once() {
        let mut cfg = DeviceConfig::new("h", Dialect::BlockKeyword);
        cfg.assign_interface_vlan(1, 10);
        let mut archive = Archive::new();
        archive.push(snap(1, 0, "a", &cfg)).unwrap();
        cfg.assign_interface_vlan(2, 10);
        cfg.assign_interface_vlan(3, 10);
        cfg.add_user("tmp1", "contractor");
        archive.push(snap(1, 60, "a", &cfg)).unwrap();
        let changes =
            replay_device_changes(&archive, DeviceId(1), Dialect::BlockKeyword, &directory());
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].types, vec![ChangeType::Interface, ChangeType::User]);
        assert!(changes[0].n_stanzas >= 3);
    }
}
