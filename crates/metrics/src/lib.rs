//! # mpa-metrics — inferring management practices from raw network data
//!
//! The paper's §2: management practices "are not explicitly logged", so MPA
//! infers them from three data sources — inventory records, configuration
//! snapshots and trouble-ticket logs. This crate is that inference layer.
//! It consumes **only** the observable parts of a dataset (never the
//! synthetic generator's latent profiles or ground truth) and produces the
//! case table every analysis in `mpa-core` runs on.
//!
//! * [`catalog`] — the 28 practice metrics (Table 1, lines D1–D6 and O1–O4).
//! * [`changes`] — replaying the snapshot archive into per-device change
//!   records (stanza diffs, vendor-agnostic types, automation classification).
//! * [`events`] — grouping device changes into *change events* with the
//!   paper's δ-window chaining heuristic (§2.2, Figure 3).
//! * [`design`] — design metrics: composition counts, hardware/firmware
//!   heterogeneity entropy, protocol usage, routing-instance extraction
//!   (transitive closure of adjacency), referential complexity.
//! * [`table`] — the `(network, month)` case table: 28 metric values plus
//!   the health outcome (incident tickets, maintenance excluded).
//! * [`pipeline`] — end-to-end inference from a [`mpa_synth::Dataset`].

pub mod catalog;
pub mod changes;
pub mod design;
pub mod events;
pub mod pipeline;
pub mod table;

pub use catalog::{Metric, MetricCategory, N_METRICS};
pub use changes::{replay_device_changes, DeviceChange};
pub use events::{group_events, ChangeEvent, DELTA_DEFAULT_MINUTES};
pub use pipeline::{
    infer, infer_case_table, infer_with_mode, InferMode, Inference, NetworkInferCtx,
};
pub use table::{Case, CaseTable};
