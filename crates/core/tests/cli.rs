//! End-to-end tests of the `mpa-cli` binary: generate → infer → analyze →
//! predict on real files in a temp directory, plus the observability
//! contract: strict flag validation (exit 2), well-formed `--obs-out` run
//! reports, and counter totals that do not depend on the thread count.

use serde::Value;
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpa-cli"))
}

/// Look up a key in a JSON object (panics with context on a miss — these
/// are assertions about the report shape, not recoverable errors).
fn get<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.as_object()
        .unwrap_or_else(|| panic!("expected object, found {}", v.kind()))
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing key {key:?}"))
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Num(serde::Number::U64(n)) => *n,
        Value::Num(serde::Number::I64(n)) => u64::try_from(*n).expect("non-negative"),
        other => panic!("expected unsigned integer, found {}", other.kind()),
    }
}

/// Collect every span label in the report's span forest, depth first.
fn span_labels(spans: &Value, out: &mut Vec<String>) {
    for span in spans.as_array().expect("spans array") {
        if let Value::String(label) = get(span, "label") {
            out.push(label.clone());
        }
        span_labels(get(span, "children"), out);
    }
}

fn read_report(path: &PathBuf) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpa-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn full_pipeline_via_files() {
    let dataset = tmp("dataset.json");
    let table = tmp("table.json");

    let out = cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dataset.exists());

    let out = cli()
        .args([
            "infer",
            "--dataset",
            dataset.to_str().unwrap(),
            "--out",
            table.to_str().unwrap(),
        ])
        .output()
        .expect("run infer");
    assert!(out.status.success(), "infer failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(table.exists());

    let out = cli()
        .args(["analyze", "--table", table.to_str().unwrap(), "--causal-top", "2"])
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "analyze failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dependence analysis"), "{text}");
    assert!(text.contains("causal analysis"), "{text}");
    assert!(text.contains("No. of"), "practice names expected: {text}");

    let out = cli()
        .args(["predict", "--table", table.to_str().unwrap(), "--classes", "2"])
        .output()
        .expect("run predict");
    assert!(out.status.success(), "predict failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("health prediction"), "{text}");
    assert!(text.contains("Majority"), "{text}");
    assert!(text.contains("decision tree"), "{text}");
}

#[test]
fn custom_delta_changes_inference() {
    let dataset = tmp("dataset-delta.json");
    let t5 = tmp("table-d5.json");
    let t30 = tmp("table-d30.json");

    assert!(cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .status()
        .expect("generate")
        .success());
    for (delta, path) in [("5", &t5), ("30", &t30)] {
        assert!(cli()
            .args([
                "infer",
                "--dataset",
                dataset.to_str().unwrap(),
                "--delta",
                delta,
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .expect("infer")
            .success());
    }
    let a = std::fs::read_to_string(&t5).unwrap();
    let b = std::fs::read_to_string(&t30).unwrap();
    assert_ne!(a, b, "different δ must yield different event metrics");
}

#[test]
fn missing_arguments_fail_cleanly() {
    let out = cli().output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = cli().args(["analyze"]).output().expect("run analyze without table");
    assert!(!out.status.success());

    let out = cli().args(["frobnicate"]).output().expect("unknown command");
    assert!(!out.status.success());
}

#[test]
fn invalid_flag_values_are_rejected_with_exit_2() {
    // Regression: these used to fall back to defaults silently (e.g.
    // `--seed abc` generated the default-seed dataset). Each must now fail
    // fast with exit code 2 and name the offending flag on stderr.
    let cases: &[(&[&str], &str)] = &[
        (&["generate", "--scale", "tiny", "--seed", "abc"], "--seed"),
        (&["infer", "--delta", "ten"], "--delta"),
        (&["infer", "--infer-mode", "turbo"], "--infer-mode"),
        (&["analyze", "--causal-top", "-1"], "--causal-top"),
        (&["report", "--threads", "1.5"], "--threads"),
        (&["predict", "--classes", "two"], "--classes"),
        (&["predict", "--classes", "3"], "--classes must be 2 or 5"),
        (&["predict", "--classes", "0"], "--classes must be 2 or 5"),
        // Malformed degradation specs: unknown knob, non-numeric rate,
        // rate outside [0, 1]. Each must exit 2 naming --degrade.
        (&["generate", "--scale", "tiny", "--degrade", "bogus=1"], "--degrade"),
        (&["generate", "--scale", "tiny", "--degrade", "miss=abc"], "--degrade"),
        (&["generate", "--scale", "tiny", "--degrade", "miss=2.0"], "--degrade"),
        (&["generate", "--scale", "tiny", "--degrade", "miss=NaN"], "--degrade"),
        // Scoping: --degrade is a generation-time knob. On any other
        // command it used to parse fine and silently do nothing; it must
        // now exit 2 naming the flag and the offending command.
        (&["infer", "--degrade", "light"], "--degrade"),
        (&["analyze", "--degrade", "light"], "--degrade"),
        (&["predict", "--degrade", "heavy"], "--degrade"),
        (&["report", "--degrade", "none"], "--degrade"),
        (&["infer", "--degrade", "light"], "generate"),
        // Same contract for --gen-mode: bad value, and a generation-time
        // knob appearing on a non-generate command.
        (&["generate", "--scale", "tiny", "--gen-mode", "turbo"], "--gen-mode"),
        (&["infer", "--gen-mode", "delta"], "--gen-mode"),
        (&["infer", "--gen-mode", "delta"], "generate"),
        (&["analyze", "--gen-mode", "full"], "--gen-mode"),
    ];
    for (args, needle) in cases {
        let out = cli().args(*args).output().expect("run cli");
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "args {args:?}: stderr {err:?} lacks {needle:?}");
    }
}

/// Generate a tiny dataset + case table once for the obs-report tests.
fn tiny_table(tag: &str) -> PathBuf {
    let dataset = tmp(&format!("{tag}-dataset.json"));
    let table = tmp(&format!("{tag}-table.json"));
    let out = cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = cli()
        .args(["infer", "--dataset", dataset.to_str().unwrap(), "--out", table.to_str().unwrap()])
        .output()
        .expect("run infer");
    assert!(out.status.success(), "infer failed: {}", String::from_utf8_lossy(&out.stderr));
    table
}

#[test]
fn obs_report_is_well_formed_and_cache_counters_balance() {
    let dataset = tmp("obs-dataset.json");
    let table = tmp("obs-table.json");
    let infer_obs = tmp("obs-infer-run.json");
    let report_obs = tmp("obs-report-run.json");

    let out = cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args([
            "infer",
            "--dataset",
            dataset.to_str().unwrap(),
            "--out",
            table.to_str().unwrap(),
            "--obs-out",
            infer_obs.to_str().unwrap(),
        ])
        .output()
        .expect("run infer");
    assert!(out.status.success(), "infer failed: {}", String::from_utf8_lossy(&out.stderr));

    // The infer run's report: the parse cache must account for every
    // snapshot it visited — hits + misses == visited, and work happened.
    let report = read_report(&infer_obs);
    let counters = get(&report, "counters");
    let visited = as_u64(get(counters, "parse_snapshots_visited"));
    let hits = as_u64(get(counters, "parse_cache_hits"));
    let misses = as_u64(get(counters, "parse_cache_misses"));
    assert!(visited > 0, "infer visited no snapshots");
    assert_eq!(hits + misses, visited, "cache accounting leak: {hits} + {misses} != {visited}");
    let mut labels = Vec::new();
    span_labels(get(&report, "spans"), &mut labels);
    assert!(labels.iter().any(|l| l == "infer"), "spans {labels:?} lack \"infer\"");

    // The report command's report: the span forest covers every phase, and
    // the envelope records the process vitals.
    let out = cli()
        .args([
            "report",
            "--table",
            table.to_str().unwrap(),
            "--causal-top",
            "2",
            "--obs-out",
            report_obs.to_str().unwrap(),
        ])
        .output()
        .expect("run report");
    assert!(out.status.success(), "report failed: {}", String::from_utf8_lossy(&out.stderr));
    let report = read_report(&report_obs);
    assert_eq!(as_u64(get(&report, "version")), 1);
    if std::path::Path::new("/proc/self/status").exists() {
        assert!(as_u64(get(&report, "peak_rss_bytes")) > 0);
    }
    let mut labels = Vec::new();
    span_labels(get(&report, "spans"), &mut labels);
    for phase in ["mi_ranking", "cmi_ranking", "causal", "predict"] {
        assert!(labels.iter().any(|l| l == phase), "spans {labels:?} lack {phase:?}");
    }
}

#[test]
fn infer_modes_agree_and_both_balance_the_parse_cache() {
    let dataset = tmp("modes-dataset.json");
    let out = cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));

    let mut tables: Vec<String> = Vec::new();
    for mode in ["full", "delta"] {
        let table = tmp(&format!("modes-table-{mode}.json"));
        let obs = tmp(&format!("modes-run-{mode}.json"));
        let out = cli()
            .args([
                "infer",
                "--dataset",
                dataset.to_str().unwrap(),
                "--infer-mode",
                mode,
                "--out",
                table.to_str().unwrap(),
                "--obs-out",
                obs.to_str().unwrap(),
            ])
            .output()
            .expect("run infer");
        assert!(
            out.status.success(),
            "infer --infer-mode {mode} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        tables.push(std::fs::read_to_string(&table).expect("read table"));

        // The cache invariant holds in *both* engines: every visited
        // snapshot is accounted as a hit or a miss, whichever path
        // analyzed it.
        let report = read_report(&obs);
        let counters = get(&report, "counters");
        let visited = as_u64(get(counters, "parse_snapshots_visited"));
        let hits = as_u64(get(counters, "parse_cache_hits"));
        let misses = as_u64(get(counters, "parse_cache_misses"));
        assert!(visited > 0, "{mode} mode visited no snapshots");
        assert_eq!(
            hits + misses,
            visited,
            "{mode} mode cache accounting leak: {hits} + {misses} != {visited}"
        );
        let full_parses = as_u64(get(counters, "infer_full_parses"));
        let reparsed = as_u64(get(counters, "infer_stanzas_reparsed"));
        match mode {
            "full" => assert!(full_parses > 0, "full mode must count its full parses"),
            _ => {
                assert_eq!(full_parses, 0, "delta mode must never full-parse");
                assert!(reparsed > 0, "delta mode must count reparsed stanzas");
            }
        }
    }
    assert_eq!(tables[0], tables[1], "case tables must be byte-identical across modes");
}

#[test]
fn gen_modes_agree_and_both_balance_the_render_cache() {
    // The delta-native generator and the full-render oracle must emit
    // byte-identical datasets, and the render-cache accounting must
    // balance in both engines: every chunk render is a cache hit or a
    // cache miss, never unaccounted.
    let mut datasets: Vec<String> = Vec::new();
    for mode in ["full", "delta"] {
        let dataset = tmp(&format!("gen-mode-dataset-{mode}.json"));
        let obs = tmp(&format!("gen-mode-run-{mode}.json"));
        let out = cli()
            .args([
                "generate",
                "--scale",
                "tiny",
                "--gen-mode",
                mode,
                "--out",
                dataset.to_str().unwrap(),
                "--obs-out",
                obs.to_str().unwrap(),
            ])
            .output()
            .expect("run generate");
        assert!(
            out.status.success(),
            "generate --gen-mode {mode} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        datasets.push(std::fs::read_to_string(&dataset).expect("read dataset"));

        let report = read_report(&obs);
        let counters = get(&report, "counters");
        let rendered = as_u64(get(counters, "gen_chunks_rendered"));
        let hits = as_u64(get(counters, "gen_render_cache_hits"));
        let misses = as_u64(get(counters, "gen_render_cache_misses"));
        assert_eq!(
            hits + misses,
            rendered,
            "{mode} mode render-cache accounting leak: {hits} + {misses} != {rendered}"
        );
        let splices = as_u64(get(counters, "gen_splice_ops"));
        let lines = as_u64(get(counters, "gen_lines_rendered"));
        let bytes = as_u64(get(counters, "gen_bytes_rendered"));
        match mode {
            "delta" => {
                assert!(rendered > 0, "delta mode renders through the chunk cache");
                assert!(misses > 0, "novel chunk text must miss the cache");
                assert!(hits > 0, "repeated chunk text must hit the cache");
                assert!(splices > 0 && lines > 0 && bytes > 0, "delta work counters must tick");
            }
            _ => {
                // The oracle renders whole documents: no chunk cache, no
                // splices — every gen_* counter stays untouched.
                for (name, v) in
                    [("rendered", rendered), ("splices", splices), ("lines", lines)]
                {
                    assert_eq!(v, 0, "full mode must not tick gen_{name}");
                }
            }
        }
    }
    assert_eq!(datasets[0], datasets[1], "datasets must be byte-identical across gen modes");
}

#[test]
fn counter_totals_do_not_depend_on_thread_count() {
    let table = tiny_table("invariance");
    let mut snapshots: Vec<(String, Value)> = Vec::new();
    for threads in ["1", "2", "8"] {
        let obs = tmp(&format!("invariance-run-{threads}.json"));
        let out = cli()
            .args([
                "report",
                "--table",
                table.to_str().unwrap(),
                "--causal-top",
                "2",
                "--threads",
                threads,
                "--obs-out",
                obs.to_str().unwrap(),
            ])
            .output()
            .expect("run report");
        assert!(
            out.status.success(),
            "report --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let report = read_report(&obs);
        snapshots.push((threads.to_string(), get(&report, "counters").clone()));
    }
    // The counter registry's contract: totals are a pure function of the
    // work, never of the scheduling. Timings and the scheduling section may
    // differ; the counters object must be identical at 1, 2 and 8 threads.
    let (ref_threads, reference) = &snapshots[0];
    for (threads, counters) in &snapshots[1..] {
        assert_eq!(
            counters, reference,
            "counter totals differ between --threads {ref_threads} and --threads {threads}"
        );
    }
}

#[test]
fn degraded_generate_reports_balanced_counters_and_coverage() {
    let dataset = tmp("degrade-dataset.json");
    let obs = tmp("degrade-run.json");
    let out = cli()
        .args([
            "generate",
            "--scale",
            "tiny",
            "--degrade",
            "light",
            "--out",
            dataset.to_str().unwrap(),
            "--obs-out",
            obs.to_str().unwrap(),
        ])
        .output()
        .expect("run degraded generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dataset.exists());

    // The degradation counters must account for every snapshot the
    // simulator produced: dropped + kept == generated, with real work on
    // both sides of the ledger.
    let report = read_report(&obs);
    let counters = get(&report, "counters");
    let generated = as_u64(get(counters, "degrade_snapshots_generated"));
    let dropped = as_u64(get(counters, "degrade_snapshots_dropped"));
    let kept = as_u64(get(counters, "degrade_snapshots_kept"));
    assert!(generated > 0, "degraded generate produced no snapshots");
    assert_eq!(dropped + kept, generated, "degrade accounting leak: {dropped} + {kept} != {generated}");
    assert!(kept > 0, "light degradation must keep most snapshots");
    let tickets = as_u64(get(counters, "degrade_tickets_generated"));
    let duplicated = as_u64(get(counters, "degrade_tickets_duplicated"));
    assert!(tickets > 0, "degraded generate produced no tickets");
    assert!(duplicated <= tickets, "more duplicates than source tickets");

    // The run report carries the scenario coverage scan: all four
    // dimensions present, the dialect dimension fully exercised.
    let coverage = get(&report, "coverage");
    for dim in ["dialect", "change_type", "stanza_kind", "degrade_knob"] {
        let items = get(coverage, dim)
            .as_object()
            .unwrap_or_else(|| panic!("coverage dimension {dim:?} is not an object"));
        assert!(!items.is_empty(), "coverage dimension {dim:?} is empty");
    }
    let dialects = get(coverage, "dialect").as_object().expect("dialect object");
    assert!(
        dialects.iter().all(|(_, v)| as_u64(v) > 0),
        "tiny corpus must exercise both dialects: {dialects:?}"
    );
}

#[test]
fn degraded_generate_is_deterministic_and_differs_from_pristine() {
    let pristine = tmp("degrade-det-pristine.json");
    let a = tmp("degrade-det-a.json");
    let b = tmp("degrade-det-b.json");
    for (extra, path) in [
        (None, &pristine),
        (Some("heavy"), &a),
        (Some("heavy"), &b),
    ] {
        let mut args = vec!["generate", "--scale", "tiny", "--out", path.to_str().unwrap()];
        if let Some(spec) = extra {
            args.extend(["--degrade", spec]);
        }
        let out = cli().args(&args).output().expect("run generate");
        assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    }
    let ja = std::fs::read_to_string(&a).unwrap();
    let jb = std::fs::read_to_string(&b).unwrap();
    assert_eq!(ja, jb, "same seed + same spec must produce the identical corpus");
    let jp = std::fs::read_to_string(&pristine).unwrap();
    assert_ne!(ja, jp, "heavy degradation must actually alter the corpus");
}

#[test]
fn seed_flag_changes_the_dataset() {
    let a = tmp("seed-a.json");
    let b = tmp("seed-b.json");
    for (seed, path) in [("1", &a), ("2", &b)] {
        assert!(cli()
            .args([
                "generate",
                "--scale",
                "tiny",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .expect("generate")
            .success());
    }
    let ja = std::fs::read_to_string(&a).unwrap();
    let jb = std::fs::read_to_string(&b).unwrap();
    assert_ne!(ja, jb);
}
