//! End-to-end tests of the `mpa-cli` binary: generate → infer → analyze →
//! predict on real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpa-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpa-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn full_pipeline_via_files() {
    let dataset = tmp("dataset.json");
    let table = tmp("table.json");

    let out = cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dataset.exists());

    let out = cli()
        .args([
            "infer",
            "--dataset",
            dataset.to_str().unwrap(),
            "--out",
            table.to_str().unwrap(),
        ])
        .output()
        .expect("run infer");
    assert!(out.status.success(), "infer failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(table.exists());

    let out = cli()
        .args(["analyze", "--table", table.to_str().unwrap(), "--causal-top", "2"])
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "analyze failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dependence analysis"), "{text}");
    assert!(text.contains("causal analysis"), "{text}");
    assert!(text.contains("No. of"), "practice names expected: {text}");

    let out = cli()
        .args(["predict", "--table", table.to_str().unwrap(), "--classes", "2"])
        .output()
        .expect("run predict");
    assert!(out.status.success(), "predict failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("health prediction"), "{text}");
    assert!(text.contains("Majority"), "{text}");
    assert!(text.contains("decision tree"), "{text}");
}

#[test]
fn custom_delta_changes_inference() {
    let dataset = tmp("dataset-delta.json");
    let t5 = tmp("table-d5.json");
    let t30 = tmp("table-d30.json");

    assert!(cli()
        .args(["generate", "--scale", "tiny", "--out", dataset.to_str().unwrap()])
        .status()
        .expect("generate")
        .success());
    for (delta, path) in [("5", &t5), ("30", &t30)] {
        assert!(cli()
            .args([
                "infer",
                "--dataset",
                dataset.to_str().unwrap(),
                "--delta",
                delta,
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .expect("infer")
            .success());
    }
    let a = std::fs::read_to_string(&t5).unwrap();
    let b = std::fs::read_to_string(&t30).unwrap();
    assert_ne!(a, b, "different δ must yield different event metrics");
}

#[test]
fn missing_arguments_fail_cleanly() {
    let out = cli().output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = cli().args(["analyze"]).output().expect("run analyze without table");
    assert!(!out.status.success());

    let out = cli().args(["frobnicate"]).output().expect("unknown command");
    assert!(!out.status.success());
}

#[test]
fn seed_flag_changes_the_dataset() {
    let a = tmp("seed-a.json");
    let b = tmp("seed-b.json");
    for (seed, path) in [("1", &a), ("2", &b)] {
        assert!(cli()
            .args([
                "generate",
                "--scale",
                "tiny",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .expect("generate")
            .success());
    }
    let ja = std::fs::read_to_string(&a).unwrap();
    let jb = std::fs::read_to_string(&b).unwrap();
    assert_ne!(ja, jb);
}
