//! Operator opinion vs. analytical evidence.
//!
//! The paper's motivating punchline (§1, §5.2.6, §9): "our causal analysis
//! uncovers some high impact practices that operators thought had a low
//! impact" — concretely, the ACL-change fraction is causal despite a
//! majority-low opinion, and the middlebox-change fraction ranks 23/28 by
//! MI despite a majority-high opinion. This module lines the survey up
//! against the MI ranking and causal results and classifies each practice's
//! verdict.

use crate::causal::{CausalAnalysis, CausalConfig};
use crate::dependence::MiEntry;
use mpa_metrics::Metric;
use mpa_synth::survey::{majority_opinion, ImpactOpinion, SurveyPractice, SurveyResponse};
use serde::{Deserialize, Serialize};

/// How opinion and evidence relate for one practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Agreement {
    /// Opinion and evidence point the same way.
    Agrees,
    /// Evidence contradicts the majority opinion.
    Contradicts,
    /// The analysis could not establish either way (e.g., imbalanced
    /// matching at every comparison point).
    Inconclusive,
}

/// Survey practice ↔ inferred metric mapping. `NumProtocols` maps to the L2
/// protocol count (the closest single metric; the survey question did not
/// distinguish layers).
pub fn survey_metric(p: SurveyPractice) -> Metric {
    match p {
        SurveyPractice::NumDevices => Metric::Devices,
        SurveyPractice::NumModels => Metric::Models,
        SurveyPractice::NumFirmwareVersions => Metric::FirmwareVersions,
        SurveyPractice::NumProtocols => Metric::L2Protocols,
        SurveyPractice::InterDeviceComplexity => Metric::InterComplexity,
        SurveyPractice::NumChangeEvents => Metric::ChangeEvents,
        SurveyPractice::AvgDevicesPerEvent => Metric::AvgDevicesPerEvent,
        SurveyPractice::FracMboxChange => Metric::FracMboxEvents,
        SurveyPractice::FracAutomated => Metric::FracAutomated,
        SurveyPractice::FracRouterChange => Metric::FracRouterEvents,
        SurveyPractice::FracAclChange => Metric::FracAclEvents,
    }
}

/// One practice's opinion-vs-evidence record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpinionEvidence {
    /// The surveyed practice.
    pub practice: SurveyPractice,
    /// The metric it maps to.
    pub metric: Metric,
    /// Majority survey opinion.
    pub majority: ImpactOpinion,
    /// Rank in the MI table (1-based), if present.
    pub mi_rank: usize,
    /// Whether causal analysis found an effect at the 1:2 point
    /// (`None` = the practice was not causally analyzed).
    pub causal: Option<bool>,
    /// Verdict.
    pub agreement: Agreement,
}

/// Line the survey up against the evidence.
///
/// Rules (conservative, favouring `Inconclusive`):
/// * majority High/Medium + (causal effect, or MI rank ≤ 10) → `Agrees`;
/// * majority High + MI rank > 15 and no causal effect → `Contradicts`
///   (the middlebox case);
/// * majority Low/No + causal effect → `Contradicts` (the ACL case);
/// * majority Low/No + no causal effect established + low MI → `Agrees`;
/// * otherwise `Inconclusive`.
pub fn compare_survey(
    responses: &[SurveyResponse],
    mi: &[MiEntry],
    causal: &[CausalAnalysis],
    config: &CausalConfig,
) -> Vec<OpinionEvidence> {
    SurveyPractice::ALL
        .iter()
        .map(|&practice| {
            let metric = survey_metric(practice);
            let majority = majority_opinion(responses, practice);
            let mi_rank = mi
                .iter()
                .position(|e| e.metric == metric)
                .map(|p| p + 1)
                .unwrap_or(usize::MAX);
            let causal_found = causal.iter().find(|a| a.metric == metric).map(|a| {
                a.low_bin_comparison().is_some_and(|c| c.causal(config))
            });

            let opined_high = matches!(majority, ImpactOpinion::High | ImpactOpinion::Medium);
            let evidence_high = causal_found == Some(true) || mi_rank <= 10;
            let evidence_low = causal_found != Some(true) && mi_rank > 15;

            let agreement = if opined_high && evidence_high {
                Agreement::Agrees
            } else if (opined_high && evidence_low)
                || (!opined_high && causal_found == Some(true))
            {
                Agreement::Contradicts
            } else if !opined_high && evidence_low {
                Agreement::Agrees
            } else {
                Agreement::Inconclusive
            };

            OpinionEvidence { practice, metric, majority, mi_rank, causal: causal_found, agreement }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::ComparisonResult;
    use mpa_stats::signtest::sign_test;
    use mpa_stats::BalanceCheck;
    use mpa_synth::survey::generate_survey;

    fn fake_mi(order: &[Metric]) -> Vec<MiEntry> {
        order
            .iter()
            .enumerate()
            .map(|(i, &metric)| MiEntry { metric, mi: 1.0 - i as f64 * 0.01 })
            .collect()
    }

    fn fake_causal(metric: Metric, significant: bool) -> CausalAnalysis {
        let sign = if significant {
            sign_test(100, 10, 400)
        } else {
            sign_test(100, 10, 110)
        };
        CausalAnalysis {
            metric,
            comparisons: vec![ComparisonResult {
                point: (1, 2),
                n_untreated: 1_000,
                n_treated: 500,
                n_pairs: 510,
                n_untreated_matched: 300,
                score_balance: Some(BalanceCheck { std_diff: 0.01, var_ratio: 1.0 }),
                n_imbalanced_covariates: 0,
                sign: Some(sign),
                matched_treated_ix: vec![],
                matched_untreated_ix: vec![],
                imbalanced: vec![],
            }],
        }
    }

    #[test]
    fn acl_contradiction_is_detected() {
        // Survey: ACL majority Low. Evidence: causal → Contradicts.
        let responses = generate_survey(42);
        let mut order: Vec<Metric> = Metric::ALL.to_vec();
        // Put FracAclEvents at rank 10.
        order.retain(|&m| m != Metric::FracAclEvents);
        order.insert(9, Metric::FracAclEvents);
        let mi = fake_mi(&order);
        let causal = vec![fake_causal(Metric::FracAclEvents, true)];
        let rows = compare_survey(&responses, &mi, &causal, &CausalConfig::default());
        let acl = rows.iter().find(|r| r.practice == SurveyPractice::FracAclChange).unwrap();
        assert_eq!(acl.majority, ImpactOpinion::Low);
        assert_eq!(acl.causal, Some(true));
        assert_eq!(acl.agreement, Agreement::Contradicts);
    }

    #[test]
    fn mbox_contradiction_is_detected() {
        // Survey: mbox majority High. Evidence: MI rank 23, no causal data.
        let responses = generate_survey(42);
        let mut order: Vec<Metric> = Metric::ALL.to_vec();
        order.retain(|&m| m != Metric::FracMboxEvents);
        order.insert(22, Metric::FracMboxEvents);
        let mi = fake_mi(&order);
        let rows = compare_survey(&responses, &mi, &[], &CausalConfig::default());
        let mbox = rows.iter().find(|r| r.practice == SurveyPractice::FracMboxChange).unwrap();
        assert_eq!(mbox.majority, ImpactOpinion::High);
        assert_eq!(mbox.mi_rank, 23);
        assert_eq!(mbox.agreement, Agreement::Contradicts);
    }

    #[test]
    fn change_events_agreement_is_detected() {
        // Survey: change events majority High. Evidence: rank 2 + causal.
        let responses = generate_survey(42);
        let mut order: Vec<Metric> = Metric::ALL.to_vec();
        order.retain(|&m| m != Metric::ChangeEvents);
        order.insert(1, Metric::ChangeEvents);
        let mi = fake_mi(&order);
        let causal = vec![fake_causal(Metric::ChangeEvents, true)];
        let rows = compare_survey(&responses, &mi, &causal, &CausalConfig::default());
        let ev = rows.iter().find(|r| r.practice == SurveyPractice::NumChangeEvents).unwrap();
        assert_eq!(ev.agreement, Agreement::Agrees);
    }

    #[test]
    fn every_surveyed_practice_gets_a_row() {
        let responses = generate_survey(42);
        let mi = fake_mi(&Metric::ALL);
        let rows = compare_survey(&responses, &mi, &[], &CausalConfig::default());
        assert_eq!(rows.len(), SurveyPractice::ALL.len());
    }

    #[test]
    fn survey_metric_mapping_is_injective() {
        let mut metrics: Vec<Metric> =
            SurveyPractice::ALL.iter().map(|&p| survey_metric(p)).collect();
        metrics.sort();
        metrics.dedup();
        assert_eq!(metrics.len(), SurveyPractice::ALL.len());
    }
}
