//! Resident analytics session: the library API behind `mpa-serve`.
//!
//! The batch pipeline is CLI-shaped — generate, infer, analyze and predict
//! each load their inputs, compute and exit. [`AnalyticsSession`] keeps the
//! whole chain resident instead: the dataset (inventory, delta-encoded
//! snapshot archive, ticket stream), the inferred case table, and the
//! derived products (MI ranking, causal comparisons, fitted predictor) live
//! in memory, answer queries in place, and absorb new snapshot/ticket
//! events incrementally.
//!
//! ## Ingest consistency model
//!
//! An [`IngestBatch`] is applied atomically: every event is validated
//! against the current state first (devices and networks must exist,
//! snapshot times must be non-decreasing per device — the archive's own
//! ordering contract), and only then is the dataset mutated. A rejected
//! batch leaves the session untouched.
//!
//! After application, only the networks an event touched are re-inferred —
//! [`mpa_metrics::NetworkInferCtx`] is the exact parallel unit of the batch
//! pipeline, and per-network inference reads nothing but the (grown)
//! dataset — so the updated case table is **byte-identical** to what a cold
//! batch run over the extended corpus would produce. The derived products
//! are recomputed from that table on the next [`Self::analytics`] call and
//! are therefore byte-identical too. This ingest-equals-batch property is
//! golden- and property-tested (serve test suite and the facade's
//! `serve_session` tests).

use crate::causal::{analyze_treatment, CausalAnalysis, CausalConfig};
use crate::dependence::{mi_ranking, MiEntry};
use crate::predict::{
    class_distribution, train, FeatureEncoder, HealthClasses, ModelKind, TrainedModel,
};
use mpa_config::{ConfigError, Snapshot};
use mpa_learn::Classifier;
use mpa_metrics::{Case, CaseTable, InferMode, Metric, NetworkInferCtx, DELTA_DEFAULT_MINUTES};
use mpa_model::{DeviceId, NetworkId, Ticket};
use mpa_synth::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tunables of a session; the defaults mirror the CLI's.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Event-grouping window δ in minutes.
    pub delta_minutes: u64,
    /// Inference engine (delta-native by default).
    pub mode: InferMode,
    /// How many top-MI practices the causal summary covers.
    pub causal_top: usize,
    /// Health-class granularity of the resident predictor.
    pub classes: HealthClasses,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            delta_minutes: DELTA_DEFAULT_MINUTES,
            mode: InferMode::default(),
            causal_top: 5,
            classes: HealthClasses::Two,
        }
    }
}

/// One batch of online events. Snapshots are applied before tickets; the
/// two streams are independent inputs to inference, so their relative
/// order cannot affect the resulting case table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IngestBatch {
    /// Configuration snapshots, non-decreasing in time per device.
    pub snapshots: Vec<Snapshot>,
    /// Trouble tickets.
    pub tickets: Vec<Ticket>,
}

impl IngestBatch {
    /// Total events in the batch.
    pub fn len(&self) -> usize {
        self.snapshots.len() + self.tickets.len()
    }

    /// Whether the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why a batch was rejected (no partial application took place).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// A snapshot names a device the inventory does not know.
    UnknownDevice(DeviceId),
    /// A ticket names a network the organization does not have.
    UnknownNetwork(NetworkId),
    /// A snapshot is older than the device's newest archived snapshot
    /// (or than an earlier snapshot in the same batch).
    OutOfOrder(DeviceId),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            IngestError::UnknownNetwork(n) => write!(f, "unknown network {n}"),
            IngestError::OutOfOrder(d) => {
                write!(f, "snapshot for device {d} is out of order (time went backwards)")
            }
        }
    }
}

/// What an accepted batch did to the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Snapshots appended to the archive.
    pub snapshots: usize,
    /// Tickets appended to the stream.
    pub tickets: usize,
    /// Networks whose case rows were re-inferred.
    pub networks_reinferred: usize,
}

/// One row of the causal summary: a top-MI practice and its
/// quasi-experimental comparison.
#[derive(Debug, Clone)]
pub struct CausalRow {
    /// The treatment practice.
    pub metric: Metric,
    /// The matched-comparison analysis for that treatment.
    pub analysis: CausalAnalysis,
}

/// Products derived from the case table: recomputed (lazily) after every
/// accepted ingest batch, so they always equal what a cold batch run over
/// the current corpus would compute.
pub struct Analytics {
    /// MI ranking of all practices (the Table 3 ordering).
    pub mi: Vec<MiEntry>,
    /// Causal comparisons for the top `causal_top` practices.
    pub causal: Vec<CausalRow>,
    /// The causal configuration the rows were computed with.
    pub causal_config: CausalConfig,
    /// Feature encoder fitted on the current table.
    pub encoder: FeatureEncoder,
    /// Decision tree fitted on the current table.
    pub model: TrainedModel,
    /// Cases per health class in the current table.
    pub distribution: Vec<usize>,
}

/// A prediction for one existing case, from the resident model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasePrediction {
    /// Predicted class index.
    pub predicted: u8,
    /// Predicted class name.
    pub predicted_name: &'static str,
    /// Actual class index (from the case's ticket count).
    pub actual: u8,
    /// Actual class name.
    pub actual_name: &'static str,
}

/// The resident analytics state — see the module docs.
pub struct AnalyticsSession {
    dataset: Dataset,
    config: SessionConfig,
    /// Case rows per network, parallel to `dataset.networks`. The flat
    /// table is their concatenation in that order — exactly the batch
    /// pipeline's merge order, which is what makes per-network replacement
    /// byte-equivalent to a cold run.
    per_network: Vec<Vec<Case>>,
    table: CaseTable,
    /// Device → index into `dataset.networks`.
    device_network: BTreeMap<DeviceId, usize>,
    /// Network id → index into `dataset.networks`.
    network_index: BTreeMap<NetworkId, usize>,
    events_applied: u64,
    analytics: Option<Analytics>,
}

impl AnalyticsSession {
    /// Build a session by running batch inference over `dataset`.
    pub fn new(dataset: Dataset, config: SessionConfig) -> Self {
        let inference =
            mpa_metrics::infer_with_mode(&dataset, config.delta_minutes, config.mode);

        let mut device_network = BTreeMap::new();
        let mut network_index = BTreeMap::new();
        for (ix, net) in dataset.networks.iter().enumerate() {
            network_index.insert(net.id, ix);
            for dev in &net.devices {
                device_network.insert(dev.id, ix);
            }
        }

        // Split the flat table into per-network blocks. Batch inference
        // concatenates each network's rows in `dataset.networks` order, so
        // the blocks are contiguous runs.
        let cases = inference.table.cases();
        let mut per_network: Vec<Vec<Case>> = Vec::with_capacity(dataset.networks.len());
        let mut i = 0;
        for net in &dataset.networks {
            let start = i;
            while i < cases.len() && cases[i].network == net.id {
                i += 1;
            }
            per_network.push(cases[start..i].to_vec());
        }
        debug_assert_eq!(i, cases.len(), "cases not grouped by network order");

        let mut session = Self {
            dataset,
            config,
            per_network,
            table: inference.table,
            device_network,
            network_index,
            events_applied: 0,
            analytics: None,
        };
        session.refresh();
        session
    }

    /// The resident dataset (grown by every accepted ingest batch).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The current case table.
    pub fn table(&self) -> &CaseTable {
        &self.table
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Events applied since the session was built.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// The case rows of one network, or `None` for an unknown network id.
    pub fn network_cases(&self, id: NetworkId) -> Option<&[Case]> {
        self.network_index.get(&id).map(|&ix| self.per_network[ix].as_slice())
    }

    /// Derived analytics, recomputing them if an ingest invalidated the
    /// cache.
    pub fn analytics(&mut self) -> &Analytics {
        self.refresh();
        self.analytics.as_ref().expect("refresh() populates analytics")
    }

    /// Derived analytics if currently materialized. `mpa-serve` refreshes
    /// eagerly after every ingest batch (under its write lock), so its read
    /// paths always find `Some`.
    pub fn analytics_cached(&self) -> Option<&Analytics> {
        self.analytics.as_ref()
    }

    /// Recompute the derived products if stale.
    pub fn refresh(&mut self) {
        if self.analytics.is_some() {
            return;
        }
        let cfg = &self.config;
        let mi = mi_ranking(&self.table, 20);
        let causal_config = CausalConfig::default();
        let top: Vec<&MiEntry> = mi.iter().take(cfg.causal_top).collect();
        // Matching is independent per treatment; fan out like `analyze`.
        let analyses = mpa_exec::par_map(&top, |_, e| {
            analyze_treatment(&self.table, e.metric, &causal_config)
        });
        let causal = top
            .iter()
            .zip(analyses)
            .map(|(e, analysis)| CausalRow { metric: e.metric, analysis })
            .collect();
        let encoder = FeatureEncoder::fit(&self.table, cfg.classes);
        let model = train(ModelKind::Dt, &encoder.encode(&self.table), cfg.classes);
        let distribution = class_distribution(&self.table, cfg.classes);
        self.analytics =
            Some(Analytics { mi, causal, causal_config, encoder, model, distribution });
    }

    /// Predict the health class of an existing `(network, month)` case with
    /// the resident model. `None` when the case is not in the table (the
    /// month was not logged) or analytics are stale.
    pub fn predict_case(&self, network: NetworkId, month: usize) -> Option<CasePrediction> {
        let analytics = self.analytics.as_ref()?;
        let case = self
            .network_cases(network)?
            .iter()
            .find(|c| c.month == month)?;
        let single = CaseTable::new(vec![case.clone()]);
        let set = analytics.encoder.encode(&single);
        let inst = set.instances().first()?;
        let predicted = analytics.model.predict(&inst.features);
        let names = self.config.classes.names();
        Some(CasePrediction {
            predicted,
            predicted_name: names[predicted as usize],
            actual: inst.label,
            actual_name: names[inst.label as usize],
        })
    }

    /// Validate and apply one event batch — atomic: on `Err` the session is
    /// unchanged. On success the touched networks are re-inferred and the
    /// derived analytics cache is invalidated.
    pub fn ingest(&mut self, batch: IngestBatch) -> Result<IngestOutcome, IngestError> {
        // Validate everything before mutating anything. The only push-time
        // failure the archive knows is time going backwards per device, so
        // pre-checking tips (plus within-batch order) makes `push` below
        // infallible.
        let mut batch_tip: BTreeMap<DeviceId, mpa_model::Timestamp> = BTreeMap::new();
        for snap in &batch.snapshots {
            let dev = snap.meta.device;
            if !self.device_network.contains_key(&dev) {
                return Err(IngestError::UnknownDevice(dev));
            }
            let archived_tip = self.dataset.archive.device_metas(dev).last().map(|m| m.time);
            let tip = batch_tip.get(&dev).copied().or(archived_tip);
            if tip.is_some_and(|t| snap.meta.time < t) {
                return Err(IngestError::OutOfOrder(dev));
            }
            batch_tip.insert(dev, snap.meta.time);
        }
        for ticket in &batch.tickets {
            if !self.network_index.contains_key(&ticket.network) {
                return Err(IngestError::UnknownNetwork(ticket.network));
            }
        }

        // Apply. Interning appends new lines to the archive's table in
        // arrival order — the same order a batch load of the extended
        // corpus would intern them in.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        let n_snapshots = batch.snapshots.len();
        let n_tickets = batch.tickets.len();
        for snap in batch.snapshots {
            // mpa-lint: allow(R7) -- the validation pass above rejected unknown devices before any mutation
            let ix = self.device_network[&snap.meta.device];
            match self.dataset.archive.push(snap) {
                Ok(()) => {}
                Err(ConfigError::OutOfOrderSnapshot { device }) => {
                    // mpa-lint: allow(R7) -- the validation pass above checked per-device time order
                    unreachable!("pre-validated snapshot order for device {device}")
                }
                // mpa-lint: allow(R7) -- OutOfOrderSnapshot is the only error push can produce
                Err(e) => unreachable!("archive push cannot fail here: {e:?}"),
            }
            dirty.insert(ix);
        }
        for ticket in batch.tickets {
            // mpa-lint: allow(R7) -- the validation pass above rejected unknown networks before any mutation
            dirty.insert(self.network_index[&ticket.network]);
            self.dataset.tickets.push(ticket);
        }
        self.events_applied += (n_snapshots + n_tickets) as u64;

        // Re-infer only the touched networks, against a context rebuilt
        // from the grown dataset (ticket counts and line classes are pure
        // functions of it). Each call reproduces exactly the rows a cold
        // batch run over the extended corpus would emit for that network.
        let ctx =
            NetworkInferCtx::new(&self.dataset, self.config.delta_minutes, self.config.mode);
        for &ix in &dirty {
            let (_, cases, _) = ctx.infer_network(&self.dataset, &self.dataset.networks[ix]);
            self.per_network[ix] = cases;
        }
        mpa_obs::counters::SERVE_NETWORKS_REINFERRED.add(dirty.len() as u64);

        // Rebuild the flat table in network order and invalidate the
        // derived products.
        let flat: Vec<Case> = self.per_network.iter().flatten().cloned().collect();
        self.table = CaseTable::new(flat);
        self.analytics = None;

        Ok(IngestOutcome {
            snapshots: n_snapshots,
            tickets: n_tickets,
            networks_reinferred: dirty.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_config::{Login, SnapshotMeta};
    use mpa_model::{Timestamp, TicketId, TicketKind, TicketSeverity};
    use mpa_synth::Scenario;

    fn tiny_session() -> AnalyticsSession {
        AnalyticsSession::new(Scenario::tiny().generate(), SessionConfig::default())
    }

    /// A snapshot that re-states a device's latest config with one appended
    /// comment line, one minute after its newest snapshot.
    fn next_snapshot(ds: &Dataset, dev: DeviceId) -> Snapshot {
        let metas = ds.archive.device_metas(dev);
        let last = metas.last().expect("device has history");
        let mut text = ds
            .archive
            .latest_at(dev, last.time)
            .expect("tip snapshot exists")
            .text;
        text.push_str("! ingest-probe\n");
        Snapshot {
            meta: SnapshotMeta {
                device: dev,
                time: Timestamp(last.time.0 + 1),
                login: Login::new("alice"),
            },
            text,
        }
    }

    #[test]
    fn session_matches_cold_batch_at_startup() {
        let ds = Scenario::tiny().generate();
        let batch = mpa_metrics::infer_case_table(&ds);
        let session = AnalyticsSession::new(ds, SessionConfig::default());
        assert_eq!(session.table(), &batch);
    }

    #[test]
    fn ingest_equals_cold_batch_over_extended_corpus() {
        let mut session = tiny_session();
        let dev = session.dataset().networks[0].devices[0].id;
        let snap = next_snapshot(session.dataset(), dev);
        let ticket = Ticket {
            id: TicketId(900_000),
            network: session.dataset().networks[1].id,
            kind: TicketKind::UserReport,
            opened: session.dataset().period.month_start(1),
            resolved: None,
            devices: vec![],
            severity: TicketSeverity::Medium,
            symptom: "probe".into(),
        };

        // Cold batch: same events applied to a clone of the base dataset,
        // then full inference from scratch.
        let mut extended = session.dataset().clone();
        extended.archive.push(snap.clone()).expect("in order");
        extended.tickets.push(ticket.clone());

        let outcome = session
            .ingest(IngestBatch { snapshots: vec![snap], tickets: vec![ticket] })
            .expect("valid batch");
        assert_eq!(outcome.snapshots, 1);
        assert_eq!(outcome.tickets, 1);
        assert_eq!(outcome.networks_reinferred, 2);
        assert_eq!(session.events_applied(), 2);

        let cold = AnalyticsSession::new(extended, SessionConfig::default());
        assert_eq!(session.table(), cold.table(), "incremental != cold batch");
        let (a, b) = (session.analytics(), cold.analytics_cached().expect("fresh"));
        assert_eq!(format!("{:?}", a.mi), format!("{:?}", b.mi));
        assert_eq!(a.distribution, b.distribution);
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let mut session = tiny_session();
        let before = session.table().n_cases();
        let dev = session.dataset().networks[0].devices[0].id;
        let good = next_snapshot(session.dataset(), dev);
        let mut stale = good.clone();
        stale.meta.time = Timestamp(0);

        // Unknown device.
        let mut bogus = good.clone();
        bogus.meta.device = DeviceId(u32::MAX);
        let err = session
            .ingest(IngestBatch { snapshots: vec![good.clone(), bogus], tickets: vec![] })
            .expect_err("unknown device");
        assert_eq!(err, IngestError::UnknownDevice(DeviceId(u32::MAX)));

        // Out-of-order snapshot.
        let err = session
            .ingest(IngestBatch { snapshots: vec![stale], tickets: vec![] })
            .expect_err("stale snapshot");
        assert_eq!(err, IngestError::OutOfOrder(dev));

        // Unknown network on a ticket.
        let ticket = Ticket {
            id: TicketId(1),
            network: NetworkId(u32::MAX),
            kind: TicketKind::MonitoringAlarm,
            opened: Timestamp(1),
            resolved: None,
            devices: vec![],
            severity: TicketSeverity::Low,
            symptom: "x".into(),
        };
        let err = session
            .ingest(IngestBatch { snapshots: vec![good], tickets: vec![ticket] })
            .expect_err("unknown network");
        assert_eq!(err, IngestError::UnknownNetwork(NetworkId(u32::MAX)));

        // Atomicity: nothing above may have mutated the session. The `good`
        // snapshot rode along in two rejected batches and must not have
        // been applied.
        assert_eq!(session.events_applied(), 0);
        assert_eq!(session.table().n_cases(), before);
        let again = next_snapshot(session.dataset(), dev);
        session
            .ingest(IngestBatch { snapshots: vec![again], tickets: vec![] })
            .expect("session still consistent");
    }

    #[test]
    fn predictions_come_from_the_resident_model() {
        let mut session = tiny_session();
        session.refresh();
        let case = session.table().cases()[0].clone();
        let p = session.predict_case(case.network, case.month).expect("case exists");
        let names = session.config().classes.names();
        assert!(names.contains(&p.predicted_name));
        assert!(names.contains(&p.actual_name));
        assert!(session.predict_case(NetworkId(u32::MAX), 0).is_none());
    }
}
