//! # mpa-core — the Management Plane Analytics framework
//!
//! The paper's two goals (§4), built on the workspace substrates:
//!
//! 1. **Which practices impact health?**
//!    * [`dependence`] — statistical dependence via mutual information
//!      (Table 3) and conditional mutual information between practice pairs
//!      (Table 4), on the §5.1.1 binning.
//!    * [`causal`] — the quasi-experimental design of §5.2: treatment
//!      binning, propensity-score estimation, k=1 nearest-neighbour
//!      matching with replacement, balance verification, and the sign test
//!      (Tables 5–8, Figure 7).
//! 2. **Predict health from practices** — [`predict`]: 2-class and 5-class
//!    health models (C4.5 / AdaBoost / oversampling, §6.1, Figures 8–10),
//!    baselines (majority, SVM, random forests), 5-fold cross-validation and
//!    the online month-ahead evaluation (Table 9).
//!
//! Plus [`compare`] (operator opinion vs. analytical evidence — the paper's
//! headline contradictions) and [`report`] (plain-text table rendering used
//! by the reproduction harness).

pub mod causal;
pub mod compare;
pub mod dependence;
pub mod predict;
pub mod report;
pub mod session;

/// The deterministic data-parallel execution engine (re-export of
/// [`mpa_exec`]): worker-thread configuration, order-preserving parallel
/// maps and per-stream RNG seed derivation.
pub mod exec {
    pub use mpa_exec::*;
}

pub use causal::{analyze_treatment, CausalAnalysis, CausalConfig, ComparisonResult};
pub use compare::{compare_survey, Agreement, OpinionEvidence};
pub use dependence::{cmi_ranking, mi_ranking, CmiEntry, MiEntry};
pub use predict::{
    build_learnset, cross_validation, online_accuracy, HealthClasses, ModelKind,
};
pub use report::TextTable;
pub use session::{
    Analytics, AnalyticsSession, CausalRow, IngestBatch, IngestError, IngestOutcome,
    SessionConfig,
};
