//! Predicting network health from management practices (§6).
//!
//! Metrics are binned into 5 equal-width bins (§5.1.1's strategy, but 5
//! bins because "the amount of data we have is insufficient to accurately
//! learn fine-grained models"); health becomes either 2 classes (healthy =
//! ≤1 tickets) or 5 classes (excellent ≤2, good 3–5, moderate 6–8, poor
//! 9–11, very poor ≥12). Models: C4.5 decision trees, optionally with
//! AdaBoost (15 iterations) and/or the paper's oversampling rule, plus the
//! baselines (majority, linear SVM, random forests).
//!
//! Two evaluations mirror the paper:
//! * [`cross_validation`] — 5-fold CV over all cases (§6.1's 91.6% / 81.1%).
//! * [`online_accuracy`] — train on months `t−M … t−1`, predict month `t`,
//!   averaged over `t` (Table 9's 89% / 76–78%).

use mpa_learn::boost::BoostConfig;
use mpa_learn::forest::ForestConfig;
use mpa_learn::sampling::{oversample_2class, oversample_5class};
use mpa_learn::svm::SvmConfig;
use mpa_learn::{
    cross_validate, evaluate, AdaBoost, Classifier, DecisionTree, Evaluation, ForestVariant,
    Instance, LearnSet, LinearSvm, MajorityClassifier, RandomForest,
};
use mpa_metrics::{CaseTable, Metric};
use mpa_stats::Binner;
use serde::{Deserialize, Serialize};

/// Bins per feature for learning (§6.1).
pub const LEARN_BINS: usize = 5;

/// Health class granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthClasses {
    /// Healthy (≤1 tickets) vs unhealthy.
    Two,
    /// Excellent / good / moderate / poor / very poor.
    Five,
}

impl HealthClasses {
    /// Number of classes.
    pub fn n(self) -> u8 {
        match self {
            HealthClasses::Two => 2,
            HealthClasses::Five => 5,
        }
    }

    /// Class label for a monthly ticket count.
    pub fn label(self, tickets: f64) -> u8 {
        match self {
            HealthClasses::Two => u8::from(tickets > 1.0),
            HealthClasses::Five => match tickets as u64 {
                0..=2 => 0,
                3..=5 => 1,
                6..=8 => 2,
                9..=11 => 3,
                _ => 4,
            },
        }
    }

    /// Class names, for reports and tree rendering.
    pub fn names(self) -> &'static [&'static str] {
        match self {
            HealthClasses::Two => &["healthy", "unhealthy"],
            HealthClasses::Five => &["excellent", "good", "moderate", "poor", "very poor"],
        }
    }
}

/// Which model family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Plain pruned C4.5 tree ("DT").
    Dt,
    /// Tree with AdaBoost ("DT+AB").
    DtAb,
    /// Tree with oversampling ("DT+OS").
    DtOs,
    /// Tree with both ("DT+AB+OS").
    DtAbOs,
    /// Majority-class baseline.
    Majority,
    /// Linear SVM baseline.
    Svm,
    /// Random forest of the given variant (footnote 2).
    Forest(ForestVariant),
}

impl ModelKind {
    /// The figure-8 model ladder, in presentation order.
    pub const LADDER: [ModelKind; 4] =
        [ModelKind::Dt, ModelKind::DtAb, ModelKind::DtOs, ModelKind::DtAbOs];

    /// Short label ("DT+AB+OS", ...).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Dt => "DT",
            ModelKind::DtAb => "DT+AB",
            ModelKind::DtOs => "DT+OS",
            ModelKind::DtAbOs => "DT+AB+OS",
            ModelKind::Majority => "Majority",
            ModelKind::Svm => "SVM",
            ModelKind::Forest(ForestVariant::Plain) => "RF",
            ModelKind::Forest(ForestVariant::Balanced) => "RF-balanced",
            ModelKind::Forest(ForestVariant::Weighted) => "RF-weighted",
        }
    }
}

/// Fitted per-metric binners, reusable to encode unseen cases (online
/// prediction encodes the test month with the *training* months' binners).
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    binners: Vec<Binner>,
    classes: HealthClasses,
}

impl FeatureEncoder {
    /// Fit binners on a table.
    pub fn fit(table: &CaseTable, classes: HealthClasses) -> Self {
        let binners =
            Metric::ALL.iter().map(|&m| Binner::fit(&table.column(m), LEARN_BINS)).collect();
        Self { binners, classes }
    }

    /// Encode a table into a learn set using these binners.
    pub fn encode(&self, table: &CaseTable) -> LearnSet {
        let instances = table
            .cases()
            .iter()
            .map(|c| Instance {
                features: c
                    .values
                    .iter()
                    .zip(&self.binners)
                    .map(|(&v, b)| b.bin(v) as u8)
                    .collect(),
                label: self.classes.label(c.tickets),
                weight: 1.0,
            })
            .collect();
        LearnSet::new(instances, vec![LEARN_BINS as u8; Metric::ALL.len()], self.classes.n())
    }
}

/// Build the learn set for a table (binners fit on the same table).
pub fn build_learnset(table: &CaseTable, classes: HealthClasses) -> LearnSet {
    FeatureEncoder::fit(table, classes).encode(table)
}

/// A trained model behind a uniform interface.
pub enum TrainedModel {
    /// Plain or boosted-final tree.
    Tree(DecisionTree),
    /// Boosted model.
    Boost(AdaBoost),
    /// Majority baseline.
    Majority(MajorityClassifier),
    /// SVM baseline.
    Svm(LinearSvm),
    /// Random forest.
    Forest(RandomForest),
}

impl Classifier for TrainedModel {
    fn predict(&self, features: &[u8]) -> u8 {
        match self {
            TrainedModel::Tree(m) => m.predict(features),
            TrainedModel::Boost(m) => m.predict(features),
            TrainedModel::Majority(m) => m.predict(features),
            TrainedModel::Svm(m) => m.predict(features),
            TrainedModel::Forest(m) => m.predict(features),
        }
    }
}

/// Apply the paper's oversampling rule for the class granularity.
fn maybe_oversample(set: &LearnSet, kind: ModelKind, classes: HealthClasses) -> LearnSet {
    match kind {
        ModelKind::DtOs | ModelKind::DtAbOs => match classes {
            HealthClasses::Two => oversample_2class(set),
            HealthClasses::Five => oversample_5class(set),
        },
        _ => set.clone(),
    }
}

/// Train one model on a (training) learn set.
pub fn train(kind: ModelKind, set: &LearnSet, classes: HealthClasses) -> TrainedModel {
    let set = maybe_oversample(set, kind, classes);
    match kind {
        ModelKind::Dt | ModelKind::DtOs => TrainedModel::Tree(DecisionTree::fit_default(&set)),
        ModelKind::DtAb | ModelKind::DtAbOs => {
            // SAMME ensemble vote. The paper describes building the final
            // tree from the last iteration's weights; with a base learner as
            // strong as a fully-grown C4.5 on this data, that variant
            // degenerates (the final weights concentrate on residual noise),
            // so the prediction pipeline uses the conventional ensemble,
            // which reproduces the paper's *reported* behaviour — AdaBoost
            // as a modest improvement. `BoostMode::LastTree` remains
            // available in `mpa-learn` for the literal variant.
            TrainedModel::Boost(AdaBoost::fit(
                &set,
                BoostConfig { mode: mpa_learn::BoostMode::Ensemble, ..BoostConfig::default() },
            ))
        }
        ModelKind::Majority => TrainedModel::Majority(MajorityClassifier::fit(&set)),
        ModelKind::Svm => TrainedModel::Svm(LinearSvm::fit(
            &set,
            SvmConfig { iterations: 30_000, ..SvmConfig::default() },
        )),
        ModelKind::Forest(variant) => {
            TrainedModel::Forest(RandomForest::fit(&set, ForestConfig { variant, ..ForestConfig::default() }))
        }
    }
}

/// 5-fold cross-validation of a model kind (oversampling applied to
/// training folds only, as it must be).
pub fn cross_validation(
    table: &CaseTable,
    classes: HealthClasses,
    kind: ModelKind,
    seed: u64,
) -> Evaluation {
    let set = build_learnset(table, classes);
    cross_validate(&set, 5, seed, |train_fold| train(kind, train_fold, classes))
}

/// Online prediction (Table 9): for each month `t` with at least `history`
/// prior months, train on months `t−history … t−1` and predict month `t`.
/// Returns the mean per-month accuracy and the merged evaluation.
pub fn online_accuracy(
    table: &CaseTable,
    classes: HealthClasses,
    kind: ModelKind,
    history: usize,
) -> (f64, Evaluation) {
    assert!(history >= 1, "need at least one month of history");
    let months = table.months();
    let mut merged = Evaluation::new(classes.n());
    let mut accuracies = Vec::new();
    for &t in &months {
        if t < history {
            continue;
        }
        let train_table = table.slice_months(t - history, t);
        let test_table = table.slice_months(t, t + 1);
        if train_table.n_cases() < 50 || test_table.n_cases() < 10 {
            continue;
        }
        let encoder = FeatureEncoder::fit(&train_table, classes);
        let train_set = encoder.encode(&train_table);
        let test_set = encoder.encode(&test_table);
        let model = train(kind, &train_set, classes);
        let ev = evaluate(&model, &test_set);
        accuracies.push(ev.accuracy());
        merged.merge(&ev);
    }
    let mean = if accuracies.is_empty() {
        0.0
    } else {
        accuracies.iter().sum::<f64>() / accuracies.len() as f64
    };
    (mean, merged)
}

/// Class distribution of a table under a granularity (Figure 9).
pub fn class_distribution(table: &CaseTable, classes: HealthClasses) -> Vec<usize> {
    let mut counts = vec![0usize; usize::from(classes.n())];
    for c in table.cases() {
        // mpa-lint: allow(R7) -- label() returns < classes.n(), the counts vec's length
        counts[usize::from(classes.label(c.tickets))] += 1;
    }
    counts
}

/// Train a tree (per the model kind) and render its top levels (Figure 10).
pub fn render_tree(
    table: &CaseTable,
    classes: HealthClasses,
    kind: ModelKind,
    depth: usize,
) -> String {
    let set = build_learnset(table, classes);
    let names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
    match train(kind, &set, classes) {
        TrainedModel::Tree(t) => t.render(depth, &names, classes.names()),
        TrainedModel::Boost(b) => b.final_tree().render(depth, &names, classes.names()),
        _ => "(model kind has no tree to render)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_metrics::catalog::N_METRICS;
    use mpa_metrics::Case;
    use mpa_model::NetworkId;
    use mpa_stats::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learnable_table(n: usize, seed: u64) -> CaseTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Sampler::new(&mut rng);
        let mut cases = Vec::new();
        for i in 0..n {
            let devices = s.log_normal(2.3, 0.9).clamp(2.0, 300.0);
            let events = (devices / 8.0 + s.log_normal(1.0, 0.6)).max(0.0);
            let lambda = 0.8 * (1.0 + devices / 8.0).ln().powi(2)
                + 0.8 * (1.0 + events / 5.0).ln();
            let noise = s.log_normal(0.0, 0.2);
            let tickets = s.poisson(lambda * noise) as f64;
            let mut values = vec![0.0; N_METRICS];
            values[Metric::Devices.index()] = devices;
            values[Metric::ChangeEvents.index()] = events;
            values[Metric::Vlans.index()] = s.uniform() * 20.0;
            cases.push(Case { network: NetworkId(i as u32), month: i % 8, values, tickets });
        }
        CaseTable::new(cases)
    }

    #[test]
    fn health_class_boundaries_match_the_paper() {
        let two = HealthClasses::Two;
        assert_eq!(two.label(0.0), 0);
        assert_eq!(two.label(1.0), 0);
        assert_eq!(two.label(2.0), 1);
        let five = HealthClasses::Five;
        assert_eq!(five.label(2.0), 0);
        assert_eq!(five.label(3.0), 1);
        assert_eq!(five.label(5.0), 1);
        assert_eq!(five.label(6.0), 2);
        assert_eq!(five.label(8.0), 2);
        assert_eq!(five.label(9.0), 3);
        assert_eq!(five.label(11.0), 3);
        assert_eq!(five.label(12.0), 4);
        assert_eq!(five.label(100.0), 4);
    }

    #[test]
    fn tree_beats_majority_in_cross_validation() {
        let table = learnable_table(3_000, 21);
        let dt = cross_validation(&table, HealthClasses::Two, ModelKind::Dt, 7);
        let maj = cross_validation(&table, HealthClasses::Two, ModelKind::Majority, 7);
        assert!(
            dt.accuracy() > maj.accuracy() + 0.05,
            "DT {} vs majority {}",
            dt.accuracy(),
            maj.accuracy()
        );
    }

    #[test]
    fn oversampling_improves_minority_recall() {
        let table = learnable_table(3_000, 22);
        let plain = cross_validation(&table, HealthClasses::Five, ModelKind::Dt, 7);
        let os = cross_validation(&table, HealthClasses::Five, ModelKind::DtOs, 7);
        // Intermediate classes (good/moderate) should gain recall.
        let mid_recall = |e: &Evaluation| (e.recall(1) + e.recall(2)) / 2.0;
        assert!(
            mid_recall(&os) >= mid_recall(&plain),
            "OS {} vs plain {}",
            mid_recall(&os),
            mid_recall(&plain)
        );
    }

    #[test]
    fn online_accuracy_runs_and_is_reasonable() {
        let table = learnable_table(3_000, 23);
        let (acc, ev) = online_accuracy(&table, HealthClasses::Two, ModelKind::Dt, 3);
        assert!(ev.n > 100, "evaluated {} cases", ev.n);
        assert!(acc > 0.6, "online accuracy {acc}");
    }

    #[test]
    fn online_requires_history() {
        let table = learnable_table(500, 24);
        let (_, ev) = online_accuracy(&table, HealthClasses::Two, ModelKind::Dt, 6);
        // With 8 months total and history 6, only months 6..7 are testable.
        let tested_months: usize = 2;
        assert!(ev.n <= table.n_cases() * tested_months / 8 + 50);
    }

    #[test]
    fn class_distribution_sums_to_cases() {
        let table = learnable_table(1_000, 25);
        for classes in [HealthClasses::Two, HealthClasses::Five] {
            let dist = class_distribution(&table, classes);
            assert_eq!(dist.iter().sum::<usize>(), table.n_cases());
            assert_eq!(dist.len(), usize::from(classes.n()));
        }
    }

    #[test]
    fn rendered_tree_names_real_metrics() {
        let table = learnable_table(2_000, 26);
        let text = render_tree(&table, HealthClasses::Two, ModelKind::Dt, 2);
        assert!(
            text.contains("No. of devices") || text.contains("No. of change events"),
            "tree should split on an informative metric:\n{text}"
        );
        assert!(text.contains("healthy"));
    }

    #[test]
    fn all_model_kinds_train_and_predict() {
        let table = learnable_table(800, 27);
        let set = build_learnset(&table, HealthClasses::Two);
        for kind in [
            ModelKind::Dt,
            ModelKind::DtAb,
            ModelKind::DtOs,
            ModelKind::DtAbOs,
            ModelKind::Majority,
            ModelKind::Svm,
            ModelKind::Forest(ForestVariant::Plain),
            ModelKind::Forest(ForestVariant::Balanced),
            ModelKind::Forest(ForestVariant::Weighted),
        ] {
            let model = train(kind, &set, HealthClasses::Two);
            let ev = evaluate(&model, &set);
            assert!(ev.accuracy() > 0.4, "{}: accuracy {}", kind.label(), ev.accuracy());
        }
    }

    #[test]
    fn ladder_labels() {
        let labels: Vec<&str> = ModelKind::LADDER.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["DT", "DT+AB", "DT+OS", "DT+AB+OS"]);
    }
}
