//! Dependence analysis (§5.1): which practices are statistically related to
//! health, and to each other.
//!
//! Mutual information is chosen over ANOVA/PCA/ICA because "MI does not make
//! assumptions about the nature of the relationship" — it catches the
//! non-monotonic shapes of Figure 4. Metrics and health are discretized
//! with the §5.1.1 binning (10 equal-width bins between the 5th and 95th
//! percentile, outliers clamped); Table 3 reports the **average monthly
//! MI**: MI is computed within each month's cases and averaged across
//! months, which removes cross-month drift from the estimate.

use mpa_metrics::{Case, CaseTable, Metric};
use mpa_stats::{conditional_mutual_information, mutual_information, Binner};
use serde::{Deserialize, Serialize};

/// Bins used for dependence analysis (§5.1.1).
pub const DEPENDENCE_BINS: usize = 10;

/// One row of the MI ranking (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiEntry {
    /// The practice.
    pub metric: Metric,
    /// Average monthly MI with network health (bits).
    pub mi: f64,
}

/// One row of the CMI pair ranking (Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmiEntry {
    /// First practice of the pair.
    pub a: Metric,
    /// Second practice of the pair.
    pub b: Metric,
    /// CMI(a; b | health) in bits.
    pub cmi: f64,
}

/// Bin a column with the paper's strategy; degenerate columns map to bin 0.
fn binned(values: &[f64], n_bins: usize) -> Vec<usize> {
    Binner::fit(values, n_bins).bin_all(values)
}

/// Rank all 28 practices by average monthly MI with health (Table 3).
///
/// Months with fewer than `min_cases_per_month` cases are skipped (an MI
/// estimate over a handful of cases is noise).
pub fn mi_ranking(table: &CaseTable, min_cases_per_month: usize) -> Vec<MiEntry> {
    // Global binners (the 5th/95th percentile bounds are properties of the
    // organization, not of one month).
    let ticket_binner = Binner::fit(&table.tickets(), DEPENDENCE_BINS);
    let metric_binners: Vec<Binner> = Metric::ALL
        .iter()
        .map(|&m| Binner::fit(&table.column(m), DEPENDENCE_BINS))
        .collect();

    // Qualifying months with their cases and binned health column, computed
    // once and shared by every metric (the sequential version re-binned
    // tickets 28 times).
    let month_cases: Vec<(Vec<&Case>, Vec<usize>)> = table
        .months()
        .into_iter()
        .filter_map(|month| {
            let cases = table.cases_in_month(month);
            if cases.len() < min_cases_per_month {
                return None;
            }
            let ys: Vec<usize> = cases.iter().map(|c| ticket_binner.bin(c.tickets)).collect();
            Some((cases, ys))
        })
        .collect();

    // Metrics are scored independently; fan out, then sort (the stable sort
    // over the order-preserving map keeps ties in `Metric::ALL` order, same
    // as the sequential path).
    let mut entries: Vec<MiEntry> =
        mpa_exec::par_map(Metric::ALL.as_slice(), |mi_ix, &metric| {
            let mut total = 0.0;
            for (cases, ys) in &month_cases {
                let xs: Vec<usize> = cases
                    .iter()
                    // mpa-lint: allow(R7) -- Metric::index() is the dense slot in a values vec sized Metric::ALL
                    .map(|c| metric_binners[mi_ix].bin(c.values[metric.index()]))
                    .collect();
                total += mutual_information(&xs, ys);
            }
            let n_months = month_cases.len();
            MiEntry { metric, mi: if n_months > 0 { total / n_months as f64 } else { 0.0 } }
        });
    entries.sort_by(|a, b| b.mi.total_cmp(&a.mi));
    entries
}

/// Rank all practice pairs by CMI given health (Table 4), descending.
pub fn cmi_ranking(table: &CaseTable) -> Vec<CmiEntry> {
    let ticket_binner = Binner::fit(&table.tickets(), DEPENDENCE_BINS);
    let ys: Vec<usize> = table.tickets().iter().map(|&t| ticket_binner.bin(t)).collect();
    let binned_cols: Vec<Vec<usize>> = Metric::ALL
        .iter()
        .map(|&m| binned(&table.column(m), DEPENDENCE_BINS))
        .collect();

    // All ~378 pairs are independent given the binned columns; fan out and
    // sort. Pair order (hence tie order after the stable sort) matches the
    // sequential double loop.
    let pairs: Vec<(usize, usize)> = (0..Metric::ALL.len())
        .flat_map(|i| ((i + 1)..Metric::ALL.len()).map(move |j| (i, j)))
        .collect();
    let mut entries = mpa_exec::par_map(&pairs, |_, &(i, j)| {
        let cmi = conditional_mutual_information(&binned_cols[i], &binned_cols[j], &ys);
        CmiEntry { a: Metric::ALL[i], b: Metric::ALL[j], cmi }
    });
    entries.sort_by(|a, b| b.cmi.total_cmp(&a.cmi));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_metrics::catalog::N_METRICS;
    use mpa_model::NetworkId;

    /// Build a synthetic case table where tickets depend strongly on
    /// Devices, weakly on Vlans, and not at all on Workloads; and where
    /// Models is a noisy copy of Roles (for CMI).
    fn synthetic_table() -> CaseTable {
        let mut cases = Vec::new();
        // 600 networks/month keeps the plug-in MI bias ((|X|−1)(|Y|−1)/2n·ln2)
        // well below the signal levels asserted below.
        for month in 0..6 {
            for net in 0..600u32 {
                let mut values = vec![0.0; N_METRICS];
                let devices = f64::from(net % 30) * 4.0;
                let vlans = f64::from((net * 7) % 40);
                let roles = f64::from(net % 5) + 1.0;
                values[Metric::Devices.index()] = devices;
                values[Metric::Vlans.index()] = vlans;
                values[Metric::Roles.index()] = roles;
                values[Metric::Models.index()] = roles * 2.0 + f64::from(net % 2);
                // Hash-scrambled so it shares no modular structure with the
                // drivers of tickets.
                values[Metric::Workloads.index()] =
                    f64::from(net.wrapping_mul(2_654_435_761) >> 13 & 3);
                let tickets = (devices / 10.0 + vlans / 30.0 + f64::from((net + month) % 2)).floor();
                cases.push(Case { network: NetworkId(net), month: month as usize, values, tickets });
            }
        }
        CaseTable::new(cases)
    }

    #[test]
    fn mi_ranking_orders_by_strength() {
        let table = synthetic_table();
        let ranking = mi_ranking(&table, 30);
        assert_eq!(ranking.len(), N_METRICS);
        // Sorted descending.
        for w in ranking.windows(2) {
            assert!(w[0].mi >= w[1].mi);
        }
        let rank_of = |m: Metric| ranking.iter().position(|e| e.metric == m).unwrap();
        assert!(
            rank_of(Metric::Devices) < rank_of(Metric::Workloads),
            "devices drive tickets, workloads are noise"
        );
        assert_eq!(ranking[0].metric, Metric::Devices);
        // Unrelated metric carries little information (the loose bound
        // allows for the plug-in estimator's small positive bias).
        assert!(ranking.iter().find(|e| e.metric == Metric::Workloads).unwrap().mi < 0.08);
    }

    #[test]
    fn mi_skips_thin_months() {
        let table = synthetic_table();
        // min_cases too high → no months qualify → all MI zero.
        let ranking = mi_ranking(&table, 10_000);
        assert!(ranking.iter().all(|e| e.mi == 0.0));
    }

    #[test]
    fn cmi_finds_the_coupled_pair() {
        let table = synthetic_table();
        let ranking = cmi_ranking(&table);
        assert_eq!(ranking.len(), N_METRICS * (N_METRICS - 1) / 2);
        for w in ranking.windows(2) {
            assert!(w[0].cmi >= w[1].cmi);
        }
        // Models ≈ 2·Roles: that pair must rank near the very top among
        // pairs of *informative* metrics.
        let pos = ranking
            .iter()
            .position(|e| {
                (e.a == Metric::Models && e.b == Metric::Roles)
                    || (e.a == Metric::Roles && e.b == Metric::Models)
            })
            .unwrap();
        assert!(pos < 5, "Models/Roles pair ranked {pos}");
    }

    #[test]
    fn constant_metric_has_zero_mi_and_cmi() {
        let table = synthetic_table();
        // HardwareEntropy is all zeros in the synthetic table.
        let ranking = mi_ranking(&table, 30);
        let e = ranking.iter().find(|e| e.metric == Metric::HardwareEntropy).unwrap();
        assert!(e.mi < 1e-9, "constant metric MI {}", e.mi);
        let cmis = cmi_ranking(&table);
        for e in cmis {
            if e.a == Metric::HardwareEntropy || e.b == Metric::HardwareEntropy {
                assert!(e.cmi < 1e-9);
            }
        }
    }
}
