//! `mpa-cli` — the Management Plane Analytics tool.
//!
//! The paper ships MPA as a tool organizations can run on their own data;
//! this binary is that tool for this reproduction. It operates on JSON
//! artifacts so each stage can be run, inspected and re-run independently:
//!
//! ```text
//! mpa-cli generate --scale small --out dataset.json      # synthetic org
//! mpa-cli infer    --dataset dataset.json --out table.json
//! mpa-cli analyze  --table table.json [--causal-top 5]
//! mpa-cli predict  --table table.json [--classes 2|5]
//! mpa-cli report   --table table.json                    # everything
//! ```
//!
//! `infer` consumes a [`mpa_synth::Dataset`] JSON (an organization would
//! produce the same structure from its inventory/NMS/ticket exports);
//! `analyze`/`predict`/`report` consume the case-table JSON, which contains
//! no raw configuration data and is safe to share.

use mpa_core::predict::{
    class_distribution, cross_validation, online_accuracy, render_tree, HealthClasses, ModelKind,
};
use mpa_core::{analyze_treatment, cmi_ranking, mi_ranking, CausalConfig, TextTable};
use mpa_metrics::{CaseTable, InferMode, Metric};
use mpa_synth::{CoverageReport, Dataset, DegradeSpec, GenMode, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let opts = Opts::parse(command, &args[1..]);
    if let Some(n) = opts.threads {
        mpa_core::exec::set_threads(n);
    }
    if opts.obs_out.is_some() {
        mpa_obs::install_collector();
    }
    mpa_core::exec::set_phase_timing(true);
    match command.as_str() {
        "generate" => generate(&opts),
        "infer" => infer(&opts),
        "analyze" => analyze(&opts, &opts.load_table()),
        "predict" => predict(&opts, &opts.load_table()),
        "report" => {
            // One load: analyze and predict share the deserialized table.
            let table = opts.load_table();
            analyze(&opts, &table);
            predict(&opts, &table);
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage_and_exit();
        }
    }
    if let Some(path) = &opts.obs_out {
        let report = mpa_obs::RunReport::gather();
        report.write(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[mpa] wrote run report {path}");
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "mpa-cli — Management Plane Analytics\n\n\
         usage:\n\
           mpa-cli generate --scale tiny|small|medium|paper [--seed N]\n\
                            [--degrade none|light|heavy|key=rate,...]\n\
                            [--gen-mode delta|full] --out dataset.json\n\
           mpa-cli infer    --dataset dataset.json [--delta MIN]\n\
                            [--infer-mode delta|full] --out table.json\n\
           mpa-cli analyze  --table table.json [--causal-top N]\n\
           mpa-cli predict  --table table.json [--classes 2|5]\n\
           mpa-cli report   --table table.json\n\n\
         every command also accepts --threads N (default: all cores; results\n\
         are identical at any thread count) and --obs-out run.json (write a\n\
         JSON run report: span tree, counters, scheduling, peak RSS)"
    );
    std::process::exit(2);
}

/// Minimal flag parser (no external CLI dependency, per DESIGN.md's crate
/// policy).
#[derive(Default)]
struct Opts {
    scale: Option<String>,
    seed: Option<u64>,
    degrade: Option<DegradeSpec>,
    out: Option<String>,
    dataset: Option<String>,
    table: Option<String>,
    delta: Option<u64>,
    infer_mode: Option<InferMode>,
    gen_mode: Option<GenMode>,
    causal_top: Option<usize>,
    classes: Option<u8>,
    threads: Option<usize>,
    obs_out: Option<String>,
}

/// Parse a numeric flag value or exit 2 — an invalid `--seed abc` must
/// never silently fall back to a default.
fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an unsigned integer, got {raw:?}");
        std::process::exit(2);
    })
}

impl Opts {
    fn parse(command: &str, args: &[String]) -> Opts {
        let mut o = Opts::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next().cloned().unwrap_or_else(|| {
                    eprintln!("flag {flag} needs a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => o.scale = Some(value()),
                "--seed" => o.seed = Some(parse_num("--seed", &value())),
                "--degrade" => {
                    // Degradation is a *generation-time* knob; accepting it
                    // on infer/analyze/predict/report would silently do
                    // nothing and let users believe their run was degraded.
                    if command != "generate" {
                        eprintln!(
                            "--degrade only applies to the generate command \
                             (not {command:?}); generate a degraded dataset first"
                        );
                        std::process::exit(2);
                    }
                    let raw = value();
                    o.degrade = Some(DegradeSpec::parse(&raw).unwrap_or_else(|e| {
                        eprintln!("--degrade: {e}");
                        std::process::exit(2);
                    }));
                }
                "--out" => o.out = Some(value()),
                "--dataset" => o.dataset = Some(value()),
                "--table" => o.table = Some(value()),
                "--delta" => o.delta = Some(parse_num("--delta", &value())),
                "--infer-mode" => {
                    let raw = value();
                    o.infer_mode = Some(InferMode::parse(&raw).unwrap_or_else(|| {
                        eprintln!("--infer-mode must be \"delta\" or \"full\", got {raw:?}");
                        std::process::exit(2);
                    }));
                }
                "--gen-mode" => {
                    // Like --degrade, a generation-time knob: accepting it
                    // elsewhere would silently do nothing.
                    if command != "generate" {
                        eprintln!(
                            "--gen-mode only applies to the generate command (not {command:?})"
                        );
                        std::process::exit(2);
                    }
                    let raw = value();
                    o.gen_mode = Some(GenMode::parse(&raw).unwrap_or_else(|| {
                        eprintln!("--gen-mode must be \"delta\" or \"full\", got {raw:?}");
                        std::process::exit(2);
                    }));
                }
                "--causal-top" => o.causal_top = Some(parse_num("--causal-top", &value())),
                "--classes" => {
                    let n: u8 = parse_num("--classes", &value());
                    if n != 2 && n != 5 {
                        eprintln!("--classes must be 2 or 5, got {n}");
                        std::process::exit(2);
                    }
                    o.classes = Some(n);
                }
                "--threads" => o.threads = Some(parse_num("--threads", &value())),
                "--obs-out" => o.obs_out = Some(value()),
                other => {
                    eprintln!("unknown flag {other:?}");
                    std::process::exit(2);
                }
            }
        }
        o
    }

    fn load_table(&self) -> CaseTable {
        let path = self.table.as_deref().unwrap_or_else(|| {
            eprintln!("--table <file> is required");
            std::process::exit(2);
        });
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        serde_json::from_str(&json).unwrap_or_else(|e| {
            eprintln!("{path} is not a case-table JSON: {e}");
            std::process::exit(1);
        })
    }
}

fn generate(opts: &Opts) {
    let mut scenario = match opts.scale.as_deref().unwrap_or("small") {
        "tiny" => Scenario::tiny(),
        "small" => Scenario::small(),
        "medium" => Scenario::medium(),
        "paper" => Scenario::paper(),
        other => {
            eprintln!("unknown scale {other:?}");
            std::process::exit(2);
        }
    };
    if let Some(seed) = opts.seed {
        scenario = scenario.with_seed(seed);
    }
    if let Some(degrade) = opts.degrade {
        scenario = scenario.with_degrade(degrade);
    }
    let gen_mode = opts.gen_mode.unwrap_or_default();
    let dataset =
        mpa_core::exec::timed_phase("generate", || scenario.generate_with_mode(gen_mode));
    let summary = dataset.summary();
    eprintln!(
        "generated {} networks / {} devices / {} snapshots / {} tickets",
        summary.networks, summary.devices, summary.config_snapshots, summary.tickets
    );
    if scenario.degrade.is_active() {
        let st = &dataset.degrade;
        eprintln!(
            "degraded: {} snapshots dropped / {} kept of {} generated, \
             {} reordered, {} logins ambiguated, {} tickets duplicated, {} corrupted",
            st.snapshots_dropped(),
            st.snapshots_kept(),
            st.snapshots_generated,
            st.snapshots_reordered,
            st.logins_ambiguated,
            st.tickets_duplicated,
            st.tickets_corrupted
        );
    }
    // Publish the coverage scan so an `--obs-out` report carries it.
    let coverage = CoverageReport::scan(&dataset);
    coverage.publish();
    for dim in ["dialect", "change_type", "stanza_kind", "degrade_knob"] {
        let (ex, total) = coverage.exercised(dim);
        eprintln!("coverage: {dim} {ex}/{total}");
    }
    let out = opts.out.as_deref().unwrap_or("dataset.json");
    let json = serde_json::to_string(&dataset).expect("dataset serializes");
    std::fs::write(out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn infer(opts: &Opts) {
    let path = opts.dataset.as_deref().unwrap_or_else(|| {
        eprintln!("--dataset <file> is required");
        std::process::exit(2);
    });
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut dataset: Dataset = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("{path} is not a dataset JSON: {e}");
        std::process::exit(1);
    });
    dataset.inventory.rebuild_index(); // skipped field; see Inventory docs
    let delta = opts.delta.unwrap_or(mpa_metrics::DELTA_DEFAULT_MINUTES);
    let mode = opts.infer_mode.unwrap_or_default();
    let table = mpa_core::exec::timed_phase("infer", || {
        mpa_metrics::infer_with_mode(&dataset, delta, mode).table
    });
    eprintln!("inferred {} cases", table.n_cases());
    let out = opts.out.as_deref().unwrap_or("table.json");
    std::fs::write(out, serde_json::to_string(&table).expect("table serializes"))
        .unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
    eprintln!("wrote {out}");
}

fn analyze(opts: &Opts, table: &CaseTable) {
    println!("== dependence analysis ({} cases) ==\n", table.n_cases());

    let mi = mpa_core::exec::timed_phase("mi_ranking", || mi_ranking(table, 20));
    let mut t = TextTable::new(vec!["rank", "practice", "cat", "avg monthly MI"]);
    for (i, e) in mi.iter().take(10).enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            e.metric.name().to_string(),
            e.metric.category().tag().to_string(),
            format!("{:.3}", e.mi),
        ]);
    }
    println!("{t}");

    let cmi = mpa_core::exec::timed_phase("cmi_ranking", || cmi_ranking(table));
    let mut t = TextTable::new(vec!["practice pair", "", "CMI"]);
    for e in cmi.iter().take(10) {
        t.row(vec![e.a.name().to_string(), e.b.name().to_string(), format!("{:.3}", e.cmi)]);
    }
    println!("{t}");

    let top = opts.causal_top.unwrap_or(5);
    println!("== causal analysis (top {top} practices, 1:2 bins) ==\n");
    let cfg = CausalConfig::default();
    let mut t = TextTable::new(vec!["treatment", "pairs", "p-value", "balance", "verdict"]);
    // Matching is independent per treatment metric; fan out, render in
    // ranking order.
    let top_entries: Vec<_> = mi.iter().take(top).collect();
    let analyses = mpa_core::exec::timed_phase("causal", || {
        mpa_core::exec::par_map(&top_entries, |_, e| analyze_treatment(table, e.metric, &cfg))
    });
    for (e, analysis) in top_entries.iter().zip(&analyses) {
        if let Some(c) = analysis.low_bin_comparison() {
            t.row(vec![
                e.metric.name().to_string(),
                c.n_pairs.to_string(),
                c.p_value().map_or("-".into(), TextTable::num),
                if c.balanced(&cfg) { "ok".into() } else { format!("imbal ({})", c.n_imbalanced_covariates) },
                if c.causal(&cfg) { "CAUSAL".into() } else { "-".to_string() },
            ]);
        }
    }
    println!("{t}");
}

fn predict(opts: &Opts, table: &CaseTable) {
    let classes = match opts.classes {
        Some(5) => HealthClasses::Five,
        _ => HealthClasses::Two,
    };
    println!("== health prediction ({:?}) ==\n", classes);

    let dist = class_distribution(table, classes);
    let names = classes.names();
    let mut t = TextTable::new(vec!["class", "cases"]);
    for (name, count) in names.iter().zip(&dist) {
        t.row(vec![name.to_string(), count.to_string()]);
    }
    println!("{t}");

    let mut t = TextTable::new(vec!["model", "5-fold CV accuracy"]);
    mpa_core::exec::timed_phase("predict", || {
        for kind in
            [ModelKind::Dt, ModelKind::DtAb, ModelKind::DtOs, ModelKind::DtAbOs, ModelKind::Majority]
        {
            let ev = cross_validation(table, classes, kind, 7);
            t.row(vec![kind.label().to_string(), format!("{:.3}", ev.accuracy())]);
        }
    });
    println!("{t}");

    let months = table.months().len();
    if months > 3 {
        let mut t = TextTable::new(vec!["history M", "online accuracy"]);
        for m in [1usize, 3, 6, 9] {
            if m + 1 >= months {
                continue;
            }
            let (acc, ev) = online_accuracy(table, classes, ModelKind::Dt, m);
            if ev.n > 0 {
                t.row(vec![m.to_string(), format!("{acc:.3}")]);
            }
        }
        println!("{t}");
    }

    println!("decision tree (top 2 levels):\n{}", render_tree(table, classes, ModelKind::Dt, 2));

    let _ = Metric::ALL; // keep the import tied to the public surface
}
