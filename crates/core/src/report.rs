//! Plain-text table rendering for the reproduction harness.
//!
//! Every table/figure regenerator prints through [`TextTable`] so the
//! output lines up like the paper's tables and diffs cleanly run-to-run.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Format a float compactly (3 significant decimals, scientific for
    /// very small magnitudes — p-values).
    pub fn num(v: f64) -> String {
        if v == 0.0 {
            "0".to_string()
        } else if v.abs() < 1e-3 {
            format!("{v:.2e}")
        } else if v.abs() >= 1000.0 || (v.fract() == 0.0 && v.abs() < 1e9) {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n_cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Metric", "MI"]);
        t.row(vec!["No. of devices", "0.388"]);
        t.row(vec!["x", "0.1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Metric"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "MI" column starts at the same offset in all rows.
        let off = lines[0].find("MI").unwrap();
        assert_eq!(&lines[2][off..off + 5], "0.388");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(TextTable::num(0.0), "0");
        assert_eq!(TextTable::num(6.8e-13), "6.80e-13");
        assert_eq!(TextTable::num(0.388), "0.388");
        assert_eq!(TextTable::num(1234.0), "1234");
        assert_eq!(TextTable::num(42.0), "42");
    }
}
