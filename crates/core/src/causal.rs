//! Causal analysis via quasi-experimental design (§5.2).
//!
//! High MI does not imply causation: practices confound one another
//! (Figures 4–5). MPA's matched design answers "does practice X *cause*
//! worse health?" in four steps:
//!
//! 1. **Treatment definition** (§5.2.2): the treatment metric is binned
//!    into 5 bins (the §5.1.1 binning) and neighbouring bins are compared —
//!    comparison points 1:2, 2:3, 3:4, 4:5.
//! 2. **Matching** (§5.2.3): a logistic-regression **propensity score** is
//!    fit on the other 27 metrics; cases outside the common support are
//!    discarded; each treated case is paired with the nearest untreated
//!    case by score, **with replacement**.
//! 3. **Balance verification** (§5.2.4): |standardized difference of means|
//!    < 0.25 and variance ratio ∈ [0.5, 2] for the scores *and* for every
//!    confounder; otherwise the comparison is declared imbalanced
//!    (Table 8's "Imbal." entries).
//! 4. **Sign test** (§5.2.5): the distribution of per-pair ticket
//!    differences must reject "median = 0" at p < 0.001.

use mpa_metrics::{CaseTable, Metric};
use mpa_stats::logistic::LogisticConfig;
use mpa_stats::signtest::{sign_test_from_diffs, SignTestResult};
use mpa_stats::{BalanceCheck, Binner, LogisticRegression};
use serde::{Deserialize, Serialize};

/// Configuration of the causal pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CausalConfig {
    /// Treatment bins (the paper uses 5).
    pub n_treatment_bins: usize,
    /// Significance threshold for the sign test (the paper uses 0.001).
    pub alpha: f64,
    /// Minimum cases per arm for a comparison to be attempted at all.
    pub min_cases: usize,
    /// Maximum confounders allowed to fail balance before the comparison is
    /// declared imbalanced (0 = strict).
    pub max_imbalanced_covariates: usize,
    /// Optional matching caliper, in standard deviations of the logit
    /// propensity score. `None` reproduces the paper's plain
    /// nearest-neighbour matching (match quality is then certified solely
    /// by the §5.2.4 balance checks); `Some(0.2)` is Rosenbaum–Rubin's
    /// classic stricter rule.
    pub caliper_sd: Option<f64>,
}

impl Default for CausalConfig {
    fn default() -> Self {
        Self {
            n_treatment_bins: 5,
            alpha: 0.001,
            min_cases: 30,
            max_imbalanced_covariates: 4,
            caliper_sd: None,
        }
    }
}

/// Result of one neighbouring-bin comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// 1-based bins compared, e.g. `(1, 2)` for the paper's "1:2".
    pub point: (usize, usize),
    /// Cases in the untreated bin (before matching).
    pub n_untreated: usize,
    /// Cases in the treated bin (before matching).
    pub n_treated: usize,
    /// Matched pairs formed.
    pub n_pairs: usize,
    /// Distinct untreated cases used (with-replacement matching reuses
    /// them; Table 5's "Untreated Matched" column).
    pub n_untreated_matched: usize,
    /// Balance of the propensity scores over matched samples.
    pub score_balance: Option<BalanceCheck>,
    /// Number of the 27 confounders failing balance after matching.
    pub n_imbalanced_covariates: usize,
    /// Sign test over per-pair ticket differences (treated − untreated).
    pub sign: Option<SignTestResult>,
    /// Matched propensity/covariate samples for Figure 7 are summarized via
    /// the matched case indices (into the original table).
    pub matched_treated_ix: Vec<usize>,
    /// Indices of the matched untreated cases (aligned with
    /// `matched_treated_ix`).
    pub matched_untreated_ix: Vec<usize>,
    /// Confounders that failed balance, with their standardized difference
    /// of means (diagnostics for imbalanced comparisons).
    pub imbalanced: Vec<(Metric, f64)>,
}

impl ComparisonResult {
    /// Whether matching achieved acceptable balance.
    pub fn balanced(&self, config: &CausalConfig) -> bool {
        self.score_balance.as_ref().is_some_and(BalanceCheck::is_balanced)
            && self.n_imbalanced_covariates <= config.max_imbalanced_covariates
    }

    /// Whether a causal effect is established at this comparison point:
    /// balance holds *and* the sign test rejects H₀.
    pub fn causal(&self, config: &CausalConfig) -> bool {
        self.balanced(config)
            && self.sign.as_ref().is_some_and(|s| s.significant(config.alpha))
    }

    /// The p-value, if a sign test was possible.
    pub fn p_value(&self) -> Option<f64> {
        self.sign.as_ref().map(|s| s.p_value)
    }
}

/// Full causal analysis of one treatment practice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalAnalysis {
    /// The treatment practice.
    pub metric: Metric,
    /// One result per comparison point (1:2 … 4:5).
    pub comparisons: Vec<ComparisonResult>,
}

impl CausalAnalysis {
    /// The 1:2 comparison (the one the paper's Table 7 reports).
    pub fn low_bin_comparison(&self) -> Option<&ComparisonResult> {
        self.comparisons.iter().find(|c| c.point == (1, 2))
    }
}

/// Run the matched-design QED for one treatment metric.
pub fn analyze_treatment(
    table: &CaseTable,
    treatment: Metric,
    config: &CausalConfig,
) -> CausalAnalysis {
    let treat_col = table.column(treatment);
    let binner = Binner::fit(&treat_col, config.n_treatment_bins);
    let mut bins: Vec<usize> = binner.bin_all(&treat_col);

    // Discrete metrics (e.g. number of roles, 1..6) can leave equal-width
    // bins empty, which would make "neighbouring bin" comparisons vacuous.
    // Relabel to the ordered sequence of *populated* bins — the paper's own
    // provision ("more (or fewer) bins can be used if we have an
    // (in)sufficient number of cases in each bin").
    {
        let mut present: Vec<usize> = bins.clone();
        present.sort_unstable();
        present.dedup();
        let relabel: std::collections::BTreeMap<usize, usize> =
            present.iter().enumerate().map(|(new, &old)| (old, new)).collect();
        for b in &mut bins {
            *b = relabel[b];
        }
    }

    // Confounders: all 27 other metrics, entered as their 10-bin indices —
    // the §5.1.1 discretization precedes every analysis in the paper, and
    // binning is exactly what lets the propensity model retain common
    // support in the face of heavy-tailed, strongly-related metrics.
    let confounders: Vec<Metric> =
        Metric::ALL.iter().copied().filter(|&m| m != treatment).collect();
    let conf_binners: Vec<Binner> = confounders
        .iter()
        .map(|&m| Binner::fit(&table.column(m), crate::dependence::DEPENDENCE_BINS))
        .collect();
    let features: Vec<Vec<f64>> = table
        .cases()
        .iter()
        .map(|c| {
            confounders
                .iter()
                .zip(&conf_binners)
                // mpa-lint: allow(R7) -- Metric::index() is the dense slot in a values vec sized Metric::ALL
                .map(|(m, b)| b.bin(c.values[m.index()]) as f64)
                .collect()
        })
        .collect();
    let tickets = table.tickets();

    let comparisons = (0..config.n_treatment_bins - 1)
        .map(|b| {
            compare_bins(
                table, &bins, &confounders, &features, &tickets, b, config,
            )
        })
        .collect();

    CausalAnalysis { metric: treatment, comparisons }
}

fn compare_bins(
    table: &CaseTable,
    bins: &[usize],
    confounders: &[Metric],
    features: &[Vec<f64>],
    tickets: &[f64],
    b: usize,
    config: &CausalConfig,
) -> ComparisonResult {
    let untreated_ix: Vec<usize> =
        (0..bins.len()).filter(|&i| bins[i] == b).collect();
    let treated_ix: Vec<usize> =
        (0..bins.len()).filter(|&i| bins[i] == b + 1).collect();

    mpa_obs::counters::CAUSAL_COMPARISONS.incr();
    let mut result = ComparisonResult {
        point: (b + 1, b + 2),
        n_untreated: untreated_ix.len(),
        n_treated: treated_ix.len(),
        n_pairs: 0,
        n_untreated_matched: 0,
        score_balance: None,
        n_imbalanced_covariates: 0,
        sign: None,
        matched_treated_ix: Vec::new(),
        matched_untreated_ix: Vec::new(),
        imbalanced: Vec::new(),
    };
    if untreated_ix.len() < config.min_cases || treated_ix.len() < config.min_cases {
        return result;
    }

    // Propensity model: P(treated | binned confounders). The mild ridge
    // guards against the near-collinear confounders Table 4's CMI analysis
    // predicts.
    let mut x: Vec<Vec<f64>> = Vec::with_capacity(untreated_ix.len() + treated_ix.len());
    let mut y: Vec<bool> = Vec::with_capacity(untreated_ix.len() + treated_ix.len());
    for &i in &untreated_ix {
        x.push(features[i].clone());
        y.push(false);
    }
    for &i in &treated_ix {
        x.push(features[i].clone());
        y.push(true);
    }
    let model = LogisticRegression::fit(
        &x,
        &y,
        LogisticConfig { lambda: 0.5, ..LogisticConfig::default() },
    );
    let score = |i: usize| model.predict_proba(&features[i]);

    let u_scores: Vec<(f64, usize)> = untreated_ix.iter().map(|&i| (score(i), i)).collect();
    let t_scores: Vec<(f64, usize)> = treated_ix.iter().map(|&i| (score(i), i)).collect();

    // Common support: discard treated (untreated) cases whose score falls
    // outside the other arm's score range.
    let range = |v: &[(f64, usize)]| {
        let lo = v.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = v.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (u_lo, u_hi) = range(&u_scores);
    let (t_lo, t_hi) = range(&t_scores);
    let n_scored = u_scores.len() + t_scores.len();
    let mut u_kept: Vec<(f64, usize)> =
        u_scores.into_iter().filter(|p| p.0 >= t_lo && p.0 <= t_hi).collect();
    let t_kept: Vec<(f64, usize)> =
        t_scores.into_iter().filter(|p| p.0 >= u_lo && p.0 <= u_hi).collect();
    mpa_obs::counters::CAUSAL_SUPPORT_DROPS
        .add((n_scored - u_kept.len() - t_kept.len()) as u64);
    if u_kept.is_empty() || t_kept.is_empty() {
        return result;
    }

    // k=1 nearest neighbour with replacement on sorted untreated scores.
    // A caliper is *optional* and off by default: with
    // `CausalConfig::default()` (`caliper_sd: None`) every treated case is
    // matched to its nearest untreated neighbour, reproducing the paper's
    // plain nearest-neighbour matching, and match *quality* is certified
    // solely by the §5.2.4 balance checks. When `caliper_sd` is set (e.g.
    // `Some(0.2)`, Rosenbaum–Rubin's classic stricter rule, measured in
    // standard deviations of the logit propensity score), a treated case
    // with no sufficiently close untreated neighbour is dropped rather
    // than force-matched.
    let logit = |p: f64| {
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        (p / (1.0 - p)).ln()
    };
    let all_logits: Vec<f64> =
        u_kept.iter().chain(t_kept.iter()).map(|&(p, _)| logit(p)).collect();
    let caliper = config
        .caliper_sd
        .map(|c| c * mpa_stats::variance(&all_logits).sqrt())
        .unwrap_or(f64::INFINITY);

    u_kept.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut diffs: Vec<i64> = Vec::with_capacity(t_kept.len());
    let mut used_untreated: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for &(ts, ti) in &t_kept {
        let pos = u_kept.partition_point(|p| p.0 < ts);
        let candidates = [pos.checked_sub(1), (pos < u_kept.len()).then_some(pos)];
        let Some((us, ui)) = candidates
            .iter()
            .flatten()
            .map(|&c| u_kept[c])
            .min_by(|a, b| (a.0 - ts).abs().total_cmp(&(b.0 - ts).abs()))
        else {
            continue;
        };
        if (logit(us) - logit(ts)).abs() > caliper {
            mpa_obs::counters::CAUSAL_CALIPER_DROPS.incr();
            continue;
        }
        result.matched_treated_ix.push(ti);
        result.matched_untreated_ix.push(ui);
        used_untreated.insert(ui);
        diffs.push((tickets[ti] - tickets[ui]).round() as i64);
    }
    result.n_pairs = diffs.len();
    result.n_untreated_matched = used_untreated.len();
    mpa_obs::counters::CAUSAL_MATCHED_PAIRS.add(diffs.len() as u64);

    // Balance over the matched samples (duplicates included: matching with
    // replacement weights untreated cases by reuse).
    let t_s: Vec<f64> = result.matched_treated_ix.iter().map(|&i| score(i)).collect();
    let u_s: Vec<f64> = result.matched_untreated_ix.iter().map(|&i| score(i)).collect();
    result.score_balance = Some(BalanceCheck::compute(&t_s, &u_s));

    // Covariate balance is assessed on the binned values the propensity
    // model consumed (Stuart: check the covariates as they enter the model).
    let n_conf = features[0].len();
    for j in 0..n_conf {
        let tv: Vec<f64> =
            result.matched_treated_ix.iter().map(|&i| features[i][j]).collect();
        let uv: Vec<f64> =
            result.matched_untreated_ix.iter().map(|&i| features[i][j]).collect();
        let check = BalanceCheck::compute(&tv, &uv);
        if !check.is_balanced() {
            result.imbalanced.push((confounders[j], check.std_diff));
        }
    }
    result.n_imbalanced_covariates = result.imbalanced.len();

    result.sign = Some(sign_test_from_diffs(&diffs));
    let _ = table; // silence in case diagnostics want richer data later
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_metrics::catalog::N_METRICS;
    use mpa_metrics::Case;
    use mpa_model::NetworkId;
    use mpa_stats::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic world with known causality:
    /// * `ChangeEvents` causes tickets (saturating effect);
    /// * `Devices` confounds: it causes both `ChangeEvents` and tickets;
    /// * `IntraComplexity` is a pure proxy of `Devices` with NO effect.
    fn world(n: usize, seed: u64) -> CaseTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Sampler::new(&mut rng);
        let mut cases = Vec::new();
        for i in 0..n {
            let devices = s.log_normal(2.3, 0.8).clamp(2.0, 400.0);
            let events = (devices / 6.0 + s.log_normal(1.2, 0.7)).clamp(0.0, 200.0);
            let complexity = devices * 1.5 + s.normal(0.0, 4.0);
            let lambda = 0.4 * (1.0 + devices / 10.0).ln() + 0.8 * (1.0 + events / 5.0).ln();
            let tickets = s.poisson(lambda) as f64;
            let mut values = vec![0.0; N_METRICS];
            values[Metric::Devices.index()] = devices;
            values[Metric::ChangeEvents.index()] = events;
            values[Metric::IntraComplexity.index()] = complexity;
            // Give the remaining columns mild noise so the logistic model
            // has nothing degenerate to chew on.
            values[Metric::Vlans.index()] = s.uniform() * 10.0;
            cases.push(Case {
                network: NetworkId(i as u32),
                month: i % 6,
                values,
                tickets,
            });
        }
        CaseTable::new(cases)
    }

    #[test]
    fn finds_the_true_cause_at_the_low_bins() {
        let table = world(6_000, 11);
        let cfg = CausalConfig::default();
        let analysis = analyze_treatment(&table, Metric::ChangeEvents, &cfg);
        let low = analysis.low_bin_comparison().expect("1:2 exists");
        assert!(low.n_pairs > 100, "pairs: {}", low.n_pairs);
        assert!(
            low.causal(&cfg),
            "change events should be causal at 1:2: p={:?} balanced={} imbal={}",
            low.p_value(),
            low.balanced(&cfg),
            low.n_imbalanced_covariates,
        );
        let sign = low.sign.as_ref().unwrap();
        assert_eq!(sign.direction(), 1, "treatment worsens health");
    }

    #[test]
    fn proxy_variable_is_not_causal() {
        let table = world(6_000, 11);
        let cfg = CausalConfig::default();
        let analysis = analyze_treatment(&table, Metric::IntraComplexity, &cfg);
        let low = analysis.low_bin_comparison().expect("1:2 exists");
        // After matching on Devices (and the rest), the proxy's effect
        // disappears: either the comparison is imbalanced or insignificant.
        assert!(
            !low.causal(&cfg),
            "proxy must not be causal: p={:?}",
            low.p_value()
        );
    }

    #[test]
    fn matching_with_replacement_reuses_untreated_cases() {
        let table = world(3_000, 5);
        let cfg = CausalConfig::default();
        let analysis = analyze_treatment(&table, Metric::ChangeEvents, &cfg);
        let low = analysis.low_bin_comparison().unwrap();
        assert!(low.n_untreated_matched <= low.n_pairs);
        assert!(low.n_untreated_matched > 0);
        assert_eq!(low.matched_treated_ix.len(), low.n_pairs);
        assert_eq!(low.matched_untreated_ix.len(), low.n_pairs);
    }

    #[test]
    fn thin_bins_are_skipped() {
        let table = world(100, 3);
        let cfg = CausalConfig { min_cases: 1_000, ..CausalConfig::default() };
        let analysis = analyze_treatment(&table, Metric::ChangeEvents, &cfg);
        for c in &analysis.comparisons {
            assert_eq!(c.n_pairs, 0);
            assert!(c.sign.is_none());
            assert!(!c.causal(&cfg));
        }
    }

    #[test]
    fn comparison_points_are_labelled_one_based() {
        let table = world(2_000, 9);
        let analysis =
            analyze_treatment(&table, Metric::ChangeEvents, &CausalConfig::default());
        let points: Vec<(usize, usize)> =
            analysis.comparisons.iter().map(|c| c.point).collect();
        assert_eq!(points, vec![(1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn balance_improves_over_raw_comparison() {
        // Before matching, treated cases have systematically more devices
        // (the confounder); after matching the device distributions must be
        // balanced for the causal claim to hold.
        let table = world(6_000, 11);
        let cfg = CausalConfig::default();
        let analysis = analyze_treatment(&table, Metric::ChangeEvents, &cfg);
        let low = analysis.low_bin_comparison().unwrap();
        let dev_col = table.column(Metric::Devices);
        let t: Vec<f64> = low.matched_treated_ix.iter().map(|&i| dev_col[i]).collect();
        let u: Vec<f64> = low.matched_untreated_ix.iter().map(|&i| dev_col[i]).collect();
        let check = BalanceCheck::compute(&t, &u);
        assert!(
            check.std_diff.abs() < 0.25,
            "devices balanced after matching: {}",
            check.std_diff
        );
    }
}
