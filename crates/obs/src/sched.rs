//! Scheduling statistics: how parallel work was actually distributed.
//!
//! Everything here is deliberately **thread-count dependent** — per-worker
//! task counts and region imbalance describe scheduling, not work — so it
//! is reported in its own section and excluded from the counter-invariance
//! checks. `mpa-exec` records into this module from its worker loops.

use std::sync::atomic::{AtomicU64, Ordering};

/// Worker slots tracked individually; higher slots fold into the last one
/// (the pipeline caps workers at the core count, far below this).
pub const MAX_SLOTS: usize = 64;

static WORKER_TASKS: [AtomicU64; MAX_SLOTS] = [const { AtomicU64::new(0) }; MAX_SLOTS];
static PARALLEL_REGIONS: AtomicU64 = AtomicU64::new(0);
static MAX_REGION_IMBALANCE: AtomicU64 = AtomicU64::new(0);
static REGION_BUSY_NS: AtomicU64 = AtomicU64::new(0);
static REGION_WALL_NS: AtomicU64 = AtomicU64::new(0);
static MAX_REGION_WORKERS: AtomicU64 = AtomicU64::new(0);

/// Record that worker slot `slot` processed `tasks` scheduling units in
/// one region (items for `par_map`, chunks for `par_chunk_map`;
/// sequential fallbacks record everything on slot 0).
pub fn record_worker(slot: usize, tasks: u64) {
    // mpa-lint: allow(R7) -- min(MAX_SLOTS - 1) clamps the slot into the fixed-size array
    WORKER_TASKS[slot.min(MAX_SLOTS - 1)].fetch_add(tasks, Ordering::Relaxed);
}

/// Record one region that actually fanned out, with the spread between
/// its busiest and idlest worker (in scheduling units).
pub fn record_region(imbalance: u64) {
    PARALLEL_REGIONS.fetch_add(1, Ordering::Relaxed);
    MAX_REGION_IMBALANCE.fetch_max(imbalance, Ordering::Relaxed);
}

/// Record the **measured occupancy** of one region that fanned out: the
/// summed busy time of its workers, the region's wall time, and how many
/// workers processed at least one task. `busy / wall` over a run is the
/// *effective* parallelism actually achieved — on an oversubscribed or
/// one-core host it sits near 1 no matter how many workers were spawned,
/// which is what distinguishes "no speedup available" from a regression.
pub fn record_region_occupancy(busy_ns: u64, wall_ns: u64, workers: u64) {
    REGION_BUSY_NS.fetch_add(busy_ns, Ordering::Relaxed);
    REGION_WALL_NS.fetch_add(wall_ns, Ordering::Relaxed);
    MAX_REGION_WORKERS.fetch_max(workers, Ordering::Relaxed);
}

/// Point-in-time view of the scheduling stats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Tasks processed per worker slot, trailing idle slots trimmed.
    pub worker_tasks: Vec<u64>,
    /// Regions that ran on more than one worker.
    pub parallel_regions: u64,
    /// Largest per-region spread between the busiest and idlest worker.
    pub max_region_imbalance: u64,
    /// Summed worker busy time across regions that fanned out (ns).
    pub region_busy_ns: u64,
    /// Summed wall time of regions that fanned out (ns).
    pub region_wall_ns: u64,
    /// Most workers that processed at least one task in a single region.
    pub max_region_workers: u64,
}

impl SchedSnapshot {
    /// Measured effective parallelism: summed worker busy time over region
    /// wall time, across every region that fanned out. 1.0 when nothing
    /// fanned out (a sequential run is trivially "fully occupied at 1").
    /// Unlike `available_cores` this reflects what the workers *achieved* —
    /// near 1.0 on a one-core or oversubscribed host regardless of the
    /// configured thread count.
    pub fn effective_parallelism(&self) -> f64 {
        if self.region_wall_ns == 0 {
            1.0
        } else {
            self.region_busy_ns as f64 / self.region_wall_ns as f64
        }
    }
}

/// Snapshot the scheduling stats.
pub fn snapshot() -> SchedSnapshot {
    let mut worker_tasks: Vec<u64> =
        WORKER_TASKS.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    while worker_tasks.last() == Some(&0) {
        worker_tasks.pop();
    }
    SchedSnapshot {
        worker_tasks,
        parallel_regions: PARALLEL_REGIONS.load(Ordering::Relaxed),
        max_region_imbalance: MAX_REGION_IMBALANCE.load(Ordering::Relaxed),
        region_busy_ns: REGION_BUSY_NS.load(Ordering::Relaxed),
        region_wall_ns: REGION_WALL_NS.load(Ordering::Relaxed),
        max_region_workers: MAX_REGION_WORKERS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_trim() {
        record_worker(0, 5);
        record_worker(1, 2);
        record_region(3);
        let snap = snapshot();
        assert!(snap.worker_tasks.len() >= 2);
        assert!(snap.worker_tasks[0] >= 5);
        assert!(snap.parallel_regions >= 1);
        assert!(snap.max_region_imbalance >= 3);
    }

    #[test]
    fn out_of_range_slot_folds_into_last() {
        record_worker(MAX_SLOTS + 10, 1);
        let v = WORKER_TASKS[MAX_SLOTS - 1].load(Ordering::Relaxed);
        assert!(v >= 1);
    }

    #[test]
    fn occupancy_accumulates_and_effective_parallelism_is_sane() {
        record_region_occupancy(3_000, 1_000, 3);
        let snap = snapshot();
        assert!(snap.region_busy_ns >= 3_000);
        assert!(snap.region_wall_ns >= 1_000);
        assert!(snap.max_region_workers >= 3);
        // Process-global totals (other tests record real regions too), so
        // only sanity is asserted: finite and positive.
        assert!(snap.effective_parallelism() > 0.0);
        // An empty snapshot reports 1.0, not NaN.
        assert_eq!(SchedSnapshot::default().effective_parallelism(), 1.0);
    }
}
