//! Structured observability for the MPA pipeline.
//!
//! PRs 1–2 made the pipeline parallel and memory-lean, but the only
//! instrumentation was ad-hoc stderr timing — parse-cache hit rates,
//! matching pair counts and scheduling balance were invisible without a
//! profiler. This crate makes every run auditable through three
//! primitives, all std-only (no dependencies, no unsafe — the same crate
//! policy as `mpa-exec`):
//!
//! * **Counters and gauges** ([`counters`], [`gauges`]) — process-wide,
//!   label-free relaxed atomics, declared statically in one central
//!   registry. Incrementing is always on (a relaxed `fetch_add` is the
//!   entire cost); every registered counter is deterministic and
//!   thread-count invariant, which the CLI integration tests and the
//!   pipeline bench enforce at 1/2/8 workers.
//! * **Coverage** ([`coverage`]) — which parts of the scenario space a
//!   generated corpus exercised (stanza kinds, change types, dialects,
//!   degradation knobs). Items are declared up front and recorded when
//!   exercised, so unexercised items surface as explicit zeros; CI gates
//!   on a committed baseline.
//! * **Spans** ([`span`]) — hierarchical wall-time regions. A span is a
//!   no-op unless a collector is installed ([`install_collector`]), so
//!   library and test callers pay one atomic load per span. The binaries
//!   install the collector when `--obs-out` is given.
//! * **The run report** ([`RunReport`]) — a JSON snapshot of the span
//!   tree, all counters and gauges, per-worker scheduling stats and peak
//!   RSS, written next to a run's outputs so perf regressions come with
//!   an explanation attached.
//!
//! Scheduling stats ([`sched`]) and generate-phase time accumulators
//! ([`phases`]) are the deliberately thread-count-*dependent* sections:
//! per-worker task counts, region imbalance and accumulated phase
//! nanoseconds describe how (and how long) work was scheduled, so they
//! live outside the invariant counter registry.
//!
//! See DESIGN.md §9 for the architecture and the rules for adding a
//! counter.

pub mod counters;
pub mod coverage;
pub mod gauges;
pub mod json;
pub mod phases;
mod report;
pub mod sched;
mod span;

pub use counters::Counter;
pub use gauges::Gauge;
pub use report::{peak_rss_bytes, RunReport};
pub use span::{annotate_span, collector_installed, install_collector, span, take_spans, SpanNode};
