//! The scenario coverage registry.
//!
//! Counters answer "how much work happened"; coverage answers "which parts
//! of the scenario space were *exercised at all*". Each dimension (stanza
//! kinds, change types, dialects, degradation knobs) holds a set of items
//! with exercise counts; items are *declared* up front — so unexercised
//! items show up as zeros instead of silently missing — and *recorded*
//! by the code that exercises them. The registry serializes into the
//! RunReport as `"coverage": {dim: {item: n}}` and CI gates on a committed
//! baseline: a tracked item dropping to zero is a corpus regression.
//!
//! Unlike the counter registry, dimensions and items are dynamic (the
//! stanza-kind universe depends on the dialect tables in `mpa-config`,
//! which this crate must not depend on), so the registry is a mutex-held
//! `BTreeMap` rather than statics. All access happens at generation time
//! on the merge pass, never on a per-line hot path.

use std::collections::BTreeMap;
use std::sync::Mutex;

static REG: Mutex<BTreeMap<String, BTreeMap<String, u64>>> = Mutex::new(BTreeMap::new());

/// Declare an item in a dimension with a zero count (idempotent; an
/// existing count is preserved). Declaring the full universe first makes
/// unexercised items visible in the report.
pub fn declare(dimension: &str, item: &str) {
    let mut reg = REG.lock().expect("coverage registry poisoned");
    reg.entry(dimension.to_string())
        .or_default()
        .entry(item.to_string())
        .or_insert(0);
}

/// Record `n` exercises of an item (declares it if needed).
pub fn record(dimension: &str, item: &str, n: u64) {
    let mut reg = REG.lock().expect("coverage registry poisoned");
    *reg.entry(dimension.to_string()).or_default().entry(item.to_string()).or_insert(0) +=
        n;
}

/// Snapshot the registry: dimensions and items in sorted order.
pub fn snapshot() -> Vec<(String, Vec<(String, u64)>)> {
    let reg = REG.lock().expect("coverage registry poisoned");
    reg.iter()
        .map(|(dim, items)| {
            (dim.clone(), items.iter().map(|(k, v)| (k.clone(), *v)).collect())
        })
        .collect()
}

/// Clear the registry. Generation publishes a fresh scan per dataset;
/// clearing first keeps reports from accumulating across runs in one
/// process (tests generate several datasets).
pub fn reset() {
    REG.lock().expect("coverage registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_then_record_keeps_zeros_visible() {
        reset();
        declare("test_dim", "unexercised");
        declare("test_dim", "exercised");
        record("test_dim", "exercised", 3);
        record("test_dim", "exercised", 2);
        // Re-declaring must not clobber the count.
        declare("test_dim", "exercised");
        let snap = snapshot();
        let dim = snap.iter().find(|(d, _)| d == "test_dim").unwrap();
        assert_eq!(
            dim.1,
            vec![("exercised".to_string(), 5), ("unexercised".to_string(), 0)]
        );
        reset();
        assert!(snapshot().is_empty());
    }
}
