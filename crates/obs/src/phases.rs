//! Generate-phase time accumulators.
//!
//! The generate phase is one opaque wall-clock number in the pipeline
//! bench; these accumulators break it into its four sub-costs — simulate
//! (op application + bookkeeping), render (config text production +
//! interning), encode (`ArchiveBuilder::finish`: sort, dedup,
//! delta-encode) and merge (`merge_all`) — so BENCH_pipeline.json can
//! show *where* generation time goes per run.
//!
//! Like [`crate::sched`], this module is deliberately **quarantined from
//! the counter registry**: accumulated nanoseconds are wall-clock
//! measurements, legitimately different on every run and at every thread
//! count, so they must never enter [`crate::counters::ALL`] (whose totals
//! the CLI tests compare across thread counts byte for byte). They are
//! reported in their own `"phases"` section of the run report.
//!
//! Semantics: `simulate` and `merge` are wall spans of sequential (or
//! single-region) phases. `render` and `encode` are **summed across
//! worker threads**, so at N threads they can exceed the phase's wall
//! time; they measure aggregate CPU cost, not elapsed time. The wall-time
//! ban lint (R3) confines `Instant` to this crate, which is why the
//! timing helper lives here rather than in the simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A named nanosecond accumulator (relaxed atomic; totals read at
/// quiescent points only).
#[derive(Debug)]
pub struct PhaseAccum {
    name: &'static str,
    ns: AtomicU64,
}

impl PhaseAccum {
    /// Declare an accumulator. Use only for statics in this module.
    pub const fn new(name: &'static str) -> Self {
        Self { name, ns: AtomicU64::new(0) }
    }

    /// Add `ns` nanoseconds.
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulated nanoseconds.
    pub fn get_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// The accumulator's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Op application + simulation bookkeeping (wall time of the per-network
/// parallel region, measured around it).
pub static GEN_SIMULATE: PhaseAccum = PhaseAccum::new("simulate");
/// Config text production + line interning (summed across workers).
pub static GEN_RENDER: PhaseAccum = PhaseAccum::new("render");
/// Archive encoding: sort, dedup, delta-encode (summed across workers).
pub static GEN_ENCODE: PhaseAccum = PhaseAccum::new("encode");
/// Shard-archive merge (wall time).
pub static GEN_MERGE: PhaseAccum = PhaseAccum::new("merge");

/// Every registered phase accumulator, in report order.
pub static ALL: &[&PhaseAccum] = &[&GEN_SIMULATE, &GEN_RENDER, &GEN_ENCODE, &GEN_MERGE];

/// Run `f`, adding its elapsed time to `phase`.
#[inline]
pub fn time<T>(phase: &PhaseAccum, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    phase.add_ns(start.elapsed().as_nanos() as u64);
    out
}

/// Snapshot every phase accumulator as `(name, ns)` in report order.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    ALL.iter().map(|p| (p.name(), p.get_ns())).collect()
}

/// Pairwise difference of two snapshots taken around a region of work
/// (`after - before`, saturating).
pub fn snapshot_diff(
    before: &[(&'static str, u64)],
    after: &[(&'static str, u64)],
) -> Vec<(&'static str, u64)> {
    assert_eq!(before.len(), after.len(), "snapshots from different registries");
    before
        .iter()
        .zip(after)
        .map(|(&(bn, bv), &(an, av))| {
            assert_eq!(bn, an, "snapshots from different registries");
            (an, av.saturating_sub(bv))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_diffs() {
        let before = snapshot();
        let v = time(&GEN_ENCODE, || {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert_eq!(v, 499_500);
        let diff = snapshot_diff(&before, &snapshot());
        let encode = diff.iter().find(|(n, _)| *n == "encode").unwrap().1;
        assert!(encode > 0, "elapsed time must accumulate");
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
