//! Minimal JSON emission.
//!
//! `mpa-obs` deliberately has no dependencies (not even the workspace's
//! vendored serde), so the run report writes its own JSON. Only emission
//! is needed — the report is write-only from this crate's perspective —
//! and only strings, integers, arrays and objects appear in it.

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a `"name": value` list as a JSON object, one pair per line at
/// the given indent.
pub fn push_u64_object(out: &mut String, pairs: &[(&str, u64)], indent: usize) {
    if pairs.is_empty() {
        out.push_str("{}");
        return;
    }
    let pad = " ".repeat(indent + 2);
    out.push_str("{\n");
    for (i, (name, value)) in pairs.iter().enumerate() {
        out.push_str(&pad);
        push_str_literal(out, name);
        out.push_str(": ");
        out.push_str(&value.to_string());
        if i + 1 < pairs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&" ".repeat(indent));
    out.push('}');
}

/// Append a `u64` slice as a JSON array.
pub fn push_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_and_array_shapes() {
        let mut out = String::new();
        push_u64_object(&mut out, &[("a", 1), ("b", 2)], 0);
        assert_eq!(out, "{\n  \"a\": 1,\n  \"b\": 2\n}");
        let mut out = String::new();
        push_u64_object(&mut out, &[], 0);
        assert_eq!(out, "{}");
        let mut out = String::new();
        push_u64_array(&mut out, &[3, 4]);
        assert_eq!(out, "[3, 4]");
    }
}
