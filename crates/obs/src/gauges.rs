//! The process-wide gauge registry.
//!
//! Gauges record the most recent value of a setting or measurement
//! ("last write wins") where counters accumulate events. Unlike counters,
//! gauges carry run *configuration* — they are allowed to differ across
//! thread counts and are therefore reported separately.

use std::sync::atomic::{AtomicU64, Ordering};

/// A process-wide last-write-wins value (relaxed atomic, label-free).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Declare a gauge. Use only for statics in this module.
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// Record the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Most recently recorded value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Worker threads the execution engine resolved to (set by `mpa-exec`
/// every time the thread count is queried; 0 = never resolved).
pub static EXEC_THREADS: Gauge = Gauge::new("exec_threads");

/// Serve request latency, 50th percentile in microseconds, over the
/// daemon's whole life (set from its internal reservoir when the daemon
/// drains). Latencies are measurements, not work: they belong in gauges,
/// which — unlike counters — are allowed to vary run to run.
pub static SERVE_LATENCY_P50_US: Gauge = Gauge::new("serve_latency_p50_us");
/// Serve request latency, 99th percentile in microseconds.
pub static SERVE_LATENCY_P99_US: Gauge = Gauge::new("serve_latency_p99_us");
/// Serve request latency, maximum in microseconds.
pub static SERVE_LATENCY_MAX_US: Gauge = Gauge::new("serve_latency_max_us");
/// Deepest the bounded ingest queue ever got (backpressure high-water).
pub static SERVE_QUEUE_PEAK: Gauge = Gauge::new("serve_queue_peak");

/// Every registered gauge, in report order.
pub static ALL: &[&Gauge] = &[
    &EXEC_THREADS,
    &SERVE_LATENCY_P50_US,
    &SERVE_LATENCY_P99_US,
    &SERVE_LATENCY_MAX_US,
    &SERVE_QUEUE_PEAK,
];

/// Snapshot every registered gauge as `(name, value)` in report order.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    ALL.iter().map(|g| (g.name(), g.get())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites() {
        static G: Gauge = Gauge::new("test_gauge");
        G.set(7);
        G.set(3);
        assert_eq!(G.get(), 3);
        assert_eq!(G.name(), "test_gauge");
    }
}
