//! The process-wide counter registry.
//!
//! Every counter is declared here — one static per counter, all listed in
//! [`ALL`] — and incremented from the crate that owns the instrumented
//! code path. Centralizing the declarations keeps the registry a
//! compile-time constant (no lazy registration, no locks) and makes the
//! full counter surface reviewable in one screen.
//!
//! **Invariance contract:** a counter's total must be a pure function of
//! the work performed, never of how the work was scheduled. Anything that
//! legitimately varies with the worker-thread count belongs in
//! [`crate::sched`], not here. The CLI integration tests compare these
//! totals across `--threads 1/2/8` byte for byte.
//!
//! To add a counter: declare the static, append it to [`ALL`], increment
//! it from the owning crate, and confirm the thread-invariance test still
//! passes (see DESIGN.md §9).

use std::sync::atomic::{AtomicU64, Ordering};

/// A process-wide monotonic event counter (relaxed atomic, label-free).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Declare a counter. Use only for statics in this module.
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// Add `n` events. Relaxed ordering: totals are read only at
    /// quiescent points (report emission), never used for synchronization.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

// --- archive interning (incremented by mpa-config) -----------------------

/// Distinct config lines stored in archive line tables.
pub static ARCHIVE_LINES_INTERNED: Counter = Counter::new("archive_lines_interned");
/// Intern lookups resolved to an already-stored line.
pub static ARCHIVE_LINE_HITS: Counter = Counter::new("archive_line_hits");
/// Bytes of config text (line + newline) not stored thanks to interning.
pub static ARCHIVE_BYTES_SAVED: Counter = Counter::new("archive_bytes_saved");
/// Distinct snapshot states materialized by the dedup-before-materialize
/// replay path (`device_distinct_texts`); duplicates (reverts to an
/// earlier state) are detected on the interned line-id sequences and
/// never rendered to text.
pub static ARCHIVE_SNAPSHOTS_MATERIALIZED: Counter =
    Counter::new("archive_snapshots_materialized");
/// Bytes of snapshot text actually rendered by the replay path (distinct
/// states only). Compare against `total_bytes` for the materialization
/// saving.
pub static ARCHIVE_BYTES_MATERIALIZED: Counter = Counter::new("archive_bytes_materialized");
/// Line ids rewritten from shard-local to global ids. Only the pairwise
/// [`SnapshotArchive::merge`] path (serve-session composition) still
/// remaps individual delta-stream ids; the sharded `merge_all` uses
/// offset-partitioned id allocation and rewrites nothing.
pub static ARCHIVE_MERGE_REMAPPED_LINES: Counter =
    Counter::new("archive_merge_remapped_lines");
/// Successor cost metric of the sharded merge: interned lines appended to
/// the global table (`SnapshotArchive::merge_all`, phase 1). This is
/// O(distinct lines per shard), versus the O(total delta-stream ids) the
/// old remap phase paid — the ≥10× reduction gated in CI.
pub static ARCHIVE_MERGE_TABLE_LINES: Counter = Counter::new("archive_merge_table_lines");

// --- delta-native generation (incremented by mpa-config / mpa-synth) -----
//
// Invariant checked by the CLI tests in both gen modes:
// `gen_render_cache_hits + gen_render_cache_misses == gen_chunks_rendered`
// (every chunk render consults the per-network render cache exactly once;
// the full-render oracle performs no chunk renders, so all three are zero
// there).

/// Chunk renders performed by the delta-native generator (= render-cache
/// lookups; dirty chunks only, hit or miss).
pub static GEN_CHUNKS_RENDERED: Counter = Counter::new("gen_chunks_rendered");
/// Chunk renders whose text was already interned for this network — the
/// per-line interning work was skipped entirely.
pub static GEN_RENDER_CACHE_HITS: Counter = Counter::new("gen_render_cache_hits");
/// Chunk renders with novel text, split and interned line by line.
pub static GEN_RENDER_CACHE_MISSES: Counter = Counter::new("gen_render_cache_misses");
/// Config lines produced by chunk renders (hit or miss). The delta path's
/// analogue of the full path's per-snapshot line count — compare against
/// `archive_line_hits + archive_lines_interned` under `--gen-mode full`
/// for the cost-proportional-to-changed-lines claim.
pub static GEN_LINES_RENDERED: Counter = Counter::new("gen_lines_rendered");
/// Bytes of chunk text produced by the delta-native generator. Compare
/// against the ~1.7 GB the full-render oracle produces at paper scale.
pub static GEN_BYTES_RENDERED: Counter = Counter::new("gen_bytes_rendered");
/// Dirty-chunk splices applied to live device documents (chunk slots
/// inserted, replaced or removed at snapshot-record time).
pub static GEN_SPLICE_OPS: Counter = Counter::new("gen_splice_ops");

// --- inference parse cache (incremented by mpa-metrics) ------------------

/// Snapshots walked by the inference pipeline (= parse-cache lookups).
pub static PARSE_SNAPSHOTS_VISITED: Counter = Counter::new("parse_snapshots_visited");
/// Snapshots whose text was already parsed for the same device.
pub static PARSE_CACHE_HITS: Counter = Counter::new("parse_cache_hits");
/// Snapshots with novel text, parsed and fact-extracted once.
pub static PARSE_CACHE_MISSES: Counter = Counter::new("parse_cache_misses");

// --- delta-native inference (incremented by mpa-config / mpa-metrics) ----

/// Whole-snapshot parses performed by the full-parse oracle path
/// (`--infer-mode full`); the delta-native path performs none, which is
/// exactly the point.
pub static INFER_FULL_PARSES: Counter = Counter::new("infer_full_parses");
/// Stanzas parsed by the delta-native path: stanzas of segments not
/// already present in the per-network segment cache (novel text only).
pub static INFER_STANZAS_REPARSED: Counter = Counter::new("infer_stanzas_reparsed");
/// Bytes of stanza text the delta-native path actually read and parsed
/// (novel segments only). Compare against `archive_bytes_materialized`
/// under the full path for the cost-proportional-to-changed-bytes claim.
pub static INFER_DELTA_BYTES: Counter = Counter::new("infer_delta_bytes");

// --- parallel execution (incremented by mpa-exec) ------------------------

/// Parallel regions entered (`par_map` + `par_chunk_map` calls, counted
/// before the sequential-fallback check so the total is thread-invariant).
pub static PAR_MAP_REGIONS: Counter = Counter::new("par_map_regions");
/// Work items submitted to parallel regions (input elements, not chunks).
pub static PAR_MAP_TASKS: Counter = Counter::new("par_map_tasks");

// --- causal matching (incremented by mpa-core) ---------------------------

/// Neighbouring-bin comparisons attempted.
pub static CAUSAL_COMPARISONS: Counter = Counter::new("causal_comparisons");
/// Cases discarded for falling outside the common support.
pub static CAUSAL_SUPPORT_DROPS: Counter = Counter::new("causal_support_drops");
/// Treated cases dropped because no neighbour fell within the caliper.
pub static CAUSAL_CALIPER_DROPS: Counter = Counter::new("causal_caliper_drops");
/// Matched pairs formed across all comparisons.
pub static CAUSAL_MATCHED_PAIRS: Counter = Counter::new("causal_matched_pairs");

// --- degradation accounting (incremented by mpa-synth) -------------------
//
// Invariants checked by the CLI tests: `degrade_snapshots_kept +
// degrade_snapshots_dropped == degrade_snapshots_generated`, and the final
// ticket count equals `degrade_tickets_generated +
// degrade_tickets_duplicated`. All are summed from per-network stats on
// the (deterministic, network-ordered) merge pass, so they are
// thread-invariant like every other counter here.

/// Snapshots produced by the pristine simulation before degradation.
pub static DEGRADE_SNAPSHOTS_GENERATED: Counter =
    Counter::new("degrade_snapshots_generated");
/// Snapshots lost to missing windows, truncated histories or post-reorder
/// dedup.
pub static DEGRADE_SNAPSHOTS_DROPPED: Counter = Counter::new("degrade_snapshots_dropped");
/// Snapshots surviving into the degraded archive.
pub static DEGRADE_SNAPSHOTS_KEPT: Counter = Counter::new("degrade_snapshots_kept");
/// Adjacent snapshot pairs whose timestamps were swapped (clock skew).
pub static DEGRADE_SNAPSHOTS_REORDERED: Counter =
    Counter::new("degrade_snapshots_reordered");
/// Snapshot logins replaced with a shared account unknown to the
/// user directory.
pub static DEGRADE_LOGINS_AMBIGUATED: Counter = Counter::new("degrade_logins_ambiguated");
/// Tickets produced by the pristine simulation before degradation.
pub static DEGRADE_TICKETS_GENERATED: Counter = Counter::new("degrade_tickets_generated");
/// Duplicate ticket records appended by the degradation pass.
pub static DEGRADE_TICKETS_DUPLICATED: Counter = Counter::new("degrade_tickets_duplicated");
/// Ticket records corrupted in place (resolution cleared, symptom
/// replaced, possibly re-timestamped outside the study period).
pub static DEGRADE_TICKETS_CORRUPTED: Counter = Counter::new("degrade_tickets_corrupted");

// --- graceful inference (incremented by mpa-metrics) ----------------------

/// Device-history gaps (> ~45 days between successive snapshots) the
/// inference walk spanned without error. Gaps occur in pristine corpora
/// too (quiet devices, unlogged months), so this counts *gaps spanned*,
/// not degradations detected; it is identical across infer modes.
pub static INFER_GAPS_SPANNED: Counter = Counter::new("infer_gaps_spanned");

// --- serve daemon (incremented by mpa-serve / mpa-core session) ----------

/// HTTP requests the serve daemon accepted for dispatch (any method/path).
pub static SERVE_REQUESTS: Counter = Counter::new("serve_requests");
/// Responses sent with a 2xx status.
pub static SERVE_RESPONSES_2XX: Counter = Counter::new("serve_responses_2xx");
/// Responses sent with a 4xx status (malformed or unknown requests).
pub static SERVE_RESPONSES_4XX: Counter = Counter::new("serve_responses_4xx");
/// Responses sent with a 5xx status (should stay zero; any increment is a
/// daemon bug worth a look).
pub static SERVE_RESPONSES_5XX: Counter = Counter::new("serve_responses_5xx");
/// Snapshot events applied through the ingest queue.
pub static SERVE_INGEST_SNAPSHOTS: Counter = Counter::new("serve_ingest_snapshots");
/// Ticket events applied through the ingest queue.
pub static SERVE_INGEST_TICKETS: Counter = Counter::new("serve_ingest_tickets");
/// Ingest batches rejected by validation (the session was left untouched).
pub static SERVE_INGEST_REJECTED: Counter = Counter::new("serve_ingest_rejected");
/// Networks incrementally re-inferred after accepted ingest batches.
pub static SERVE_NETWORKS_REINFERRED: Counter = Counter::new("serve_networks_reinferred");

// --- boosting (incremented by mpa-learn) ---------------------------------

/// AdaBoost rounds executed (trees fitted inside the boosting loop).
pub static BOOST_ROUNDS: Counter = Counter::new("boost_rounds");
/// Boosting runs that stopped before their configured iteration budget.
pub static BOOST_EARLY_STOPS: Counter = Counter::new("boost_early_stops");

/// Every registered counter, in report order.
pub static ALL: &[&Counter] = &[
    &ARCHIVE_LINES_INTERNED,
    &ARCHIVE_LINE_HITS,
    &ARCHIVE_BYTES_SAVED,
    &ARCHIVE_SNAPSHOTS_MATERIALIZED,
    &ARCHIVE_BYTES_MATERIALIZED,
    &ARCHIVE_MERGE_REMAPPED_LINES,
    &ARCHIVE_MERGE_TABLE_LINES,
    &GEN_CHUNKS_RENDERED,
    &GEN_RENDER_CACHE_HITS,
    &GEN_RENDER_CACHE_MISSES,
    &GEN_LINES_RENDERED,
    &GEN_BYTES_RENDERED,
    &GEN_SPLICE_OPS,
    &PARSE_SNAPSHOTS_VISITED,
    &PARSE_CACHE_HITS,
    &PARSE_CACHE_MISSES,
    &INFER_FULL_PARSES,
    &INFER_STANZAS_REPARSED,
    &INFER_DELTA_BYTES,
    &PAR_MAP_REGIONS,
    &PAR_MAP_TASKS,
    &CAUSAL_COMPARISONS,
    &CAUSAL_SUPPORT_DROPS,
    &CAUSAL_CALIPER_DROPS,
    &CAUSAL_MATCHED_PAIRS,
    &DEGRADE_SNAPSHOTS_GENERATED,
    &DEGRADE_SNAPSHOTS_DROPPED,
    &DEGRADE_SNAPSHOTS_KEPT,
    &DEGRADE_SNAPSHOTS_REORDERED,
    &DEGRADE_LOGINS_AMBIGUATED,
    &DEGRADE_TICKETS_GENERATED,
    &DEGRADE_TICKETS_DUPLICATED,
    &DEGRADE_TICKETS_CORRUPTED,
    &INFER_GAPS_SPANNED,
    &SERVE_REQUESTS,
    &SERVE_RESPONSES_2XX,
    &SERVE_RESPONSES_4XX,
    &SERVE_RESPONSES_5XX,
    &SERVE_INGEST_SNAPSHOTS,
    &SERVE_INGEST_TICKETS,
    &SERVE_INGEST_REJECTED,
    &SERVE_NETWORKS_REINFERRED,
    &BOOST_ROUNDS,
    &BOOST_EARLY_STOPS,
];

/// Snapshot every registered counter as `(name, total)` in report order.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    ALL.iter().map(|c| (c.name(), c.get())).collect()
}

/// Pairwise difference of two snapshots taken around a region of work
/// (`after - before`, saturating). Panics if the snapshots come from
/// different registry versions.
pub fn snapshot_diff(
    before: &[(&'static str, u64)],
    after: &[(&'static str, u64)],
) -> Vec<(&'static str, u64)> {
    assert_eq!(before.len(), after.len(), "snapshots from different registries");
    before
        .iter()
        .zip(after)
        .map(|(&(bn, bv), &(an, av))| {
            assert_eq!(bn, an, "snapshots from different registries");
            (an, av.saturating_sub(bv))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = ALL.iter().map(|c| c.name()).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate counter name registered");
    }

    #[test]
    fn add_and_snapshot_diff() {
        let before = snapshot();
        PARSE_CACHE_HITS.add(3);
        PARSE_CACHE_HITS.incr();
        let after = snapshot();
        let diff = snapshot_diff(&before, &after);
        let hits = diff.iter().find(|(n, _)| *n == "parse_cache_hits").unwrap();
        // Other tests in this process may also touch the counter, so the
        // delta is at least what this test added.
        assert!(hits.1 >= 4, "expected >= 4 hits, saw {}", hits.1);
    }
}
