//! The JSON run report (`--obs-out run.json`).

use crate::json::{push_str_literal, push_u64_array, push_u64_object};
use crate::sched::SchedSnapshot;
use crate::span::SpanNode;
use crate::{counters, gauges, take_spans};

/// Machine-readable record of what a run did: span tree, counter and
/// gauge snapshots, scheduling stats, thread configuration and peak RSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Worker threads the execution engine resolved to (0 if the engine
    /// never ran).
    pub threads_configured: u64,
    /// The host's available parallelism.
    pub threads_available: u64,
    /// Process peak RSS (VmHWM) in bytes; 0 where `/proc` is unavailable.
    pub peak_rss_bytes: u64,
    /// Every registered counter total, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every registered gauge value, in registry order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Scenario coverage: per dimension, the exercised counts of every
    /// declared item (zeros mark declared-but-unexercised items).
    pub coverage: Vec<(String, Vec<(String, u64)>)>,
    /// Generate-phase time accumulators in nanoseconds (wall-clock
    /// measurements, thread-count dependent by design — quarantined from
    /// the counters section like `sched`).
    pub phases: Vec<(&'static str, u64)>,
    /// Per-worker scheduling stats (thread-count dependent by design).
    pub sched: SchedSnapshot,
    /// The recorded span tree (drained from the collector).
    pub spans: Vec<SpanNode>,
}

impl RunReport {
    /// Snapshot the process's observability state. Drains the span
    /// collector, so gather once, at the end of the run.
    pub fn gather() -> Self {
        Self {
            threads_configured: gauges::EXEC_THREADS.get(),
            threads_available: std::thread::available_parallelism()
                .map_or(1, |n| n.get() as u64),
            peak_rss_bytes: peak_rss_bytes(),
            counters: counters::snapshot(),
            gauges: gauges::snapshot(),
            coverage: crate::coverage::snapshot(),
            phases: crate::phases::snapshot(),
            sched: crate::sched::snapshot(),
            spans: take_spans(),
        }
    }

    /// Serialize to JSON (stable key order, self-contained).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"version\": 1,\n");
        out.push_str(&format!(
            "  \"threads\": {{\"configured\": {}, \"available\": {}}},\n",
            self.threads_configured, self.threads_available
        ));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"counters\": ");
        push_u64_object(&mut out, &self.counters, 2);
        out.push_str(",\n  \"gauges\": ");
        push_u64_object(&mut out, &self.gauges, 2);
        out.push_str(",\n  \"coverage\": ");
        push_coverage(&mut out, &self.coverage);
        out.push_str(",\n  \"phases_ns\": ");
        push_u64_object(&mut out, &self.phases, 2);
        out.push_str(",\n  \"scheduling\": {\n    \"worker_tasks\": ");
        push_u64_array(&mut out, &self.sched.worker_tasks);
        out.push_str(&format!(
            ",\n    \"parallel_regions\": {},\n    \"max_region_imbalance\": {},\n    \
             \"region_busy_ns\": {},\n    \"region_wall_ns\": {},\n    \
             \"max_region_workers\": {},\n    \"effective_parallelism\": {:.3}\n  }},\n",
            self.sched.parallel_regions,
            self.sched.max_region_imbalance,
            self.sched.region_busy_ns,
            self.sched.region_wall_ns,
            self.sched.max_region_workers,
            self.sched.effective_parallelism()
        ));
        out.push_str("  \"spans\": ");
        push_spans(&mut out, &self.spans);
        out.push_str("\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn push_coverage(out: &mut String, coverage: &[(String, Vec<(String, u64)>)]) {
    out.push('{');
    for (i, (dim, items)) in coverage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_str_literal(out, dim);
        out.push_str(": {");
        for (j, (item, n)) in items.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            push_str_literal(out, item);
            out.push_str(&format!(": {n}"));
        }
        if !items.is_empty() {
            out.push_str("\n    ");
        }
        out.push('}');
    }
    if !coverage.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn push_spans(out: &mut String, spans: &[SpanNode]) {
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"label\": ");
        push_str_literal(out, &s.label);
        out.push_str(&format!(", \"wall_ns\": {}, \"children\": ", s.wall_nanos));
        push_spans(out, &s.children);
        out.push('}');
    }
    out.push(']');
}

/// Peak resident set size (VmHWM) of the current process in bytes; 0
/// where `/proc` is unavailable (non-Linux hosts).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kib| kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_self_consistent() {
        let report = RunReport {
            threads_configured: 4,
            threads_available: 8,
            peak_rss_bytes: 12345,
            counters: vec![("parse_cache_hits", 10), ("parse_cache_misses", 2)],
            gauges: vec![("exec_threads", 4)],
            coverage: vec![(
                "dialect".to_string(),
                vec![("block-keyword".to_string(), 7), ("brace\"x".to_string(), 0)],
            )],
            phases: vec![("simulate", 1_000), ("render", 2_000)],
            sched: SchedSnapshot {
                worker_tasks: vec![7, 5],
                parallel_regions: 3,
                max_region_imbalance: 2,
                region_busy_ns: 1_500,
                region_wall_ns: 1_000,
                max_region_workers: 2,
            },
            spans: vec![SpanNode {
                label: "infer \"x\"".to_string(),
                wall_nanos: 99,
                children: vec![SpanNode {
                    label: "parse".to_string(),
                    wall_nanos: 42,
                    children: Vec::new(),
                }],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"configured\": 4"));
        assert!(json.contains("\"parse_cache_hits\": 10"));
        assert!(json.contains("\"worker_tasks\": [7, 5]"));
        assert!(json.contains("\"block-keyword\": 7"));
        assert!(json.contains("\"brace\\\"x\": 0"));
        assert!(json.contains("\"phases_ns\""));
        assert!(json.contains("\"simulate\": 1000"));
        assert!(json.contains("\"effective_parallelism\": 1.500"));
        assert!(json.contains("\"max_region_workers\": 2"));
        assert!(json.contains("\"label\": \"infer \\\"x\\\"\""));
        assert!(json.contains("\"wall_ns\": 42"));
        // Balanced braces/brackets outside string literals — a cheap
        // well-formedness check without a JSON parser in this crate (the
        // CLI integration test parses a real report with serde_json).
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (false, _, '"') => in_str = true,
                (false, _, '{' | '[') => depth += 1,
                (false, _, '}' | ']') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn gather_includes_every_registered_counter() {
        let report = RunReport::gather();
        assert_eq!(report.counters.len(), crate::counters::ALL.len());
        assert_eq!(report.gauges.len(), crate::gauges::ALL.len());
        assert!(report.threads_available >= 1);
    }

    #[test]
    fn peak_rss_is_observable_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
