//! Hierarchical wall-time spans.
//!
//! A span is a labelled region of wall time. Nesting is tracked per
//! thread (a thread-local stack), and spans opened on threads with no
//! open parent of their own — `par_map` workers — attach under the
//! installer thread's innermost open span, so a phase's worker time shows
//! up inside that phase in the report.
//!
//! Zero-cost-when-off: [`span`] checks one relaxed atomic and runs the
//! closure directly unless a collector was installed. When collecting,
//! span entry/exit takes a short global lock — spans in this codebase are
//! coarse (pipeline phases), so contention is irrelevant.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

/// One node of the reported span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The label given to [`span`].
    pub label: String,
    /// Wall time spent inside the span, in nanoseconds.
    pub wall_nanos: u64,
    /// Spans opened while this one was the innermost, in open order.
    pub children: Vec<SpanNode>,
}

#[derive(Debug)]
struct Rec {
    label: String,
    parent: Option<usize>,
    start: Instant,
    nanos: Option<u64>,
}

#[derive(Debug)]
struct Collector {
    recs: Vec<Rec>,
    /// Monotonic take-generation: guards against a span closing across a
    /// [`take_spans`] boundary and touching a recycled index.
    session: u64,
    installer: ThreadId,
    /// The installer thread's open-span stack, mirrored here so orphan
    /// threads can adopt its innermost span as their parent.
    fallback: Vec<usize>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

fn lock() -> std::sync::MutexGuard<'static, Option<Collector>> {
    COLLECTOR.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install (or reset) the span collector on the calling thread. From this
/// point [`span`] records; the caller's thread becomes the parent anchor
/// for spans opened on worker threads.
pub fn install_collector() {
    let mut guard = lock();
    let session = guard.as_ref().map_or(0, |c| c.session + 1);
    *guard = Some(Collector {
        recs: Vec::new(),
        session,
        installer: std::thread::current().id(),
        fallback: Vec::new(),
    });
    drop(guard);
    ENABLED.store(true, Ordering::Release);
}

/// Whether a collector is currently installed.
pub fn collector_installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct SpanGuard {
    /// `(session, index)` of the opened rec; `None` when not collecting.
    opened: Option<(u64, usize)>,
}

impl SpanGuard {
    fn enter(label: &str) -> Self {
        let mut guard = lock();
        let Some(col) = guard.as_mut() else {
            return Self { opened: None };
        };
        let parent = STACK
            .with(|s| s.borrow().last().copied())
            .or_else(|| col.fallback.last().copied());
        let id = col.recs.len();
        col.recs.push(Rec {
            label: label.to_string(),
            parent,
            start: Instant::now(),
            nanos: None,
        });
        if std::thread::current().id() == col.installer {
            col.fallback.push(id);
        }
        let session = col.session;
        drop(guard);
        STACK.with(|s| s.borrow_mut().push(id));
        Self { opened: Some((session, id)) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((session, id)) = self.opened else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&id), "span exit out of order");
            stack.pop();
        });
        let mut guard = lock();
        let Some(col) = guard.as_mut() else {
            return;
        };
        if col.session != session {
            return; // the tree was taken while this span was open
        }
        if let Some(rec) = col.recs.get_mut(id) {
            rec.nanos = Some(u64::try_from(rec.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if std::thread::current().id() == col.installer && col.fallback.last() == Some(&id) {
            col.fallback.pop();
        }
    }
}

/// Run `f` inside a span labelled `label`.
///
/// Without an installed collector this is `f()` plus one relaxed atomic
/// load. The span closes when `f` returns *or unwinds*, so a panicking
/// phase still leaves a well-formed tree.
pub fn span<R>(label: &str, f: impl FnOnce() -> R) -> R {
    if !collector_installed() {
        return f();
    }
    let _guard = SpanGuard::enter(label);
    f()
}

/// Record an already-measured duration as a closed span under the current
/// innermost open span (or at the root when none is open).
///
/// This is how externally-accumulated phase times (see
/// [`crate::phases`]) enter the span tree: a phase like `render` is
/// interleaved per-snapshot across worker threads, so there is no
/// contiguous wall region to wrap with [`span`]. The reported duration is
/// whatever the caller measured — for worker-summed accumulators it can
/// exceed the parent span's wall time.
pub fn annotate_span(label: &str, wall_nanos: u64) {
    if !collector_installed() {
        return;
    }
    let mut guard = lock();
    let Some(col) = guard.as_mut() else {
        return;
    };
    let parent = STACK
        .with(|s| s.borrow().last().copied())
        .or_else(|| col.fallback.last().copied());
    col.recs.push(Rec {
        label: label.to_string(),
        parent,
        start: Instant::now(),
        nanos: Some(wall_nanos),
    });
}

/// Take the recorded span tree, leaving the collector installed and
/// empty. Spans still open at take time report their elapsed-so-far wall
/// time and will not be re-recorded when they close.
pub fn take_spans() -> Vec<SpanNode> {
    let mut guard = lock();
    let Some(col) = guard.as_mut() else {
        return Vec::new();
    };
    let recs = std::mem::take(&mut col.recs);
    col.fallback.clear();
    col.session += 1;

    // Children always allocate after their parent, so a reverse walk can
    // move every node into its parent; per-node child order is restored
    // afterwards.
    let mut nodes: Vec<Option<SpanNode>> = recs
        .iter()
        .map(|r| {
            Some(SpanNode {
                label: r.label.clone(),
                wall_nanos: r.nanos.unwrap_or_else(|| {
                    u64::try_from(r.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
                }),
                children: Vec::new(),
            })
        })
        .collect();
    let mut roots = Vec::new();
    for id in (0..recs.len()).rev() {
        let node = nodes[id].take().expect("each node moved once");
        match recs[id].parent {
            Some(p) => nodes[p].as_mut().expect("parent not yet moved").children.push(node),
            None => roots.push(node),
        }
    }
    roots.reverse();
    fn restore_order(node: &mut SpanNode) {
        node.children.reverse();
        for c in &mut node.children {
            restore_order(c);
        }
    }
    for r in &mut roots {
        restore_order(r);
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The collector is process-global, so span tests serialize on this.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn no_collector_is_a_passthrough() {
        let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // Not installed in this process yet (or taken): span must still run.
        assert_eq!(span("x", || 41 + 1), 42);
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install_collector();
        span("outer", || {
            span("a", || ());
            span("b", || span("b1", || ()));
        });
        let roots = take_spans();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].label, "outer");
        let kids: Vec<&str> = roots[0].children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(kids, ["a", "b"]);
        assert_eq!(roots[0].children[1].children[0].label, "b1");
        assert!(take_spans().is_empty(), "take drains the tree");
    }

    #[test]
    fn worker_thread_spans_adopt_the_installer_phase() {
        let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install_collector();
        span("phase", || {
            std::thread::scope(|s| {
                s.spawn(|| span("worker", || ()));
            });
        });
        let roots = take_spans();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].label, "worker");
    }

    #[test]
    fn annotate_attaches_under_the_open_span_with_the_given_duration() {
        let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install_collector();
        span("phase", || annotate_span("render", 1234));
        let roots = take_spans();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].label, "render");
        assert_eq!(roots[0].children[0].wall_nanos, 1234);
    }

    #[test]
    fn panicking_span_still_closes() {
        let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install_collector();
        let caught = std::panic::catch_unwind(|| span("boom", || panic!("x")));
        assert!(caught.is_err());
        span("after", || ());
        let roots = take_spans();
        let labels: Vec<&str> = roots.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["boom", "after"], "panicked span closed at root level");
    }
}
