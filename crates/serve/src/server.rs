//! The daemon: accept loop, router, bounded ingest queue, shutdown.
//!
//! Concurrency model (DESIGN.md §14):
//!
//! * The [`mpa_core::AnalyticsSession`] lives behind one `RwLock`. GET
//!   handlers take the read lock and render views from the eagerly
//!   refreshed analytics cache, so reads never compute.
//! * All mutation is serialized through a **bounded ingest queue**
//!   (`mpsc::sync_channel`): one worker thread applies each batch and
//!   refreshes the derived analytics under the write lock before
//!   answering the submitting handler. A full queue blocks the
//!   submitting connection — backpressure, not load shedding — so an
//!   accepted 2xx always means "applied and visible".
//! * Connections get one thread each (keep-alive, short read timeout).
//!   The accept loop polls with a non-blocking listener so it can watch
//!   the shutdown flag and the idle deadline between accepts.
//! * Shutdown (POST `/shutdown`, or `--idle-secs` with no traffic) stops
//!   accepting, lets in-flight connections drain, closes the ingest
//!   queue, then records latency percentiles and queue high-water into
//!   the observability gauges. The workspace denies `unsafe`, so there is
//!   deliberately no signal handler; supervisors use the HTTP shutdown or
//!   the idle deadline instead.

use crate::http::{self, ReadError, Request};
use crate::views;
use mpa_core::{AnalyticsSession, IngestBatch, IngestError, IngestOutcome};
use mpa_model::NetworkId;
use mpa_obs::counters;
use mpa_obs::gauges;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection read blocks before re-checking the shutdown
/// flag; also the drain latency bound for idle keep-alive connections.
const READ_TIMEOUT: Duration = Duration::from_millis(250);
/// Accept-loop poll interval when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Daemon configuration (the binary's flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Ingest queue depth before submitters block.
    pub queue_cap: usize,
    /// Exit after this many seconds without a request (`None` = serve
    /// until told to shut down).
    pub idle_secs: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:7878".into(), queue_cap: 64, idle_secs: None }
    }
}

struct IngestJob {
    batch: IngestBatch,
    reply: mpsc::Sender<Result<IngestOutcome, IngestError>>,
}

struct Shared {
    session: RwLock<AnalyticsSession>,
    shutdown: AtomicBool,
    started: Instant,
    /// Milliseconds since `started` of the most recent request or accept.
    last_activity_ms: AtomicU64,
    /// Submitted-but-unapplied ingest batches, and the deepest that got.
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    /// Per-request latencies in microseconds (drained into gauges at
    /// shutdown).
    latencies_us: Mutex<Vec<u64>>,
    ingest_tx: Mutex<Option<SyncSender<IngestJob>>>,
}

impl Shared {
    fn touch(&self) {
        let ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.last_activity_ms.store(ms, Ordering::Relaxed);
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, AnalyticsSession> {
        self.session.read().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bound, not-yet-running daemon. Created with [`Server::bind`] so the
/// caller can learn the actual address (ephemeral ports) before serving.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    ingest_worker: JoinHandle<()>,
}

impl Server {
    /// Build the daemon around an already-loaded session and bind the
    /// listener. The session's analytics are refreshed here so every read
    /// path finds the cache warm.
    pub fn bind(mut session: AnalyticsSession, config: &ServerConfig) -> std::io::Result<Server> {
        session.refresh();
        let shared = Arc::new(Shared {
            session: RwLock::new(session),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            last_activity_ms: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
            ingest_tx: Mutex::new(None),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_cap.max(1));
        *shared.ingest_tx.lock().unwrap_or_else(PoisonError::into_inner) = Some(tx);
        let worker_shared = Arc::clone(&shared);
        let ingest_worker = std::thread::spawn(move || ingest_worker(&worker_shared, &rx));
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server { listener, local_addr, shared, ingest_worker })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until shut down (POST `/shutdown` or the idle deadline),
    /// then drain connections, close the ingest queue and record the
    /// latency/queue gauges.
    pub fn run(self, idle_secs: Option<u64>) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    shared.touch();
                    handles.retain(|h| !h.is_finished());
                    let conn_shared = Arc::clone(shared);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(&conn_shared, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Some(limit) = idle_secs {
                        let idle_ms = u64::try_from(shared.started.elapsed().as_millis())
                            .unwrap_or(u64::MAX)
                            .saturating_sub(shared.last_activity_ms.load(Ordering::Relaxed));
                        if idle_ms >= limit.saturating_mul(1000) {
                            eprintln!("[mpa-serve] idle for {limit}s, shutting down");
                            shared.shutdown.store(true, Ordering::Release);
                        }
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: connections first (their ingest submissions must reach
        // the queue), then the worker.
        for h in handles {
            let _ = h.join();
        }
        drop(self.shared.ingest_tx.lock().unwrap_or_else(PoisonError::into_inner).take());
        let _ = self.ingest_worker.join();

        let mut lat = self
            .shared
            .latencies_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        lat.sort_unstable();
        if let Some(&max) = lat.last() {
            let at = |i: usize| lat.get(i).copied().unwrap_or(max);
            gauges::SERVE_LATENCY_P50_US.set(at(lat.len() / 2));
            gauges::SERVE_LATENCY_P99_US.set(at(lat.len() * 99 / 100));
            gauges::SERVE_LATENCY_MAX_US.set(max);
        }
        gauges::SERVE_QUEUE_PEAK.set(self.shared.queue_peak.load(Ordering::Relaxed));
        Ok(())
    }
}

fn ingest_worker(shared: &Shared, rx: &Receiver<IngestJob>) {
    for job in rx.iter() {
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let result = {
            let mut session = shared.session.write().unwrap_or_else(PoisonError::into_inner);
            let result = session.ingest(job.batch);
            if result.is_ok() {
                // Refresh under the write lock: once the submitter hears
                // 2xx, every read path sees the new corpus *and* the new
                // analytics.
                session.refresh();
            }
            result
        };
        let _ = job.reply.send(result);
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    loop {
        match http::read_request(&mut reader) {
            Ok(req) => {
                shared.touch();
                let started = Instant::now();
                let (status, body) = route(shared, &req);
                count_status(status);
                let keep = req.keep_alive && status < 500;
                if http::write_response(&mut out, status, &body, keep).is_err() {
                    break;
                }
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                shared
                    .latencies_us
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(us);
                if !keep {
                    break;
                }
            }
            Err(ReadError::Idle) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => break,
            Err(ReadError::Bad { status, reason }) => {
                count_status(status);
                let _ = http::write_response(&mut out, status, &views::error_body(reason), false);
                break;
            }
        }
    }
}

fn count_status(status: u16) {
    match status {
        200..=299 => counters::SERVE_RESPONSES_2XX.add(1),
        400..=499 => counters::SERVE_RESPONSES_4XX.add(1),
        _ => counters::SERVE_RESPONSES_5XX.add(1),
    }
}

/// The route table. Returns `(status, json_body)`; must never panic on
/// any input (the malformed-request test suite holds it to that).
fn route(shared: &Arc<Shared>, req: &Request) -> (u16, String) {
    counters::SERVE_REQUESTS.add(1);
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => get_only(req, "GET /healthz", || (200, views::healthz(&shared.read()))),
        ["networks", id, "practices"] => {
            let id = *id;
            get_only(req, "GET /networks/:id/practices", || {
                let Ok(id) = id.parse::<u32>() else {
                    return (400, views::error_body("network id must be an unsigned integer"));
                };
                match views::practices(&shared.read(), NetworkId(id)) {
                    Some(body) => (200, body),
                    None => (404, views::error_body("unknown network")),
                }
            })
        }
        ["rankings", "mi"] => get_only(req, "GET /rankings/mi", || {
            with_analytics(shared, |_, a| views::mi_ranking(a))
        }),
        ["causal", "summary"] => get_only(req, "GET /causal/summary", || {
            with_analytics(shared, |_, a| views::causal_summary(a))
        }),
        ["predict"] => get_only(req, "GET /predict", || predict(shared, req)),
        ["ingest"] => post_only(req, "POST /ingest", || ingest(shared, req)),
        ["shutdown"] => post_only(req, "POST /shutdown", || {
            shared.shutdown.store(true, Ordering::Release);
            (200, "{\"status\": \"draining\"}".to_string())
        }),
        _ => (404, views::error_body("no such endpoint")),
    }
}

fn get_only(req: &Request, label: &str, f: impl FnOnce() -> (u16, String)) -> (u16, String) {
    if req.method != "GET" {
        return (405, views::error_body("method not allowed (use GET)"));
    }
    mpa_obs::span(label, f)
}

fn post_only(req: &Request, label: &str, f: impl FnOnce() -> (u16, String)) -> (u16, String) {
    if req.method != "POST" {
        return (405, views::error_body("method not allowed (use POST)"));
    }
    mpa_obs::span(label, f)
}

fn with_analytics(
    shared: &Shared,
    f: impl FnOnce(&AnalyticsSession, &mpa_core::Analytics) -> String,
) -> (u16, String) {
    let session = shared.read();
    match session.analytics_cached() {
        Some(a) => (200, f(&session, a)),
        // Unreachable in practice: bind() and the ingest worker refresh
        // eagerly. Kept as a response, not an assert — the daemon must
        // not panic.
        None => (503, views::error_body("analytics not materialized")),
    }
}

fn predict(shared: &Shared, req: &Request) -> (u16, String) {
    let network = req.query_param("network");
    let month = req.query_param("month");
    match (network, month) {
        (None, None) => with_analytics(shared, views::predict_overview),
        (Some(n), Some(m)) => {
            let (Ok(n), Ok(m)) = (n.parse::<u32>(), m.parse::<usize>()) else {
                return (400, views::error_body("network and month must be unsigned integers"));
            };
            match views::predict_case(&shared.read(), NetworkId(n), m) {
                Some(body) => (200, body),
                None => (404, views::error_body("no such case (network, month)")),
            }
        }
        _ => (400, views::error_body("pass both network and month, or neither")),
    }
}

fn ingest(shared: &Shared, req: &Request) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, views::error_body("ingest body is not valid UTF-8"));
    };
    let batch: IngestBatch = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => return (400, views::error_body(&format!("ingest body is not a batch: {e}"))),
    };
    let tx = {
        let guard = shared.ingest_tx.lock().unwrap_or_else(PoisonError::into_inner);
        guard.clone()
    };
    let Some(tx) = tx else {
        return (503, views::error_body("shutting down"));
    };
    let depth = shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    shared.queue_peak.fetch_max(depth, Ordering::Relaxed);
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(IngestJob { batch, reply: reply_tx }).is_err() {
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        return (503, views::error_body("shutting down"));
    }
    match reply_rx.recv() {
        Ok(Ok(outcome)) => {
            counters::SERVE_INGEST_SNAPSHOTS.add(outcome.snapshots as u64);
            counters::SERVE_INGEST_TICKETS.add(outcome.tickets as u64);
            let events = shared.read().events_applied();
            (
                200,
                format!(
                    "{{\"status\": \"applied\", \"snapshots\": {}, \"tickets\": {}, \
                     \"networks_reinferred\": {}, \"events_applied\": {events}}}",
                    outcome.snapshots, outcome.tickets, outcome.networks_reinferred
                ),
            )
        }
        Ok(Err(e)) => {
            counters::SERVE_INGEST_REJECTED.add(1);
            (422, views::error_body(&e.to_string()))
        }
        Err(_) => (503, views::error_body("shutting down")),
    }
}
