//! # mpa-serve — the resident analytics daemon
//!
//! The batch CLI re-loads and re-computes everything per invocation; this
//! crate keeps one [`mpa_core::AnalyticsSession`] resident — snapshot
//! archive, ticket stream, case table, MI ranking, causal comparisons and
//! the fitted predictor — and serves them over hand-rolled HTTP/1.1
//! (std-only, like every other crate in the workspace):
//!
//! | endpoint | answers |
//! |---|---|
//! | `GET /healthz` | liveness + corpus shape (networks, months, cases, events) |
//! | `GET /networks/:id/practices` | one network's inferred practice metrics |
//! | `GET /rankings/mi` | the mutual-information practice ranking |
//! | `GET /causal/summary` | quasi-experimental comparisons for top practices |
//! | `GET /predict[?network=N&month=M]` | resident-model health predictions |
//! | `POST /ingest` | apply a snapshot/ticket batch online |
//! | `POST /shutdown` | drain and exit |
//!
//! The contract that makes the daemon trustworthy is **ingest equals
//! batch**: after any sequence of accepted `POST /ingest` batches, every
//! response body is byte-identical to what a freshly started daemon
//! serving the extended corpus would produce. The session layer provides
//! it (per-network re-inference through the exact batch code path, see
//! `mpa_core::session`), [`views`] keeps rendering pure, and the serve
//! test suite enforces it end to end.

pub mod http;
pub mod server;
pub mod views;

pub use server::{Server, ServerConfig};
