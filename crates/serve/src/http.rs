//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! `mpa-serve` follows the workspace's no-external-dependency policy, so
//! this module implements the small HTTP subset the daemon needs: request
//! line + headers + `Content-Length` bodies, keep-alive, and hard limits
//! on every dimension an untrusted peer controls. Anything outside that
//! subset is rejected with a 4xx/5xx — never a panic (the malformed-input
//! contract is regression-tested in `tests/serve.rs`).

use std::io::{BufReader, ErrorKind, Read, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Largest accepted request body (bounds ingest batches).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out with no bytes received (idle keep-alive).
    Idle,
    /// A transport error (reset, broken pipe, ...).
    Io(std::io::Error),
    /// The bytes received do not form an acceptable request; respond
    /// with `status` and close.
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable reason for the error body.
        reason: &'static str,
    },
}

fn bad(status: u16, reason: &'static str) -> ReadError {
    ReadError::Bad { status, reason }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Read one CRLF/LF-terminated line of at most `max` bytes. `first` marks
/// the request line, where EOF and timeouts are connection-lifecycle
/// events rather than protocol errors.
fn read_line_limited<R: Read>(
    reader: &mut BufReader<R>,
    max: usize,
    first: bool,
) -> Result<String, ReadError> {
    let mut line: Vec<u8> = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if first && line.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(bad(400, "unexpected end of request"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(bad(431, "line too long"));
                }
            }
            Err(e) if is_timeout(&e) => {
                if first && line.is_empty() {
                    return Err(ReadError::Idle);
                }
                return Err(bad(408, "request read timed out"));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad(400, "request is not valid UTF-8"))
}

/// Read and parse one request from the connection.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, ReadError> {
    let request_line = read_line_limited(reader, MAX_REQUEST_LINE, true)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(400, "malformed request line"));
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(505, "unsupported HTTP version"));
    }

    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length: usize = 0;
    for read_headers in 0.. {
        if read_headers >= MAX_HEADERS {
            return Err(bad(431, "too many headers"));
        }
        let line = read_line_limited(reader, MAX_HEADER_LINE, false)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, "malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| bad(400, "unparsable content-length"))?;
                if content_length > MAX_BODY {
                    return Err(bad(413, "request body too large"));
                }
            }
            "transfer-encoding" => {
                return Err(bad(501, "transfer-encoding is not supported"));
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if is_timeout(&e) {
                bad(408, "request body read timed out")
            } else if e.kind() == ErrorKind::UnexpectedEof {
                bad(400, "request body shorter than content-length")
            } else {
                ReadError::Io(e)
            }
        })?;
    }

    if !target.starts_with('/') {
        return Err(bad(400, "request target must be an absolute path"));
    }
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body,
        keep_alive,
    })
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write one JSON response (status line, headers, body).
pub fn write_response<W: Write>(
    out: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    out.write_all(head.as_bytes())?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse("GET /predict?network=3&month=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query_param("network"), Some("3"));
        assert_eq!(req.query_param("month"), Some("1"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req =
            parse("POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_4xx() {
        for (raw, want) in [
            ("NONSENSE\r\n\r\n", 400),
            ("GET /x HTTP/2\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            ("GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
            ("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            ("GET x HTTP/1.1\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
        ] {
            match parse(raw) {
                Err(ReadError::Bad { status, .. }) => {
                    assert_eq!(status, want, "status for {raw:?}")
                }
                other => panic!("{raw:?} should be Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_request_line_is_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(parse(&raw), Err(ReadError::Bad { status: 431, .. })));
    }

    #[test]
    fn response_writer_emits_well_formed_http() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
