//! JSON renderers for the daemon's endpoints.
//!
//! Every view is a pure function of the resident session state, emitted
//! with the same hand-rolled JSON primitives the run report uses
//! (`mpa_obs::json`) plus a float formatter. Purity is what makes the
//! ingest-equals-batch contract testable at the HTTP layer: two servers
//! holding equal sessions produce byte-identical response bodies.

use mpa_core::{Analytics, AnalyticsSession};
use mpa_metrics::{Case, Metric};
use mpa_model::NetworkId;
use mpa_obs::json::push_str_literal;

/// Append a finite float (shortest round-trip form) or `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Append a `"name": value` pair for every metric, in `Metric::ALL` order.
fn push_metric_values(out: &mut String, values: &[f64]) {
    out.push('{');
    for (i, (m, v)) in Metric::ALL.iter().zip(values).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_literal(out, m.name());
        out.push_str(": ");
        push_f64(out, *v);
    }
    out.push('}');
}

/// `GET /healthz` — liveness plus the corpus shape a client needs to
/// drive the other endpoints (network ids, month count, period bounds).
pub fn healthz(session: &AnalyticsSession) -> String {
    let ds = session.dataset();
    let devices: usize = ds.networks.iter().map(|n| n.devices.len()).sum();
    let mut out = String::with_capacity(256);
    out.push_str("{\"status\": \"ok\"");
    out.push_str(&format!(", \"networks\": {}", ds.networks.len()));
    out.push_str(&format!(", \"devices\": {devices}"));
    out.push_str(&format!(", \"months\": {}", ds.period.n_months()));
    out.push_str(&format!(", \"period_total_minutes\": {}", ds.period.total_minutes()));
    out.push_str(&format!(", \"cases\": {}", session.table().n_cases()));
    out.push_str(&format!(", \"snapshots\": {}", ds.archive.n_snapshots()));
    out.push_str(&format!(", \"tickets\": {}", ds.tickets.len()));
    out.push_str(&format!(", \"events_applied\": {}", session.events_applied()));
    out.push_str(", \"network_ids\": [");
    for (i, net) in ds.networks.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&net.id.0.to_string());
    }
    out.push_str("]}");
    out
}

fn push_case(out: &mut String, case: &Case) {
    out.push_str("{\"month\": ");
    out.push_str(&case.month.to_string());
    out.push_str(", \"tickets\": ");
    push_f64(out, case.tickets);
    out.push_str(", \"values\": ");
    push_metric_values(out, &case.values);
    out.push('}');
}

/// `GET /networks/:id/practices` — the network's inferred practice
/// metrics: one row per observed month plus the across-month means (the
/// Appendix A characterization). `None` for an unknown network id.
pub fn practices(session: &AnalyticsSession, id: NetworkId) -> Option<String> {
    let cases = session.network_cases(id)?;
    let mut out = String::with_capacity(1024);
    out.push_str(&format!("{{\"network\": {}", id.0));
    out.push_str(", \"months\": [");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&c.month.to_string());
    }
    out.push_str("], \"means\": ");
    if cases.is_empty() {
        out.push_str("null");
    } else {
        let n = cases.len() as f64;
        let mut means = vec![0.0; Metric::ALL.len()];
        let mut tickets = 0.0;
        for c in cases {
            for (m, v) in means.iter_mut().zip(&c.values) {
                *m += v;
            }
            tickets += c.tickets;
        }
        for m in &mut means {
            *m /= n;
        }
        push_metric_values(&mut out, &means);
        out.push_str(", \"mean_tickets\": ");
        push_f64(&mut out, tickets / n);
    }
    out.push_str(", \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_case(&mut out, c);
    }
    out.push_str("]}");
    Some(out)
}

/// `GET /rankings/mi` — the mutual-information practice ranking
/// (Table 3 ordering).
pub fn mi_ranking(analytics: &Analytics) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"entries\": [");
    for (i, e) in analytics.mi.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"rank\": {}, \"practice\": ", i + 1));
        push_str_literal(&mut out, e.metric.name());
        out.push_str(", \"category\": ");
        push_str_literal(&mut out, e.metric.category().tag());
        out.push_str(", \"mi\": ");
        push_f64(&mut out, e.mi);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// `GET /causal/summary` — the quasi-experimental comparison for each
/// top-MI practice (the `mpa-cli analyze` causal table, as JSON).
pub fn causal_summary(analytics: &Analytics) -> String {
    let cfg = &analytics.causal_config;
    let mut out = String::with_capacity(512);
    out.push_str(&format!("{{\"top\": {}, \"rows\": [", analytics.causal.len()));
    let mut first = true;
    for row in &analytics.causal {
        let Some(c) = row.analysis.low_bin_comparison() else {
            continue;
        };
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str("{\"treatment\": ");
        push_str_literal(&mut out, row.metric.name());
        out.push_str(&format!(", \"pairs\": {}", c.n_pairs));
        out.push_str(", \"p_value\": ");
        match c.p_value() {
            Some(p) => push_f64(&mut out, p),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ", \"balanced\": {}, \"imbalanced_covariates\": {}, \"causal\": {}}}",
            c.balanced(cfg),
            c.n_imbalanced_covariates,
            c.causal(cfg)
        ));
    }
    out.push_str("]}");
    out
}

/// `GET /predict` without parameters — the resident model's class
/// inventory and training distribution.
pub fn predict_overview(session: &AnalyticsSession, analytics: &Analytics) -> String {
    let names = session.config().classes.names();
    let mut out = String::with_capacity(256);
    out.push_str("{\"classes\": [");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_literal(&mut out, name);
    }
    out.push_str("], \"distribution\": [");
    for (i, n) in analytics.distribution.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&n.to_string());
    }
    out.push_str(&format!("], \"cases\": {}}}", session.table().n_cases()));
    out
}

/// `GET /predict?network=N&month=M` — the resident model's verdict on one
/// existing case. `None` when the case is not in the table.
pub fn predict_case(session: &AnalyticsSession, network: NetworkId, month: usize) -> Option<String> {
    let p = session.predict_case(network, month)?;
    let mut out = String::with_capacity(160);
    out.push_str(&format!(
        "{{\"network\": {}, \"month\": {month}, \"predicted\": {}, \"predicted_class\": ",
        network.0, p.predicted
    ));
    push_str_literal(&mut out, p.predicted_name);
    out.push_str(&format!(", \"actual\": {}, \"actual_class\": ", p.actual));
    push_str_literal(&mut out, p.actual_name);
    out.push('}');
    Some(out)
}

/// An error body: `{"error": "..."}`.
pub fn error_body(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 16);
    out.push_str("{\"error\": ");
    push_str_literal(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_core::{AnalyticsSession, SessionConfig};
    use mpa_synth::Scenario;

    fn session() -> AnalyticsSession {
        let mut s = AnalyticsSession::new(Scenario::tiny().generate(), SessionConfig::default());
        s.refresh();
        s
    }

    /// Brace/bracket balance outside string literals — cheap
    /// well-formedness without a parser dependency (the integration tests
    /// parse real responses with serde_json).
    fn assert_balanced(json: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (false, _, '"') => in_str = true,
                (false, _, '{' | '[') => depth += 1,
                (false, _, '}' | ']') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced: {json}");
        }
        assert_eq!(depth, 0, "unbalanced: {json}");
        assert!(!in_str, "unterminated string: {json}");
    }

    #[test]
    fn every_view_renders_well_formed_json() {
        let s = session();
        let a = s.analytics_cached().expect("refreshed");
        let net = s.dataset().networks[0].id;
        let month = s.table().cases()[0].month;
        let first_net = s.table().cases()[0].network;
        for json in [
            healthz(&s),
            practices(&s, net).expect("known network"),
            mi_ranking(a),
            causal_summary(a),
            predict_overview(&s, a),
            predict_case(&s, first_net, month).expect("case exists"),
            error_body("boom \"quoted\""),
        ] {
            assert_balanced(&json);
        }
    }

    #[test]
    fn healthz_reports_the_corpus_shape() {
        let s = session();
        let json = healthz(&s);
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains(&format!("\"cases\": {}", s.table().n_cases())));
        assert!(json.contains("\"events_applied\": 0"));
    }

    #[test]
    fn unknown_network_renders_nothing() {
        let s = session();
        assert!(practices(&s, NetworkId(u32::MAX)).is_none());
        assert!(predict_case(&s, NetworkId(u32::MAX), 0).is_none());
    }

    #[test]
    fn float_formatting_is_null_for_non_finite() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, 1.5);
        assert_eq!(out, "null 1.5");
    }
}
