//! `mpa-serve` — serve a generated corpus as a resident analytics daemon.
//!
//! ```text
//! mpa-serve --dataset dataset.json [--addr 127.0.0.1:7878] [--threads N]
//!           [--queue-cap N] [--idle-secs N] [--delta MIN]
//!           [--infer-mode delta|full] [--causal-top N] [--classes 2|5]
//!           [--obs-out run.json]
//! ```
//!
//! The dataset is loaded and inferred once; queries are answered from the
//! resident state and `POST /ingest` grows it online (see the crate
//! docs). On shutdown the run report (`--obs-out`) carries the serve
//! counters, latency gauges and per-endpoint spans.

use mpa_core::predict::HealthClasses;
use mpa_core::{AnalyticsSession, SessionConfig};
use mpa_metrics::InferMode;
use mpa_serve::{Server, ServerConfig};
use mpa_synth::Dataset;

fn usage_and_exit() -> ! {
    eprintln!(
        "mpa-serve — resident Management Plane Analytics daemon\n\n\
         usage:\n\
           mpa-serve --dataset dataset.json [--addr HOST:PORT] [--threads N]\n\
                     [--queue-cap N] [--idle-secs N] [--delta MIN]\n\
                     [--infer-mode delta|full] [--causal-top N] [--classes 2|5]\n\
                     [--obs-out run.json]\n\n\
         endpoints: GET /healthz, /networks/:id/practices, /rankings/mi,\n\
         /causal/summary, /predict[?network=N&month=M]; POST /ingest, /shutdown"
    );
    std::process::exit(2);
}

/// Parse a numeric flag value or exit 2 (an invalid `--queue-cap abc`
/// must never silently fall back to a default — same contract as
/// `mpa-cli`).
fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an unsigned integer, got {raw:?}");
        std::process::exit(2);
    })
}

struct Opts {
    dataset: String,
    addr: String,
    threads: Option<usize>,
    queue_cap: usize,
    idle_secs: Option<u64>,
    delta: Option<u64>,
    infer_mode: InferMode,
    causal_top: usize,
    classes: HealthClasses,
    obs_out: Option<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut dataset = None;
        let mut addr = ServerConfig::default().addr;
        let mut threads = None;
        let mut queue_cap = ServerConfig::default().queue_cap;
        let mut idle_secs = None;
        let mut delta = None;
        let mut infer_mode = InferMode::default();
        let mut causal_top = SessionConfig::default().causal_top;
        let mut classes = HealthClasses::Two;
        let mut obs_out = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next().cloned().unwrap_or_else(|| {
                    eprintln!("flag {flag} needs a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--dataset" => dataset = Some(value()),
                "--addr" => addr = value(),
                "--threads" => threads = Some(parse_num("--threads", &value())),
                "--queue-cap" => queue_cap = parse_num("--queue-cap", &value()),
                "--idle-secs" => idle_secs = Some(parse_num("--idle-secs", &value())),
                "--delta" => delta = Some(parse_num("--delta", &value())),
                "--infer-mode" => {
                    let raw = value();
                    infer_mode = InferMode::parse(&raw).unwrap_or_else(|| {
                        eprintln!("--infer-mode must be \"delta\" or \"full\", got {raw:?}");
                        std::process::exit(2);
                    });
                }
                "--causal-top" => causal_top = parse_num("--causal-top", &value()),
                "--classes" => {
                    classes = match value().as_str() {
                        "2" => HealthClasses::Two,
                        "5" => HealthClasses::Five,
                        other => {
                            eprintln!("--classes must be 2 or 5, got {other}");
                            std::process::exit(2);
                        }
                    };
                }
                "--obs-out" => obs_out = Some(value()),
                "--help" | "-h" => usage_and_exit(),
                other => {
                    eprintln!("unknown flag {other:?}");
                    usage_and_exit();
                }
            }
        }
        let Some(dataset) = dataset else {
            eprintln!("--dataset <file> is required");
            std::process::exit(2);
        };
        Opts {
            dataset,
            addr,
            threads,
            queue_cap,
            idle_secs,
            delta,
            infer_mode,
            causal_top,
            classes,
            obs_out,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Opts::parse(&args);
    if let Some(n) = opts.threads {
        mpa_exec::set_threads(n);
    }
    if opts.obs_out.is_some() {
        mpa_obs::install_collector();
    }

    let json = std::fs::read_to_string(&opts.dataset).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", opts.dataset);
        std::process::exit(1);
    });
    let mut dataset: Dataset = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("{} is not a dataset JSON: {e}", opts.dataset);
        std::process::exit(1);
    });
    dataset.inventory.rebuild_index(); // skipped field; see Inventory docs

    let session_config = SessionConfig {
        delta_minutes: opts.delta.unwrap_or(mpa_metrics::DELTA_DEFAULT_MINUTES),
        mode: opts.infer_mode,
        causal_top: opts.causal_top,
        classes: opts.classes,
    };
    let session = mpa_obs::span("serve build session", || {
        AnalyticsSession::new(dataset, session_config)
    });
    eprintln!(
        "[mpa-serve] resident: {} networks, {} cases",
        session.dataset().networks.len(),
        session.table().n_cases()
    );

    let server_config = ServerConfig {
        addr: opts.addr.clone(),
        queue_cap: opts.queue_cap,
        idle_secs: opts.idle_secs,
    };
    let server = Server::bind(session, &server_config).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", opts.addr);
        std::process::exit(1);
    });
    // Tests and supervisors parse this line for the actual (possibly
    // ephemeral) port; the session is fully built by now, so a visible
    // address means "ready".
    eprintln!("[mpa-serve] listening on {}", server.local_addr());

    if let Err(e) = server.run(server_config.idle_secs) {
        eprintln!("[mpa-serve] accept loop failed: {e}");
        std::process::exit(1);
    }

    if let Some(path) = &opts.obs_out {
        let report = mpa_obs::RunReport::gather();
        report.write(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[mpa-serve] wrote run report {path}");
    }
    eprintln!(
        "[mpa-serve] served {} requests; shut down cleanly",
        mpa_obs::counters::SERVE_REQUESTS.get()
    );
}
