//! End-to-end tests of the `mpa-serve` daemon binary: spawn the real
//! process on an ephemeral port, drive it over real sockets.
//!
//! Covered contracts:
//! * endpoint goldens — committed response bytes for every GET endpoint
//!   (regenerate with `MPA_GOLDEN_WRITE=1 cargo test -p mpa-serve`);
//! * concurrency determinism — 16 hammering clients read the same bytes
//!   a single client does;
//! * ingest-equals-batch — responses after an HTTP ingest are
//!   byte-identical to an in-process [`AnalyticsSession`] fed the same
//!   batch (which the root `serve_session` property test in turn pins to
//!   a cold batch run);
//! * malformed requests get 4xx responses, never a hung or dead daemon;
//! * graceful shutdown drains, exits 0, and writes the obs report;
//! * `--idle-secs` lets the daemon retire itself.

use mpa_core::{AnalyticsSession, IngestBatch, SessionConfig};
use mpa_model::{NetworkId, Ticket, TicketId, TicketKind, TicketSeverity, Timestamp};
use mpa_serve::views;
use mpa_synth::{Dataset, Scenario};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Tiny corpus shared by every test in this process, written to a
/// pid-scoped temp path so parallel `cargo test` invocations don't race.
fn tiny_dataset_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let path =
            std::env::temp_dir().join(format!("mpa_serve_test_{}.json", std::process::id()));
        let json = serde_json::to_string(&Scenario::tiny().generate()).expect("serializes");
        std::fs::write(&path, json).expect("write tiny dataset");
        path
    })
}

fn tiny_dataset() -> Dataset {
    let text = std::fs::read_to_string(tiny_dataset_path()).expect("read tiny dataset");
    let mut ds: Dataset = serde_json::from_str(&text).expect("parse tiny dataset");
    ds.inventory.rebuild_index();
    ds
}

fn tiny_session() -> AnalyticsSession {
    AnalyticsSession::new(tiny_dataset(), SessionConfig::default())
}

/// A spawned daemon bound to an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mpa-serve"))
            .args(["--dataset", tiny_dataset_path().to_str().expect("utf-8 path")])
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn mpa-serve");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read daemon stderr");
            if let Some(addr) = line.strip_prefix("[mpa-serve] listening on ") {
                break addr.trim().to_string();
            }
        };
        // Keep draining stderr so the daemon can't block on a full pipe.
        std::thread::spawn(move || for _ in lines.by_ref() {});
        Self { child, addr }
    }

    fn shutdown(&mut self) -> std::process::ExitStatus {
        let (status, _) = self.post("/shutdown", "");
        assert_eq!(status, 200, "shutdown endpoint");
        self.wait_for_exit()
    }

    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < deadline, "daemon did not exit within 30s");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn get(&self, path: &str) -> (u16, String) {
        request(&self.addr, "GET", path, "")
    }

    fn post(&self, path: &str, body: &str) -> (u16, String) {
        request(&self.addr, "POST", path, body)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One-shot HTTP/1.1 request over a fresh connection.
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    raw_request(
        stream,
        &format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
    .expect("well-formed request gets a response")
}

/// Write raw bytes, read one full response. `None` if the daemon closed
/// the connection without responding (it never should — even garbage gets
/// a 4xx).
fn raw_request(stream: TcpStream, payload: &str) -> Option<(u16, String)> {
    let mut writer = stream.try_clone().expect("clone stream");
    writer.write_all(payload.as_bytes()).ok()?;
    writer.flush().ok()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).ok()? == 0 {
        return None;
    }
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header).ok()? == 0 {
            return None;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8(body).ok()?))
}

/// A `(network, month)` coordinate that has a case, plus a network id —
/// pulled from the in-process session so tests never guess.
fn known_case() -> (u32, usize) {
    let session = tiny_session();
    let net = session.dataset().networks[0].id;
    let cases = session.network_cases(net).expect("first network has rows");
    (net.0, cases.first().expect("at least one case").month)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn endpoint_responses_match_golden_files() {
    let daemon = Daemon::spawn(&[]);
    let (net, month) = known_case();
    let fixtures: Vec<(&str, String)> = vec![
        ("healthz.json", "/healthz".to_string()),
        ("practices.json", format!("/networks/{net}/practices")),
        ("rankings_mi.json", "/rankings/mi".to_string()),
        ("causal_summary.json", "/causal/summary".to_string()),
        ("predict_overview.json", "/predict".to_string()),
        ("predict_case.json", format!("/predict?network={net}&month={month}")),
    ];
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden");
    let write = std::env::var("MPA_GOLDEN_WRITE").is_ok_and(|v| v == "1");
    if write {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    for (name, path) in fixtures {
        let (status, body) = daemon.get(&path);
        assert_eq!(status, 200, "GET {path}");
        let file = dir.join(name);
        if write {
            std::fs::write(&file, &body).expect("write golden");
            continue;
        }
        let committed = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", file.display()));
        assert_eq!(
            committed, body,
            "{name} drifted from the committed golden; if intentional, \
             regenerate with MPA_GOLDEN_WRITE=1"
        );
    }
}

#[test]
fn sixteen_concurrent_clients_read_the_same_bytes_as_one() {
    let daemon = Daemon::spawn(&[]);
    let (net, month) = known_case();
    let paths: Vec<String> = vec![
        "/healthz".to_string(),
        format!("/networks/{net}/practices"),
        "/rankings/mi".to_string(),
        "/causal/summary".to_string(),
        format!("/predict?network={net}&month={month}"),
    ];
    let baseline: Vec<(u16, String)> = paths.iter().map(|p| daemon.get(p)).collect();
    for (status, _) in &baseline {
        assert_eq!(*status, 200);
    }
    std::thread::scope(|scope| {
        for client in 0..16 {
            let daemon = &daemon;
            let paths = &paths;
            let baseline = &baseline;
            scope.spawn(move || {
                // Stagger starting offsets so clients hit different
                // endpoints at the same instant.
                for i in 0..paths.len() {
                    let idx = (client + i) % paths.len();
                    let got = daemon.get(&paths[idx]);
                    assert_eq!(got, baseline[idx], "client {client}, {}", paths[idx]);
                }
            });
        }
    });
}

#[test]
fn http_ingest_matches_an_in_process_session_byte_for_byte() {
    let daemon = Daemon::spawn(&[]);
    let mut session = tiny_session();
    let nets: Vec<NetworkId> =
        session.dataset().networks.iter().take(2).map(|n| n.id).collect();
    let horizon = session.dataset().period.total_minutes();
    let batch = IngestBatch {
        snapshots: vec![],
        tickets: nets
            .iter()
            .enumerate()
            .map(|(i, &net)| Ticket {
                id: TicketId(90_000_000 + i as u32),
                network: net,
                kind: TicketKind::UserReport,
                opened: Timestamp(horizon.saturating_sub(10 + i as u64)),
                resolved: None,
                devices: vec![],
                severity: TicketSeverity::High,
                symptom: "ingest parity test".to_string(),
            })
            .collect(),
    };

    let (status, body) =
        daemon.post("/ingest", &serde_json::to_string(&batch).expect("batch serializes"));
    assert_eq!(status, 200, "ingest response: {body}");
    let outcome = session.ingest(batch).expect("in-process ingest accepts the same batch");
    assert!(body.contains(&format!("\"tickets\": {}", outcome.tickets)));

    // Every endpoint must now render exactly what the in-process session
    // renders — the daemon holds no state of its own.
    assert_eq!(daemon.get("/healthz").1, views::healthz(&session));
    for &net in &nets {
        assert_eq!(
            daemon.get(&format!("/networks/{}/practices", net.0)).1,
            views::practices(&session, net).expect("known network")
        );
    }
    session.refresh();
    let analytics = session.analytics_cached().expect("just refreshed");
    assert_eq!(daemon.get("/rankings/mi").1, views::mi_ranking(analytics));
    assert_eq!(daemon.get("/causal/summary").1, views::causal_summary(analytics));
    assert_eq!(daemon.get("/predict").1, views::predict_overview(&session, analytics));
}

#[test]
fn rejected_and_malformed_requests_get_4xx_and_the_daemon_survives() {
    let daemon = Daemon::spawn(&[]);

    // Raw-socket malformations: (payload, expected status).
    let raw_cases: &[(&str, u16)] = &[
        ("GARBAGE\r\n\r\n", 400),
        ("GET /healthz HTTP/2.0\r\n\r\n", 505),
        (&format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(9000)), 431),
        ("GET healthz HTTP/1.1\r\n\r\n", 400),
        ("POST /ingest HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        ("POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
    ];
    for (payload, want) in raw_cases {
        let stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
        let (status, _) = raw_request(stream, payload)
            .unwrap_or_else(|| panic!("no response to {payload:?}"));
        assert_eq!(status, *want, "payload {payload:?}");
    }

    // Well-formed but invalid requests.
    let (status, _) = daemon.get("/no/such/endpoint");
    assert_eq!(status, 404);
    let (status, _) = daemon.post("/healthz", "");
    assert_eq!(status, 405);
    let (status, _) = daemon.get("/ingest");
    assert_eq!(status, 405);
    let (status, _) = daemon.get("/predict?network=1");
    assert_eq!(status, 400, "predict needs both params or neither");
    let (status, _) = daemon.get("/predict?network=abc&month=0");
    assert_eq!(status, 400);
    let (status, _) = daemon.get("/networks/999999/practices");
    assert_eq!(status, 404);
    let (status, body) = daemon.post("/ingest", "{not json");
    assert_eq!(status, 400, "body: {body}");
    let (status, body) = daemon.post(
        "/ingest",
        "{\"snapshots\": [], \"tickets\": [{\"id\": 7, \"network\": 999999, \
         \"kind\": \"UserReport\", \"opened\": 1, \"resolved\": null, \
         \"devices\": [], \"severity\": \"Low\", \"symptom\": \"x\"}]}",
    );
    assert_eq!(status, 422, "body: {body}");
    assert!(body.contains("unknown network"), "body: {body}");

    // After all of that the daemon still answers.
    let (status, body) = daemon.get("/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""));
}

#[test]
fn graceful_shutdown_drains_and_writes_the_obs_report() {
    let report =
        std::env::temp_dir().join(format!("mpa_serve_report_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&report);
    let mut daemon =
        Daemon::spawn(&["--obs-out", report.to_str().expect("utf-8 path")]);
    for _ in 0..3 {
        assert_eq!(daemon.get("/healthz").0, 200);
    }
    let status = daemon.shutdown();
    assert!(status.success(), "daemon exit status {status}");
    let text = std::fs::read_to_string(&report).expect("obs report written on shutdown");
    for needle in ["serve_requests", "serve_responses_2xx", "serve build session"] {
        assert!(text.contains(needle), "report lacks {needle}");
    }
    let _ = std::fs::remove_file(&report);
}

#[test]
fn idle_timeout_retires_the_daemon_cleanly() {
    let mut daemon = Daemon::spawn(&["--idle-secs", "1"]);
    assert_eq!(daemon.get("/healthz").0, 200);
    let status = daemon.wait_for_exit();
    assert!(status.success(), "idle exit status {status}");
}
