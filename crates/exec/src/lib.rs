//! Deterministic data-parallel execution primitives for the MPA pipeline.
//!
//! Every hot layer of the workspace (synth generation, case-table
//! inference, MI/CMI ranking, causal matching, forest/CV fitting) fans out
//! through this crate. Two properties are load-bearing:
//!
//! 1. **Determinism.** [`par_map`] returns results in input order no matter
//!    how the items were scheduled across threads, and callers derive any
//!    randomness from per-item seed streams ([`stream_seed`]) rather than a
//!    shared sequential RNG. Together these make every pipeline output
//!    bit-for-bit identical at 1, 2, or 64 threads.
//! 2. **No unsafe.** Workers communicate only by returning owned
//!    `(index, result)` pairs from scoped threads; the workspace-wide
//!    `unsafe_code = "deny"` lint stays intact.
//!
//! Thread count resolves, in order: [`set_threads`] (the `--threads` flag),
//! the `MPA_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. Nested parallel regions run
//! sequentially instead of oversubscribing (a `par_map` inside a `par_map`
//! worker does not spawn again).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Thread count explicitly requested via [`set_threads`]; 0 = unset.
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `MPA_THREADS` environment override, read once.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// True inside a `par_map` worker: nested regions stay sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Pin the number of worker threads for all parallel regions.
///
/// `0` restores automatic selection (`MPA_THREADS` or the machine's
/// available parallelism). Binaries plumb their `--threads` flag here.
pub fn set_threads(n: usize) {
    REQUESTED_THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads parallel regions will use right now.
pub fn threads() -> usize {
    let n = resolve_threads();
    mpa_obs::gauges::EXEC_THREADS.set(n as u64);
    n
}

fn resolve_threads() -> usize {
    let requested = REQUESTED_THREADS.load(Ordering::Relaxed);
    if requested > 0 {
        return requested;
    }
    let env = ENV_THREADS.get_or_init(|| {
        // mpa-lint: allow(R6) -- MPA_THREADS is the documented thread-count override, read once before any pipeline work; it sets how results are computed, never what they are
        std::env::var("MPA_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
    });
    if let Some(n) = *env {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Map `f` over `items` on the configured worker threads, returning results
/// in input order.
///
/// Workers pull the next unclaimed index from a shared counter (dynamic
/// load balancing — per-network work in this codebase is heavily skewed)
/// and collect `(index, result)` pairs locally; the pairs are merged and
/// sorted by index at the end, so the output is independent of scheduling.
/// Falls back to a plain sequential map when 1 thread is configured, the
/// input is trivially small, or the caller is itself a parallel worker.
///
/// # Panics
/// Propagates panics from `f` (the first panicking worker aborts the map).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Counted before the sequential-fallback check, so the totals are a
    // pure function of the work submitted — invariant across thread
    // counts (the obs counter contract).
    mpa_obs::counters::PAR_MAP_REGIONS.incr();
    mpa_obs::counters::PAR_MAP_TASKS.add(items.len() as u64);
    par_map_impl(items, f)
}

/// The uncounted engine behind [`par_map`] (also driven by
/// [`par_chunk_map`], which counts its own logical items rather than the
/// chunks it schedules).
fn par_map_impl<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n_threads = threads().min(items.len());
    if n_threads <= 1 || IN_WORKER.with(Cell::get) {
        mpa_obs::sched::record_worker(0, items.len() as u64);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(n_threads);
    // Measured occupancy: each worker reports the CPU time its thread
    // actually consumed, and the region times its wall clock, so
    // `sum(busy) / wall` is the parallelism the region *achieved*. CPU
    // time (not thread lifetime) is essential: on a one-core or
    // oversubscribed host a descheduled worker still accrues wall time,
    // which would report phantom parallelism.
    let mut busy_ns = 0u64;
    let region_start = Instant::now();
    std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..n_threads)
            .map(|slot| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let wall_start = Instant::now();
                    let cpu_start = thread_cpu_ns();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    mpa_obs::sched::record_worker(slot, local.len() as u64);
                    let busy = cpu_start
                        .and_then(|c0| thread_cpu_ns().map(|c1| c1.saturating_sub(c0)))
                        .unwrap_or_else(|| wall_start.elapsed().as_nanos() as u64);
                    (local, busy)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((part, ns)) => {
                    busy_ns += ns;
                    parts.push(part);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let wall_ns = region_start.elapsed().as_nanos() as u64;

    let busiest = parts.iter().map(Vec::len).max().unwrap_or(0);
    let idlest = parts.iter().map(Vec::len).min().unwrap_or(0);
    mpa_obs::sched::record_region((busiest - idlest) as u64);
    let active = parts.iter().filter(|p| !p.is_empty()).count() as u64;
    mpa_obs::sched::record_region_occupancy(busy_ns, wall_ns, active);

    let mut merged: Vec<(usize, R)> = parts.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(merged.len(), items.len());
    merged.into_iter().map(|(_, r)| r).collect()
}

/// CPU time consumed by the calling thread, in nanoseconds, read from
/// `/proc/thread-self/stat` (utime + stime, in USER_HZ ticks; the Linux
/// userspace ABI fixes USER_HZ at 100 regardless of the kernel's HZ).
/// `None` where `/proc` is unavailable (non-Linux hosts); occupancy then
/// falls back to worker wall time, which overestimates on oversubscribed
/// hosts but keeps the stat defined everywhere.
fn thread_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // utime/stime are fields 14/15, but the comm field (2) may contain
    // spaces — index from the closing paren instead of the line start.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) * 10_000_000)
}

/// Map `f` over contiguous chunks of `items` in parallel, concatenating the
/// per-chunk outputs in order.
///
/// For flat per-element work (e.g. classifying every instance of a learn
/// set) where spawning per element would drown the work in bookkeeping.
/// `min_chunk` bounds how finely the input is split; outputs must be
/// one-per-element for the concatenation to line up with the input.
pub fn par_chunk_map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let min_chunk = min_chunk.max(1);
    // Counted in input elements (not chunks): chunk geometry depends on
    // the thread count, element totals do not.
    mpa_obs::counters::PAR_MAP_REGIONS.incr();
    mpa_obs::counters::PAR_MAP_TASKS.add(items.len() as u64);
    let n_threads = threads().min(items.len().div_ceil(min_chunk));
    if n_threads <= 1 || IN_WORKER.with(Cell::get) {
        // Record logical items, matching `par_map`'s fallback — scheduling
        // stats must not undercount single-threaded runs.
        mpa_obs::sched::record_worker(0, items.len() as u64);
        return f(items);
    }
    let chunk = items.len().div_ceil(n_threads);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    par_map_impl(&chunks, |_, c| f(c)).into_iter().flatten().collect()
}

/// Map `f` over `items` **by value** on the configured worker threads,
/// returning results in input order.
///
/// The consuming counterpart of [`par_map`], for transforms that want to
/// take ownership of each item (remap in place, move big buffers into the
/// result) and free the item's allocations on the worker as soon as it is
/// processed — instead of holding the whole input alive until the region
/// ends. Each item is parked in its own mutex slot and taken exactly once,
/// which keeps the crate free of `unsafe`; the per-item lock is uncontended
/// (a slot is touched by exactly one worker) and is noise at the coarse
/// granularity this crate schedules.
///
/// Determinism and observability follow [`par_map`]: results are merged in
/// input order, and regions/tasks are counted before the
/// sequential-fallback check.
///
/// # Panics
/// Propagates panics from `f` (the first panicking worker aborts the map).
pub fn par_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    mpa_obs::counters::PAR_MAP_REGIONS.incr();
    mpa_obs::counters::PAR_MAP_TASKS.add(items.len() as u64);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    par_map_impl(&slots, |i, slot| {
        let item = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("each slot is claimed exactly once");
        f(i, item)
    })
}

/// Derive an independent RNG seed stream from a master seed.
///
/// Used by synth (per-network), learn (per-tree, per-class) and anywhere
/// else that fans seeded work out: `stream_seed(master, k)` for distinct
/// `k` yields statistically independent, fully deterministic streams, so
/// results do not depend on the order (or thread) in which items run.
/// The mix is SplitMix64 over a golden-ratio spread of the stream index.
#[must_use]
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f` as an observability span named `label`, additionally printing
/// `[mpa] <label>: <elapsed>` to stderr when phase timing is enabled (the
/// binaries enable it; library/test callers don't).
///
/// This is a thin shim over [`mpa_obs::span`]: the span records into the
/// run report whenever a collector is installed (`--obs-out`), and the
/// stderr line keeps the historical `timed_phase` behavior for existing
/// call sites.
pub fn timed_phase<R>(label: &str, f: impl FnOnce() -> R) -> R {
    mpa_obs::span(label, || {
        if !phase_timing_enabled() {
            return f();
        }
        let start = Instant::now();
        let result = f();
        eprintln!("[mpa] {label}: {:.2?}", start.elapsed());
        result
    })
}

static PHASE_TIMING: AtomicUsize = AtomicUsize::new(0);

/// Enable or disable [`timed_phase`] output (off by default).
pub fn set_phase_timing(on: bool) {
    PHASE_TIMING.store(usize::from(on), Ordering::Relaxed);
}

/// Whether [`timed_phase`] currently prints.
pub fn phase_timing_enabled() -> bool {
    PHASE_TIMING.load(Ordering::Relaxed) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scoped, mutex-guarded override of the process-wide thread request.
    ///
    /// `cargo test` runs tests on concurrent threads, and
    /// `REQUESTED_THREADS` is process-global: a bare
    /// `set_threads(8) … set_threads(0)` pair in one test races with every
    /// other test's window (one test could observe another's reset
    /// mid-run). The guard serializes all thread-count-sensitive tests on
    /// one mutex and restores the previous request on drop, panic
    /// included.
    struct ThreadGuard {
        prev: usize,
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    impl ThreadGuard {
        /// Acquire the test lock and pin the requested thread count.
        fn pin(n: usize) -> Self {
            static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
            let lock = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let prev = REQUESTED_THREADS.load(Ordering::Relaxed);
            set_threads(n);
            Self { prev, _lock: lock }
        }

        /// Re-pin while continuing to hold the lock (for tests that sweep
        /// several thread counts).
        fn set(&self, n: usize) {
            set_threads(n);
        }
    }

    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            REQUESTED_THREADS.store(self.prev, Ordering::Relaxed);
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..997).collect();
        let _threads = ThreadGuard::pin(8);
        let par: Vec<u64> = par_map(&items, |i, &x| {
            // Uneven work to force out-of-order completion.
            let spin = (x % 7) * 50;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            // Keep the spin loop and the index observable without
            // affecting the value under test.
            std::hint::black_box((acc, i));
            x * 2
        });
        let seq: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let items: Vec<u32> = (0..64).collect();
        let expect: Vec<u32> = items.iter().map(|x| x * x).collect();
        let threads = ThreadGuard::pin(1);
        for t in [1, 2, 3, 8] {
            threads.set(t);
            assert_eq!(par_map(&items, |_, &x| x * x), expect, "threads={t}");
        }
    }

    #[test]
    fn par_chunk_map_concatenates_in_order() {
        let items: Vec<u32> = (0..1000).collect();
        let _threads = ThreadGuard::pin(4);
        let out = par_chunk_map(&items, 16, |chunk| chunk.iter().map(|x| x + 1).collect());
        assert_eq!(out, (1..=1000).collect::<Vec<u32>>());
    }

    #[test]
    fn nested_par_map_stays_sequential() {
        let _threads = ThreadGuard::pin(4);
        let outer: Vec<usize> = par_map(&[10usize, 20, 30], |_, &n| {
            // Inner region must not spawn (and must still be correct).
            par_map(&(0..n).collect::<Vec<_>>(), |_, &x| x).len()
        });
        assert_eq!(outer, vec![10, 20, 30]);
    }

    #[test]
    fn thread_guard_restores_previous_request() {
        let outer = ThreadGuard::pin(6);
        assert_eq!(threads(), 6);
        drop(outer);
        {
            let _inner = ThreadGuard::pin(3);
            assert_eq!(threads(), 3);
        }
        // After the scope, the pre-guard request (whatever it was) is
        // back; pin once more to observe a clean slate.
        let again = ThreadGuard::pin(5);
        assert_eq!(threads(), 5);
        drop(again);
    }

    #[test]
    fn par_map_owned_consumes_and_preserves_order() {
        let items: Vec<String> = (0..321).map(|i| format!("item {i}")).collect();
        let expect: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        let threads = ThreadGuard::pin(1);
        for t in [1, 2, 8] {
            threads.set(t);
            let owned = items.clone();
            // `f` takes the String by value — no clone inside the region.
            let out = par_map_owned(owned, |_, mut s| {
                s.push('!');
                s
            });
            assert_eq!(out, expect, "threads={t}");
        }
        let empty: Vec<String> = Vec::new();
        assert!(par_map_owned(empty, |_, s: String| s).is_empty());
    }

    #[test]
    fn par_chunk_map_fallback_records_logical_items() {
        // Regression: the sequential fallback used to record a single
        // scheduling unit regardless of input size, undercounting
        // `--threads 1` runs relative to `par_map`'s fallback.
        let _threads = ThreadGuard::pin(1);
        let before = mpa_obs::sched::snapshot();
        let items: Vec<u32> = (0..137).collect();
        let _ = par_chunk_map(&items, 8, |c| c.to_vec());
        let after = mpa_obs::sched::snapshot();
        let slot0 = |s: &mpa_obs::sched::SchedSnapshot| s.worker_tasks.first().copied().unwrap_or(0);
        assert!(
            slot0(&after) >= slot0(&before) + 137,
            "fallback must record all {} items on slot 0 (before {}, after {})",
            items.len(),
            slot0(&before),
            slot0(&after)
        );
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..10_000 {
            assert!(seen.insert(stream_seed(0x4D50_4131, k)), "collision at {k}");
        }
        // Different masters diverge too.
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
    }

    #[test]
    fn empty_and_single_inputs() {
        let _threads = ThreadGuard::pin(2);
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u8], |i, &x| (i, x)), vec![(0, 5)]);
        assert!(par_chunk_map(&empty, 8, |c| c.to_vec()).is_empty());
    }

    #[test]
    fn panics_propagate() {
        let _threads = ThreadGuard::pin(2);
        let result = std::panic::catch_unwind(|| {
            par_map(&[1u8, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_map_records_observability_totals() {
        let _threads = ThreadGuard::pin(4);
        let before = mpa_obs::counters::snapshot();
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map(&items, |_, &x| x);
        let _ = par_chunk_map(&items, 10, |c| c.to_vec());
        let diff = mpa_obs::counters::snapshot_diff(&before, &mpa_obs::counters::snapshot());
        let get = |name: &str| diff.iter().find(|(n, _)| *n == name).unwrap().1;
        // Other tests may run par_map concurrently, so totals are lower
        // bounds: both calls counted, both in input elements.
        assert!(get("par_map_regions") >= 2);
        assert!(get("par_map_tasks") >= 200);
    }
}
