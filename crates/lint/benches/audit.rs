//! Criterion bench: the full graph-mode audit over the real workspace
//! (parse → symbols → call graph → reachability → rules), next to the
//! flat line-rule scan as the baseline it grew from. The audit runs on
//! every `cargo test -q`, so its wall clock is a budget, not a curiosity:
//! the whole-workspace pass is expected to stay comfortably under ~2 s.
//!
//! ```text
//! cargo bench -p mpa-lint --bench audit
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn bench(c: &mut Criterion) {
    let root = workspace_root();
    let mut g = c.benchmark_group("audit");
    g.sample_size(10);
    g.bench_function("graph_full_workspace", |b| {
        b.iter(|| mpa_lint::audit_workspace(&root).expect("audit").findings.len())
    });
    g.bench_function("flat_full_workspace", |b| {
        b.iter(|| mpa_lint::scan_workspace(&root).expect("scan").findings.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
