//! `mpa-audit` (crate `mpa-lint`): a static-analysis pass enforcing the
//! workspace's determinism & correctness contract.
//!
//! The golden-file and thread-invariance suites can only *spot-check* the
//! contract dynamically — every phase byte-identical across `--threads
//! 1/2/8` and across runs. This crate checks it at the source level, in
//! two layers (both std-only, in the spirit of `mpa-obs`: no external
//! dependencies, no `unsafe`):
//!
//! - **Line rules R1–R6** — a sanitized line scanner over `src/` and every
//!   `crates/*/src/` tree: float total order (R1), hash iteration order
//!   (R2), wall clocks (R3), thread identity (R4), `unsafe` placement (R5)
//!   and environment reads (R6), gated by per-rule path allowlists.
//! - **Audit rules R7–R10** — reachability-sensitive families over a
//!   token-level symbol table ([`SymbolTable`]) and workspace call graph
//!   ([`CallGraph`]): panic-safety from declared roots (R7), allocation in
//!   hot paths (R8), lock discipline in the serve daemon (R9) and dead
//!   obs counters (R10). Roots live in the checked-in `audit_roots.txt`
//!   manifest; a root that matches nothing is a hard error, not a skip.
//!
//! See [`Rule`] for the catalog, and DESIGN.md §11/§16 for the contract,
//! the rationale and the waiver policy.
//!
//! The pass ships three ways so it cannot rot:
//! - `cargo run -p mpa-lint` — the binary; graph mode is the default,
//!   exit 0 only with zero non-waived findings, exit 2 on manifest/parse
//!   errors, `--json FILE` writes the machine-readable report;
//! - the `workspace_clean` integration test, which runs the same audit
//!   under plain `cargo test` (tier-1);
//! - the CI `lint` job, which uploads `lint_report.json` as an artifact and
//!   gates `audit_fns_scanned` against a committed baseline so a silently
//!   shrinking parse surface fails the build.

mod audit;
mod graph;
mod report;
mod rules;
mod scan;
mod symbols;

pub use audit::{audit_source_set, audit_workspace, symbols_of, AuditError, ROOTS_FILE};
pub use graph::{CallGraph, RootError, RootManifest};
pub use report::{AuditStats, Finding, Report};
pub use rules::Rule;
pub use scan::{scan_source, scan_workspace, FileScan};
pub use symbols::{CallSite, CallTarget, FileLayout, FnSym, SymbolError, SymbolTable};
