//! `mpa-lint`: a static-analysis pass enforcing the workspace's
//! determinism & correctness contract.
//!
//! The golden-file and thread-invariance suites can only *spot-check* the
//! contract dynamically — every phase byte-identical across `--threads
//! 1/2/8` and across runs. This crate checks it at the source level: a
//! std-only line/token scanner (in the spirit of `mpa-obs`: no external
//! dependencies, no `unsafe`) walks `src/` and every `crates/*/src/` tree
//! and matches six rules — float total order (R1), hash iteration order
//! (R2), wall clocks (R3), thread identity (R4), `unsafe` placement (R5)
//! and environment reads (R6). See [`Rule`] for the catalog, and
//! DESIGN.md §11 for the contract, the rationale and the waiver policy.
//!
//! The pass ships three ways so it cannot rot:
//! - `cargo run -p mpa-lint` — the binary; exit 0 only with zero
//!   non-waived findings, `--json FILE` writes the machine-readable report;
//! - the `workspace_clean` integration test, which runs the same scan
//!   under plain `cargo test` (tier-1);
//! - the CI `lint` job, which uploads `lint_report.json` as an artifact so
//!   rule-hit and waiver counts are trackable across PRs.

mod report;
mod rules;
mod scan;

pub use report::{Finding, Report};
pub use rules::Rule;
pub use scan::{scan_source, scan_workspace, FileScan};
