//! Source sanitization, waiver parsing, per-file rule matching and the
//! workspace walk.
//!
//! The scanner is deliberately a line/token-level pass, not a parser: each
//! line is first *sanitized* — comments and string/char literals replaced
//! by spaces, with block comments, multi-line strings and raw strings
//! tracked across lines — and the rules then match plain substrings and
//! identifier-bounded words against the sanitized text. That keeps the
//! whole tool std-only and fast (one pass over ~100 files) while making
//! documentation, log messages and test fixtures-in-strings invisible to
//! the rules.
//!
//! # Waivers
//!
//! A finding is suppressed by an inline comment of the form
//!
//! ```text
//! // mpa-lint: allow(R4) -- why this site is genuinely harmless
//! ```
//!
//! either on the offending line itself or on the line directly above it.
//! The rule list may name several rules (`allow(R3, R4)`). The `--`
//! justification is mandatory and must be non-empty: a waiver without one
//! is *rejected* (pseudo-rule `W1`) and suppresses nothing, and a waiver
//! that suppresses no finding is itself flagged (`W2`) so stale waivers
//! cannot accumulate. Waivers are parsed only from the trailing `//`
//! line-comment portion of a line (as located by the sanitizer), so the
//! marker inside a string literal is just data — and only in plain `//`
//! comments: doc comments (`///`, `//!`) are documentation and never
//! waive anything, which is also what lets this very paragraph show the
//! syntax.

use crate::report::{Finding, Report};
use crate::rules::{contains_word, find_word_from, is_ident_byte, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Result of scanning one file.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path the scan was invoked with.
    pub rel_path: String,
    /// Number of source lines in the file.
    pub lines: usize,
    /// All findings, waived ones included, in line order.
    pub findings: Vec<Finding>,
}

// --- sanitizer -----------------------------------------------------------

/// Lexer state carried across lines.
pub(crate) enum Strip {
    /// Plain code.
    Code,
    /// Inside a block comment, at the given nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal (possibly spanning lines).
    Str,
    /// Inside a raw string with the given number of `#` guards.
    RawStr(usize),
}

/// Blank out comments and literals from one line, advancing the cross-line
/// lexer state. Stripped characters become spaces so that byte positions
/// within the line are preserved for the matchers. The second element is
/// the byte offset of a trailing `//` line comment, when the line has one
/// in code position (not inside a literal or block comment) — the only
/// place a waiver may live.
pub(crate) fn sanitize_line(state: &mut Strip, line: &str) -> (String, Option<usize>) {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut comment_start = None;
    let mut i = 0;
    while i < chars.len() {
        match state {
            Strip::Block(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    if *depth == 0 {
                        *state = Strip::Code;
                    }
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Strip::Str => {
                if chars[i] == '\\' {
                    out.push_str(if i + 1 < chars.len() { "  " } else { " " });
                    i += 2;
                } else if chars[i] == '"' {
                    *state = Strip::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Strip::RawStr(hashes) => {
                let h = *hashes;
                if chars[i] == '"' && (i + 1..=i + h).all(|k| chars.get(k) == Some(&'#')) {
                    *state = Strip::Code;
                    for _ in 0..=h {
                        out.push(' ');
                    }
                    i += 1 + h;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Strip::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line is invisible to
                    // the rules, but its byte offset is where the waiver
                    // parser is allowed to look.
                    comment_start = Some(chars[..i].iter().map(|c| c.len_utf8()).sum());
                    break;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = Strip::Block(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                // Raw / byte string openers: r"…", r#"…"#, br"…", b"…".
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if (c == 'r' || c == 'b') && !prev_ident {
                    let r_at = if c == 'b' && chars.get(i + 1) == Some(&'r') { i + 1 } else { i };
                    if chars.get(r_at) == Some(&'r') {
                        let mut k = r_at + 1;
                        while chars.get(k) == Some(&'#') {
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            *state = Strip::RawStr(k - r_at - 1);
                            for _ in i..=k {
                                out.push(' ');
                            }
                            i = k + 1;
                            continue;
                        }
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        *state = Strip::Str;
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                }
                if c == '"' {
                    *state = Strip::Str;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: blank through the closing quote.
                        let mut k = i + 2;
                        if matches!(chars.get(k), Some('\\') | Some('\'')) {
                            k += 1;
                        }
                        while k < chars.len() && chars[k] != '\'' {
                            k += 1;
                        }
                        let end = k.min(chars.len().saturating_sub(1));
                        for _ in i..=end {
                            out.push(' ');
                        }
                        i = k + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') {
                        // Plain one-character literal 'x'.
                        out.push_str("   ");
                        i += 3;
                        continue;
                    }
                    // Lifetime: blank the quote, keep going.
                    out.push(' ');
                    i += 1;
                    continue;
                }
                out.push(c);
                i += 1;
            }
        }
    }
    (out, comment_start)
}

// --- waivers -------------------------------------------------------------

/// The waiver marker, assembled from pieces so the scanner's own source
/// never contains the contiguous token and cannot waive itself.
const MARKER: &str = concat!("mpa-", "lint: allow(");

pub(crate) struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub(crate) line: usize,
    pub(crate) rules: Vec<Rule>,
    pub(crate) justification: String,
    /// Why the waiver is invalid, if it is. Rejected waivers suppress
    /// nothing.
    pub(crate) rejected: Option<String>,
    pub(crate) used: bool,
}

/// Parse a waiver from the trailing `//` comment of a line. `comment` is
/// the raw text from the `//` onward, as located by the sanitizer — so a
/// marker inside a string literal or block comment never reaches here.
fn parse_waiver(line_no: usize, comment: &str) -> Option<Waiver> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let start = comment.find(MARKER)?;
    let rest = &comment[start + MARKER.len()..];
    let mut w = Waiver {
        line: line_no,
        rules: Vec::new(),
        justification: String::new(),
        rejected: None,
        used: false,
    };
    let Some(close) = rest.find(')') else {
        w.rejected = Some("unterminated rule list".to_string());
        return Some(w);
    };
    for part in rest[..close].split(',') {
        match Rule::parse(part) {
            Some(r) => w.rules.push(r),
            None => {
                w.rejected = Some(format!("unknown rule `{}`", part.trim()));
                return Some(w);
            }
        }
    }
    if w.rules.is_empty() {
        w.rejected = Some("empty rule list".to_string());
        return Some(w);
    }
    match rest[close + 1..].trim_start().strip_prefix("--") {
        Some(j) if !j.trim().is_empty() => w.justification = j.trim().to_string(),
        _ => {
            w.rejected =
                Some("missing or empty justification (`-- <why this is safe>`)".to_string())
        }
    }
    Some(w)
}

// --- rule matching -------------------------------------------------------

/// Identifiers this file binds to a `HashMap`/`HashSet` (let-bindings,
/// struct fields, typed parameters). A per-file approximation: hash
/// containers in this workspace are always declared and iterated within
/// one file.
fn hash_bound_idents(code: &[String]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in code {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = find_word_from(line, ty, from) {
                from = pos + ty.len();
                if let Some(name) = declared_ident(line, pos) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// The identifier a `HashMap`/`HashSet` occurrence at byte `pos` declares,
/// if the line is a declaration: `let [mut] name = …Hash…`, or
/// `name: [&][mut ]Hash…<…>` (field or parameter).
fn declared_ident(line: &str, pos: usize) -> Option<String> {
    if let Some(lp) = find_word_from(line, "let", 0) {
        if lp < pos {
            let after = line[lp + 3..].trim_start();
            let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
            let ident: String =
                after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if !ident.is_empty() {
                return Some(ident);
            }
        }
    }
    let bytes = line.as_bytes();
    let mut k = pos;
    while k > 0 && (bytes[k - 1] == b' ' || bytes[k - 1] == b'&') {
        k -= 1;
    }
    if line[..k].ends_with("mut") {
        k -= 3;
        while k > 0 && (bytes[k - 1] == b' ' || bytes[k - 1] == b'&') {
            k -= 1;
        }
    }
    if k == 0 || bytes[k - 1] != b':' {
        return None;
    }
    k -= 1;
    let end = k;
    while k > 0 && is_ident_byte(bytes[k - 1]) {
        k -= 1;
    }
    (k < end).then(|| line[k..end].to_string())
}

/// Whether the sanitized line iterates the hash-bound identifier `name`.
fn iterates_hash(line: &str, name: &str) -> bool {
    const ITER_SUFFIXES: [&str; 7] =
        [".iter()", ".iter_mut()", ".into_iter()", ".keys()", ".values()", ".values_mut()", ".drain("];
    let bytes = line.as_bytes();
    for suffix in ITER_SUFFIXES {
        let pat = format!("{name}{suffix}");
        let mut from = 0;
        while let Some(pos) = line.get(from..).and_then(|h| h.find(&pat)).map(|p| p + from) {
            if pos == 0 || !is_ident_byte(bytes[pos - 1]) {
                return true;
            }
            from = pos + 1;
        }
    }
    // `for … in [&[mut ]]name` with nothing chained after the identifier,
    // or the same with a field-access operand (`for … in &s.name`).
    let mut from = 0;
    while let Some(pos) = find_word_from(line, "in", from) {
        from = pos + 2;
        let operand = line[pos + 2..].trim_start();
        let operand = operand.strip_prefix("&mut ").or_else(|| operand.strip_prefix('&')).unwrap_or(operand);
        if let Some(rest) = operand.strip_prefix(name) {
            let next = rest.bytes().next();
            if !matches!(next, Some(b) if is_ident_byte(b) || b == b'.') {
                return true;
            }
        }
        let ob = operand.as_bytes();
        let mut p = 0;
        while let Some(at) = operand.get(p..).and_then(|h| h.find(name)).map(|q| q + p) {
            p = at + 1;
            let next = ob.get(at + name.len()).copied();
            // `.name` not followed by more of the expression: a bare field
            // bound to a hash container (a call `.name(` is a method, and
            // `.name.`/`.name_x` continue past the field).
            if at > 0
                && ob[at - 1] == b'.'
                && !matches!(next, Some(b) if is_ident_byte(b) || b == b'.' || b == b'(')
            {
                return true;
            }
        }
    }
    false
}

/// Run every line rule (R1–R6) over the sanitized lines of one file.
/// `rel_path` drives the per-rule allowlists.
pub(crate) fn detect(rel_path: &str, code: &[String]) -> Vec<(Rule, usize)> {
    let mut hits = Vec::new();
    let hash_idents = if Rule::R2.allowed_path(rel_path) {
        BTreeSet::new()
    } else {
        hash_bound_idents(code)
    };
    for (ix, line) in code.iter().enumerate() {
        let line_no = ix + 1;
        // R1: `partial_cmp` finished by `.unwrap()` / `.expect(` within the
        // same statement (approximated by a three-line window).
        if !Rule::R1.allowed_path(rel_path) {
            if let Some(pos) = line.find("partial_cmp") {
                let mut window = line[pos..].to_string();
                for follow in code.iter().skip(ix + 1).take(2) {
                    window.push(' ');
                    window.push_str(follow);
                }
                if window.contains(".unwrap()") || window.contains(".expect(") {
                    hits.push((Rule::R1, line_no));
                }
            }
        }
        if !hash_idents.is_empty() && hash_idents.iter().any(|h| iterates_hash(line, h)) {
            hits.push((Rule::R2, line_no));
        }
        if !Rule::R3.allowed_path(rel_path)
            && (line.contains("Instant::now") || contains_word(line, "SystemTime"))
        {
            hits.push((Rule::R3, line_no));
        }
        if !Rule::R4.allowed_path(rel_path)
            && (line.contains("thread::current") || contains_word(line, "available_parallelism"))
        {
            hits.push((Rule::R4, line_no));
        }
        if !Rule::R5.allowed_path(rel_path) && contains_word(line, "unsafe") {
            hits.push((Rule::R5, line_no));
        }
        if !Rule::R6.allowed_path(rel_path) && line.contains("env::var") {
            hits.push((Rule::R6, line_no));
        }
    }
    hits
}

// --- per-file scan -------------------------------------------------------

pub(crate) fn excerpt_of(raw: &str) -> String {
    let trimmed = raw.trim();
    if trimmed.len() > 160 {
        let mut cut = 160;
        while !trimmed.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &trimmed[..cut])
    } else {
        trimmed.to_string()
    }
}

/// One source file, sanitized once and shared by every analysis layer:
/// the R1–R6 line rules, the symbol/call-graph audit (R7–R10) and the
/// waiver resolution that closes a scan.
pub(crate) struct SourceFile {
    pub(crate) rel_path: String,
    /// Raw source lines (for excerpts).
    pub(crate) raw: Vec<String>,
    /// Sanitized lines: comments and literals blanked, positions kept.
    pub(crate) code: Vec<String>,
    /// Waivers parsed out of trailing `//` comments, in line order.
    pub(crate) waivers: Vec<Waiver>,
}

impl SourceFile {
    pub(crate) fn parse(rel_path: &str, text: &str) -> SourceFile {
        let mut state = Strip::Code;
        let mut raw = Vec::new();
        let mut code = Vec::new();
        let mut waivers: Vec<Waiver> = Vec::new();
        for (ix, l) in text.lines().enumerate() {
            let (sanitized, comment_start) = sanitize_line(&mut state, l);
            code.push(sanitized);
            if let Some(w) = comment_start.and_then(|at| parse_waiver(ix + 1, &l[at..])) {
                waivers.push(w);
            }
            raw.push(l.to_string());
        }
        SourceFile { rel_path: rel_path.to_string(), raw, code, waivers }
    }

    /// Apply the file's waivers to a batch of rule hits and emit the final
    /// findings, including the `W1`/`W2` waiver-defect pseudo-findings.
    /// Consumes the waiver `used` state, so call it once per file with
    /// *every* hit from *every* rule family. `graph_rules_ran` says whether
    /// the batch includes R7–R10 hits (graph-mode audit); when false, a
    /// waiver naming only graph rules is left alone rather than W2-flagged,
    /// since this scan never evaluated the rules it targets.
    pub(crate) fn resolve(mut self, mut hits: Vec<(Rule, usize)>, graph_rules_ran: bool) -> FileScan {
        hits.sort_unstable_by_key(|&(r, line)| (line, r));
        hits.dedup();
        let mut findings = Vec::new();
        for (rule, line_no) in hits {
            let mut waived = false;
            let mut justification = String::new();
            for w in self.waivers.iter_mut().filter(|w| w.rejected.is_none()) {
                if (w.line == line_no || w.line + 1 == line_no) && w.rules.contains(&rule) {
                    w.used = true;
                    waived = true;
                    justification = w.justification.clone();
                    break;
                }
            }
            findings.push(Finding {
                rule: rule.id().to_string(),
                file: self.rel_path.clone(),
                line: line_no,
                excerpt: excerpt_of(&self.raw[line_no - 1]),
                waived,
                justification,
            });
        }
        for w in &self.waivers {
            if let Some(reason) = &w.rejected {
                findings.push(Finding {
                    rule: "W1".to_string(),
                    file: self.rel_path.clone(),
                    line: w.line,
                    excerpt: format!("rejected waiver: {reason}"),
                    waived: false,
                    justification: String::new(),
                });
            } else if !w.used && (graph_rules_ran || !w.rules.iter().all(|r| r.needs_graph())) {
                findings.push(Finding {
                    rule: "W2".to_string(),
                    file: self.rel_path.clone(),
                    line: w.line,
                    excerpt: "waiver suppresses no finding; delete it".to_string(),
                    waived: false,
                    justification: String::new(),
                });
            }
        }
        findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
        FileScan { rel_path: self.rel_path, lines: self.raw.len(), findings }
    }
}

/// Scan one file's source text with the line rules (R1–R6) only.
/// `rel_path` must be the workspace-relative path with forward slashes; it
/// selects the per-rule allowlists. The reachability rules need a whole
/// source *set*; see [`crate::audit_source_set`].
pub fn scan_source(rel_path: &str, text: &str) -> FileScan {
    let file = SourceFile::parse(rel_path, text);
    let hits = detect(rel_path, &file.code);
    file.resolve(hits, false)
}

// --- workspace walk ------------------------------------------------------

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read every in-scope source file under `root` as `(rel_path, text)`
/// pairs in sorted path order: the facade's `src/` plus every
/// `crates/*/src/` tree. Vendored `compat/` shims, integration-test
/// directories and golden fixtures are intentionally out of scope — the
/// contract governs code that can reach pipeline output.
pub(crate) fn read_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> =
            std::fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        crate_dirs.sort();
        for c in crate_dirs {
            collect_rs(&c.join("src"), &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&path)?;
        out.push((rel, text));
    }
    Ok(out)
}

/// Scan the workspace rooted at `root` with the line rules (R1–R6) only.
/// The full audit — line rules plus the reachability families R7–R10 —
/// is [`crate::audit_workspace`].
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::new(root.display().to_string());
    for (rel, text) in read_workspace_sources(root)? {
        report.absorb(scan_source(&rel, &text));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sanitize_all(text: &str) -> Vec<String> {
        let mut state = Strip::Code;
        text.lines().map(|l| sanitize_line(&mut state, l).0).collect()
    }

    #[test]
    fn sanitizer_strips_comments_and_literals() {
        let code = sanitize_all(
            "let a = 1; // partial_cmp in a comment\n\
             let s = \"Instant::now\"; /* SystemTime\n\
             still SystemTime */ let b = 2;\n\
             let c = '\\'';\n\
             let r = r#\"env::var\"#;",
        );
        assert!(code[0].contains("let a = 1;"));
        assert!(!code[0].contains("partial_cmp"));
        assert!(!code[1].contains("Instant"));
        assert!(!code[2].contains("SystemTime"));
        assert!(code[2].contains("let b = 2;"));
        assert!(code[3].contains("let c ="));
        assert!(!code[4].contains("env::var"));
    }

    #[test]
    fn sanitizer_handles_escaped_quotes_in_strings() {
        // From mpa-obs json.rs: a string holding an escaped quote must not
        // desynchronize the string state.
        let code = sanitize_all("out.push_str(\"\\\\\\\"\"); let x = Instant_marker;");
        assert!(code[0].contains("let x = Instant_marker;"));
    }

    #[test]
    fn char_literal_quote_does_not_open_string() {
        let code = sanitize_all("match c { '\"' => f(), _ => g() } let y = 3;");
        assert!(code[0].contains("let y = 3;"));
    }

    #[test]
    fn declared_idents_found_for_let_field_and_param() {
        let code = sanitize_all(
            "struct S {\n\
             index: HashMap<String, u32>,\n\
             }\n\
             fn f(by_name: &HashMap<String, u64>) {\n\
             let mut seen = std::collections::HashSet::new();\n\
             let got: Vec<u32> = xs.iter().collect();\n\
             }",
        );
        let idents = hash_bound_idents(&code);
        assert!(idents.contains("index"));
        assert!(idents.contains("by_name"));
        assert!(idents.contains("seen"));
        assert_eq!(idents.len(), 3);
    }

    #[test]
    fn use_statements_do_not_register_idents() {
        let code = sanitize_all("use std::collections::{BTreeMap, HashMap};");
        assert!(hash_bound_idents(&code).is_empty());
    }

    #[test]
    fn lookup_only_hash_use_is_clean() {
        let text = "struct S { index: HashMap<String, u32> }\n\
                    fn f(s: &mut S) {\n\
                    s.index.insert(k, v);\n\
                    s.index.get(&k);\n\
                    s.index.entry(k).or_default();\n\
                    }";
        assert!(scan_source("crates/x/src/lib.rs", text).findings.is_empty());
    }

    #[test]
    fn waiver_on_same_and_previous_line_suppresses() {
        let just = "-- ordering is irrelevant here";
        let text = format!(
            "fn f(m: &HashMap<u32, u32>) -> u32 {{\n\
             // {MARKER}R2) {just}\n\
             m.values().sum()\n\
             }}"
        );
        let scan = scan_source("crates/x/src/lib.rs", &text);
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.findings[0].waived);
        assert_eq!(scan.findings[0].justification, "ordering is irrelevant here");
    }

    #[test]
    fn multi_rule_waiver_covers_both() {
        let text = format!(
            "fn f() {{\n\
             // {MARKER}R3, R4) -- scheduling diagnostics, never in output\n\
             let t = (Instant::now(), std::thread::current().id());\n\
             }}"
        );
        let scan = scan_source("crates/x/src/lib.rs", &text);
        let unwaived: Vec<_> = scan.findings.iter().filter(|f| !f.waived).collect();
        assert!(unwaived.is_empty(), "{unwaived:?}");
        assert_eq!(scan.findings.len(), 2);
    }

    #[test]
    fn marker_in_string_literal_is_not_a_waiver() {
        // The marker as string data must neither suppress a finding on the
        // next line nor be flagged as an unused (W2) waiver.
        let text = format!(
            "let msg = \"{MARKER}R3) -- just data\";\n\
             let t = Instant::now();\n"
        );
        let scan = scan_source("crates/x/src/lib.rs", &text);
        assert_eq!(scan.findings.len(), 1, "{:?}", scan.findings);
        let f = &scan.findings[0];
        assert_eq!((f.rule.as_str(), f.line, f.waived), ("R3", 2, false));
    }

    #[test]
    fn for_loop_over_hash_field_fires() {
        let text = "struct S { index: HashMap<String, u32> }\n\
                    fn f(s: &S) {\n\
                    for (k, v) in &s.index {\n\
                    g(k, v);\n\
                    }\n\
                    }";
        let scan = scan_source("crates/x/src/lib.rs", text);
        assert_eq!(scan.findings.len(), 1, "{:?}", scan.findings);
        assert_eq!((scan.findings[0].rule.as_str(), scan.findings[0].line), ("R2", 3));
    }

    #[test]
    fn doc_comment_waivers_are_inert() {
        // Documentation may quote the waiver syntax without creating a
        // (then unused, hence flagged) waiver.
        let text = format!("//! {MARKER}R3) -- docs showing the syntax\nfn f() {{}}\n");
        assert!(scan_source("crates/x/src/lib.rs", &text).findings.is_empty());
    }

    #[test]
    fn r1_window_spans_statement_lines() {
        let text = "xs.max_by(|a, b| {\n\
                    a.partial_cmp(b)\n\
                    .expect(msg)\n\
                    })";
        let scan = scan_source("crates/x/src/lib.rs", text);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].rule, "R1");
        assert_eq!(scan.findings[0].line, 2);
    }

    #[test]
    fn total_cmp_and_bare_partial_cmp_are_clean() {
        let text = "xs.sort_by(|a, b| a.total_cmp(b));\n\
                    let ord = a.partial_cmp(&b);";
        assert!(scan_source("crates/x/src/lib.rs", text).findings.is_empty());
    }
}
