//! The intra-workspace call graph and the reachability queries the audit
//! rules run on.
//!
//! Resolution is deliberately name-based and **over-approximating** — when
//! a call token could refer to several workspace functions, an edge is
//! added to all of them — so "reachable" errs toward flagging too much,
//! never too little (DESIGN.md §16 states the policy and its limits):
//!
//! * `name(…)` (free call): functions named `name` in the caller's module
//!   if any exist, otherwise every free function named `name` in the
//!   workspace (covers `use module::func` imports).
//! * `.name(…)` (method call): every impl method named `name` on any
//!   workspace type. Receiver types are never inferred.
//! * `A::…::name(…)` (path call): methods of the workspace type `A`
//!   (`Self`/`crate`/`self` handled), or free functions of a module whose
//!   path ends with the qualifier. A path whose qualifier names *no*
//!   workspace type or module resolves to nothing — `Vec::new(…)` must
//!   not edge into every workspace `new`.
//!
//! Test functions are excluded as both callers and callees: fixtures and
//! `#[cfg(test)]` helpers neither create reachability nor receive it.

use crate::symbols::{crate_of, CallTarget, SymbolTable};
use std::collections::{BTreeMap, BTreeSet};

/// A parsed `audit_roots` manifest: rule id → root-name suffixes.
#[derive(Debug, Default)]
pub struct RootManifest {
    /// `(rule id, fn suffix)` pairs in file order.
    pub roots: Vec<(String, String)>,
}

/// A manifest or root-resolution failure. Fatal to the audit (exit 2).
#[derive(Debug)]
pub struct RootError(pub String);

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit_roots: {}", self.0)
    }
}

impl RootManifest {
    /// Parse the manifest text: one `Rn module::path::fn` pair per line,
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<RootManifest, RootError> {
        let mut roots = Vec::new();
        for (ix, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(RootError(format!(
                    "line {}: expected `RULE fn::path`, got `{line}`",
                    ix + 1
                )));
            };
            if !matches!(rule, "R7" | "R8") {
                return Err(RootError(format!(
                    "line {}: rule `{rule}` does not take reachability roots",
                    ix + 1
                )));
            }
            roots.push((rule.to_string(), path.to_string()));
        }
        Ok(roots_checked(roots))
    }

    /// Root suffixes declared for `rule`.
    pub fn for_rule(&self, rule: &str) -> Vec<&str> {
        self.roots.iter().filter(|(r, _)| r == rule).map(|(_, p)| p.as_str()).collect()
    }
}

fn roots_checked(roots: Vec<(String, String)>) -> RootManifest {
    RootManifest { roots }
}

/// The resolved call graph: adjacency over [`SymbolTable::fns`] indices.
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[f]` = functions `f` may call, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Total resolved edges (what `audit_edges` reports).
    pub n_edges: usize,
}

impl CallGraph {
    /// Resolve every call site of `table` into edges.
    pub fn build(table: &SymbolTable) -> CallGraph {
        // Name indexes. Method index spans every impl; free index is
        // per-module plus global.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut type_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_global: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_module: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut modules: BTreeSet<&str> = BTreeSet::new();
        for (ix, f) in table.fns.iter().enumerate() {
            modules.insert(f.module.as_str());
            if f.is_test {
                continue;
            }
            match &f.self_ty {
                Some(ty) => {
                    methods.entry(f.name.as_str()).or_default().push(ix);
                    type_methods.entry((ty.as_str(), f.name.as_str())).or_default().push(ix);
                }
                None => {
                    free_global.entry(f.name.as_str()).or_default().push(ix);
                    free_by_module
                        .entry((f.module.as_str(), f.name.as_str()))
                        .or_default()
                        .push(ix);
                }
            }
        }

        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); table.fns.len()];
        for call in &table.calls {
            let caller = &table.fns[call.caller];
            if caller.is_test {
                continue;
            }
            let targets: Vec<usize> = match &call.target {
                CallTarget::Method(name) => {
                    methods.get(name.as_str()).cloned().unwrap_or_default()
                }
                CallTarget::Free(name) => {
                    let local = free_by_module.get(&(caller.module.as_str(), name.as_str()));
                    match local {
                        Some(v) => v.clone(),
                        None => free_global.get(name.as_str()).cloned().unwrap_or_default(),
                    }
                }
                CallTarget::Path(segs) => resolve_path(
                    segs,
                    caller,
                    &type_methods,
                    &free_by_module,
                    &free_global,
                    &modules,
                ),
            };
            // Cross-crate edges only into crates the caller's crate
            // textually references — shared method names alone do not
            // connect unrelated crates.
            let caller_crate = crate_of(&caller.module);
            let refs = table.crate_refs.get(caller_crate);
            edges[call.caller].extend(targets.into_iter().filter(|&t| {
                let target_crate = crate_of(&table.fns[t].module);
                caller_crate == target_crate
                    || refs.is_some_and(|r| r.contains(target_crate))
            }));
        }
        let edges: Vec<Vec<usize>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let n_edges = edges.iter().map(Vec::len).sum();
        CallGraph { edges, n_edges }
    }

    /// Every function reachable from `roots` (roots included), as a sorted
    /// set of fn indices.
    pub fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(f) = stack.pop() {
            for &t in &self.edges[f] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }
}

/// Resolve a `a::b::name(…)` path call; see the module docs for policy.
fn resolve_path(
    segs: &[String],
    caller: &crate::symbols::FnSym,
    type_methods: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_module: &BTreeMap<(&str, &str), Vec<usize>>,
    free_global: &BTreeMap<&str, Vec<usize>>,
    modules: &BTreeSet<&str>,
) -> Vec<usize> {
    let name = segs.last().expect("path call has at least two segments");
    let qual: Vec<&str> =
        segs[..segs.len() - 1].iter().map(String::as_str).filter(|s| !s.is_empty()).collect();
    if qual.is_empty() {
        return Vec::new();
    }
    // `Self::name` → the enclosing impl type's method.
    if qual == ["Self"] {
        if let Some(ty) = &caller.self_ty {
            return type_methods.get(&(ty.as_str(), name.as_str())).cloned().unwrap_or_default();
        }
        return Vec::new();
    }
    // `self::name` → caller's module; `crate::…::name` → caller's crate.
    if qual == ["self"] {
        return free_by_module
            .get(&(caller.module.as_str(), name.as_str()))
            .cloned()
            .unwrap_or_default();
    }
    if qual.first() == Some(&"crate") {
        let krate = caller.module.split("::").next().unwrap_or(&caller.module);
        let mut target = krate.to_string();
        for seg in &qual[1..] {
            target.push_str("::");
            target.push_str(seg);
        }
        return free_by_module.get(&(target.as_str(), name.as_str())).cloned().unwrap_or_default();
    }
    // `Type::name` — the qualifier's last segment names a workspace type.
    let last = qual[qual.len() - 1];
    if let Some(v) = type_methods.get(&(last, name.as_str())) {
        return v.clone();
    }
    // Module-qualified free call: any module whose path ends with the
    // qualifier sequence.
    let suffix = qual.join("::");
    let mut out = Vec::new();
    for m in modules {
        if *m == suffix || m.ends_with(&format!("::{suffix}")) {
            if let Some(v) = free_by_module.get(&(*m, name.as_str())) {
                out.extend(v.iter().copied());
            }
        }
    }
    if !out.is_empty() {
        return out;
    }
    // An unknown qualifier is a foreign type/module (`Vec::new`): resolve
    // to nothing rather than every `new` in the workspace. But a known
    // *type alias* or re-export can hide behind one ident; if the bare
    // name is unique in the workspace, take that single candidate.
    if qual.len() == 1 && !modules.contains(last) {
        if let Some(v) = free_global.get(name.as_str()) {
            if v.len() == 1 && segs.first().map(String::as_str) == Some(last) {
                return Vec::new();
            }
        }
    }
    Vec::new()
}
