//! Findings aggregation and rendering: human text plus hand-rolled JSON
//! in the same idiom as `mpa-obs`'s `RunReport` (and reusing its JSON
//! string-escaping helpers), so the lint artifact slots next to the run
//! and bench artifacts in CI.

use crate::rules::Rule;
use mpa_obs::json::{push_str_literal, push_u64_object};

/// One rule hit (or waiver defect) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `R1`–`R6`, or `W1` (rejected waiver) / `W2` (unused waiver).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (or waiver-defect description).
    pub excerpt: String,
    /// Whether a valid inline waiver suppresses this finding.
    pub waived: bool,
    /// The waiver's justification text (empty unless waived).
    pub justification: String,
}

/// Reachability statistics from a graph-mode audit. Reported as counters
/// so CI can baseline them: a silent parser regression that skips files
/// shows up as a drop in `audit_fns_scanned`, not as a green run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Non-test functions recognized by the symbol layer.
    pub fns_scanned: u64,
    /// Resolved call edges in the workspace graph.
    pub edges: u64,
    /// Functions reachable from the R7 (panic-safety) roots.
    pub reachable_r7: u64,
    /// Functions reachable from the R8 (hot-path allocation) roots.
    pub reachable_r8: u64,
}

/// Aggregated scan result over a set of files.
#[derive(Debug)]
pub struct Report {
    /// Root directory the scan ran over (display form).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total source lines scanned.
    pub lines_scanned: usize,
    /// Every finding, waived ones included, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Present when the scan ran in graph mode (the full audit).
    pub audit: Option<AuditStats>,
}

impl Report {
    /// Empty report for the given root.
    pub fn new(root: String) -> Self {
        Self { root, files_scanned: 0, lines_scanned: 0, findings: Vec::new(), audit: None }
    }

    /// Fold one file's scan into the report.
    pub fn absorb(&mut self, scan: crate::scan::FileScan) {
        self.files_scanned += 1;
        self.lines_scanned += scan.lines;
        self.findings.extend(scan.findings);
    }

    /// Findings not suppressed by a valid waiver (these fail strict mode).
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Strict mode passes iff every finding is waived with a justification.
    pub fn strict_ok(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Counter-style totals, `mpa-obs` registry idiom: stable names, `u64`
    /// values, trackable across PRs by diffing two reports.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let count = |pred: &dyn Fn(&&Finding) -> bool| self.findings.iter().filter(pred).count() as u64;
        let mut out = vec![
            ("lint_files_scanned".to_string(), self.files_scanned as u64),
            ("lint_lines_scanned".to_string(), self.lines_scanned as u64),
        ];
        for r in Rule::ALL {
            let id = r.id();
            out.push((format!("lint_hits_{}", id.to_ascii_lowercase()), count(&|f| f.rule == id)));
            out.push((
                format!("lint_waived_{}", id.to_ascii_lowercase()),
                count(&|f| f.rule == id && f.waived),
            ));
        }
        out.push(("lint_waivers_rejected".to_string(), count(&|f| f.rule == "W1")));
        out.push(("lint_waivers_unused".to_string(), count(&|f| f.rule == "W2")));
        out.push(("lint_violations".to_string(), count(&|f| !f.waived)));
        if let Some(a) = &self.audit {
            out.push(("audit_fns_scanned".to_string(), a.fns_scanned));
            out.push(("audit_edges".to_string(), a.edges));
            out.push(("audit_reachable_r7".to_string(), a.reachable_r7));
            out.push(("audit_reachable_r8".to_string(), a.reachable_r8));
        }
        out
    }

    /// The report as a JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"tool\": \"mpa-lint\",\n  \"root\": ");
        push_str_literal(&mut out, &self.root);
        out.push_str(",\n  \"strict_ok\": ");
        out.push_str(if self.strict_ok() { "true" } else { "false" });
        out.push_str(",\n  \"counters\": ");
        let counters = self.counters();
        let pairs: Vec<(&str, u64)> = counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        push_u64_object(&mut out, &pairs, 2);
        out.push_str(",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n      \"rule\": ");
            push_str_literal(&mut out, &f.rule);
            out.push_str(",\n      \"file\": ");
            push_str_literal(&mut out, &f.file);
            out.push_str(",\n      \"line\": ");
            out.push_str(&f.line.to_string());
            out.push_str(",\n      \"waived\": ");
            out.push_str(if f.waived { "true" } else { "false" });
            out.push_str(",\n      \"justification\": ");
            push_str_literal(&mut out, &f.justification);
            out.push_str(",\n      \"excerpt\": ");
            push_str_literal(&mut out, &f.excerpt);
            out.push_str("\n    }");
        }
        if self.findings.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let slug = Rule::parse(&f.rule).map(Rule::slug).unwrap_or("waiver");
            let status = if f.waived { " (waived)" } else { "" };
            out.push_str(&format!(
                "{} [{}/{}]{} {}:{}\n    {}\n",
                if f.waived { "note" } else { "error" },
                f.rule,
                slug,
                status,
                f.file,
                f.line,
                f.excerpt
            ));
            if f.waived {
                out.push_str(&format!("    waived: {}\n", f.justification));
            }
        }
        let waived = self.findings.iter().filter(|f| f.waived).count();
        let violations = self.findings.len() - waived;
        out.push_str(&format!(
            "mpa-lint: {} files, {} lines scanned; {} finding{} ({} waived, {} violation{})\n",
            self.files_scanned,
            self.lines_scanned,
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            waived,
            violations,
            if violations == 1 { "" } else { "s" },
        ));
        if let Some(a) = &self.audit {
            out.push_str(&format!(
                "mpa-audit: {} fns, {} call edges; reachable: R7={} R8={}\n",
                a.fns_scanned, a.edges, a.reachable_r7, a.reachable_r8,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, waived: bool) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            excerpt: "let t = …;".to_string(),
            waived,
            justification: if waived { "fine".to_string() } else { String::new() },
        }
    }

    #[test]
    fn strictness_follows_waiver_status() {
        let mut r = Report::new("/w".to_string());
        r.findings.push(finding("R3", true));
        assert!(r.strict_ok());
        r.findings.push(finding("R4", false));
        assert!(!r.strict_ok());
        assert_eq!(r.violations().count(), 1);
    }

    #[test]
    fn counters_track_hits_and_waivers() {
        let mut r = Report::new("/w".to_string());
        r.files_scanned = 2;
        r.findings.push(finding("R3", true));
        r.findings.push(finding("R3", false));
        r.findings.push(finding("W1", false));
        let c = r.counters();
        let get = |name: &str| c.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("lint_hits_r3"), 2);
        assert_eq!(get("lint_waived_r3"), 1);
        assert_eq!(get("lint_waivers_rejected"), 1);
        assert_eq!(get("lint_violations"), 2);
        assert_eq!(get("lint_files_scanned"), 2);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut r = Report::new("/w".to_string());
        r.findings.push(finding("R1", false));
        let json = r.to_json();
        assert!(json.contains("\"tool\": \"mpa-lint\""));
        assert!(json.contains("\"strict_ok\": false"));
        assert!(json.contains("\"lint_hits_r1\": 1"));
        assert!(json.contains("\"rule\": \"R1\""));
        // Balanced braces/brackets (the report nests two levels deep).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::new("/w".to_string());
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(r.render_text().contains("0 findings"));
    }
}
