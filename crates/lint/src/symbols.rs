//! The workspace symbol layer: a token-level Rust *item* parser.
//!
//! Built on the same sanitized line stream as the line rules, this module
//! recovers just enough structure for reachability-sensitive rules:
//!
//! * the module tree — the crate module from the file path
//!   (`crates/config/src/archive.rs` → `mpa_config::archive`) plus inline
//!   `mod name { … }` blocks;
//! * `impl` blocks and the self type they attach methods to;
//! * every `fn` item with its line span, qualified name and test status
//!   (`#[test]` functions and anything inside a `#[cfg(test)]` module);
//! * every call-shaped token inside a function body — `free(…)`,
//!   `.method(…)`, `Path::seg(…)` — tagged with the enclosing function.
//!
//! It is a *token* parser, not a grammar: brace depth is tracked exactly
//! (the sanitizer removes every brace inside comments and literals), items
//! are recognized by keyword, and everything else — expressions, types,
//! patterns — is skipped. The known blind spots and the resulting
//! over-approximation policy are documented in DESIGN.md §16. A file whose
//! braces do not balance at EOF is a hard [`SymbolError`] (exit 2 in the
//! binary), never a silent skip: an unbalanced file means the sanitizer
//! desynchronized and every downstream answer would be garbage.

use crate::scan::SourceFile;

/// A parse failure at the symbol layer. Always fatal to the audit.
#[derive(Debug)]
pub struct SymbolError {
    /// Workspace-relative file the failure was detected in.
    pub file: String,
    /// 1-based line (best effort — EOF imbalance reports the last line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SymbolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index of the owning file in the parsed set.
    pub file: usize,
    /// Module path, e.g. `mpa_config::archive` (inline mods appended).
    pub module: String,
    /// Self type when the fn sits in an `impl` block.
    pub self_ty: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
    /// Inside a `#[cfg(test)]` module, or carries `#[test]`.
    pub is_test: bool,
}

impl FnSym {
    /// `module::[Type::]name` — the name roots and reports use.
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{}::{}::{}", self.module, t, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `name(…)` — a free call, resolved module-first.
    Free(String),
    /// `.name(…)` — a method call, resolved by name over every impl.
    Method(String),
    /// `a::b::name(…)` — a path call, resolved against types and modules.
    Path(Vec<String>),
}

/// One call-shaped token inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling function in [`SymbolTable::fns`].
    pub caller: usize,
    /// The syntactic target.
    pub target: CallTarget,
    /// 1-based line of the call token.
    pub line: usize,
}

/// Per-file derived layout the rule matchers need.
#[derive(Debug)]
pub struct FileLayout {
    /// For each 0-based line: the innermost enclosing fn, if any.
    pub owner: Vec<Option<usize>>,
    /// Brace depth at the *end* of each 0-based line.
    pub depth_end: Vec<u32>,
}

/// The parsed workspace: every function, call site and file layout.
#[derive(Debug)]
pub struct SymbolTable {
    /// All functions, in (file, start line) order.
    pub fns: Vec<FnSym>,
    /// All call sites, in encounter order.
    pub calls: Vec<CallSite>,
    /// Per-file layouts, parallel to the input file set.
    pub layouts: Vec<FileLayout>,
    /// Crate → crates it textually references (`mpa_x` tokens anywhere in
    /// its sanitized sources). The call graph drops name-resolved edges
    /// into crates the caller never mentions: `mpa-serve` cannot call into
    /// `mpa-lint` however many method names they share.
    pub crate_refs: std::collections::BTreeMap<String, std::collections::BTreeSet<String>>,
}

impl SymbolTable {
    /// Parse every file of a source set. Fails on the first file whose
    /// braces do not balance.
    pub(crate) fn build(files: &[SourceFile]) -> Result<SymbolTable, SymbolError> {
        let mut table = SymbolTable {
            fns: Vec::new(),
            calls: Vec::new(),
            layouts: Vec::new(),
            crate_refs: std::collections::BTreeMap::new(),
        };
        for (ix, file) in files.iter().enumerate() {
            let layout = parse_file(ix, file, &mut table)?;
            table.layouts.push(layout);
            let krate = crate_of(&module_of(&file.rel_path)).to_string();
            let refs = table.crate_refs.entry(krate).or_default();
            for line in &file.code {
                collect_crate_refs(line, refs);
            }
        }
        Ok(table)
    }

    /// Functions whose qualified name ends with the `::`-separated
    /// `suffix` (a full match also counts). Test fns never match.
    pub fn find_by_suffix(&self, suffix: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && qual_ends_with(&f.qual(), suffix))
            .map(|(i, _)| i)
            .collect()
    }
}

/// `qual` equals `suffix` or ends with `::suffix`.
fn qual_ends_with(qual: &str, suffix: &str) -> bool {
    qual == suffix
        || (qual.len() > suffix.len() + 2
            && qual.ends_with(suffix)
            && qual[..qual.len() - suffix.len()].ends_with("::"))
}

/// The crate segment of a module path (`mpa_config::archive` →
/// `mpa_config`).
pub(crate) fn crate_of(module: &str) -> &str {
    module.split("::").next().unwrap_or(module)
}

/// Collect `mpa_<x>` crate tokens from a sanitized line into `refs`.
fn collect_crate_refs(line: &str, refs: &mut std::collections::BTreeSet<String>) {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line.get(from..).and_then(|h| h.find("mpa_")).map(|p| p + from) {
        let mut end = pos + 4;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        from = end;
        if pos > 0 && (bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_') {
            continue;
        }
        if end > pos + 4 {
            refs.insert(line[pos..end].to_string());
        }
    }
}

/// Crate-level module path from a workspace-relative file path.
/// `src/lib.rs` → `mpa`; `crates/serve/src/bin/mpa-serve.rs` →
/// `mpa_serve::bin::mpa_serve`.
pub(crate) fn module_of(rel_path: &str) -> String {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (krate, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (format!("mpa_{}", parts[1].replace('-', "_")), &parts[3..])
    } else {
        ("mpa".to_string(), &parts[1..])
    };
    let mut module = krate;
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        let seg = if last { seg.trim_end_matches(".rs") } else { seg };
        if last && (seg == "lib" || seg == "main" || seg == "mod") {
            continue;
        }
        module.push_str("::");
        module.push_str(&seg.replace('-', "_"));
    }
    module
}

// --- tokenizer ------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Sym(char),
}

/// Flatten the sanitized lines to a token stream with 1-based line tags.
/// Lifetimes (`'a`) are skipped so `<'a>` never looks like an ident.
fn tokenize(code: &[String]) -> Vec<(Tok, usize)> {
    let mut toks = Vec::new();
    for (ix, line) in code.iter().enumerate() {
        let line_no = ix + 1;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(line[start..i].to_string()), line_no));
            } else if b.is_ascii_digit() {
                // Numeric literal (possibly `1e3`, `0xff`, `1_000u64`). A
                // `.` is part of the literal only when a digit follows, so
                // `1..n` stays three tokens.
                while i < bytes.len() {
                    let in_literal = bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit));
                    if !in_literal {
                        break;
                    }
                    i += 1;
                }
            } else if b == b'\'' {
                // Lifetime marker (literals were sanitized away): skip the
                // quote and the label so it never reads as an ident.
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            } else if b == b' ' || b == b'\t' {
                i += 1;
            } else {
                toks.push((Tok::Sym(b as char), line_no));
                i += 1;
            }
        }
    }
    toks
}

// --- item parser ----------------------------------------------------------

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "unsafe",
    "await", "dyn", "ref", "mut", "pub", "use", "where", "impl", "trait", "struct", "enum",
    "union", "static", "const", "type", "crate", "super", "fn", "mod", "break", "continue",
    "true", "false", "extern",
];

#[derive(Debug)]
enum ScopeKind {
    /// Inline `mod name {`; `test` marks `#[cfg(test)]`.
    Module { test: bool },
    /// `impl … {` with the recovered self type.
    Impl { prev_self_ty: Option<String> },
    /// `fn … {`: the index into `fns`, and the fn that enclosed it.
    Fn { ix: usize, prev_fn: Option<usize> },
    /// Any other brace.
    Block,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *after* entering this scope.
    depth: u32,
}

/// What an `fn`/`mod`/`impl` keyword has announced but not yet opened.
enum Pending {
    Fn { name: String, line: usize, test: bool },
    Mod { name: String, test: bool },
    Impl,
}

struct Parser {
    module_stack: Vec<String>,
    scopes: Vec<Scope>,
    depth: u32,
    cur_fn: Option<usize>,
    cur_self_ty: Option<String>,
    in_test_module: u32,
    pending: Option<Pending>,
    /// Attr state for the *next* item: `#[test]` / `#[cfg(test)]`.
    attr_test_fn: bool,
    attr_cfg_test: bool,
    /// Self type recovered from an `impl` header, consumed at its `{`.
    cur_self_ty_pending: Option<String>,
}

fn parse_file(
    file_ix: usize,
    file: &SourceFile,
    table: &mut SymbolTable,
) -> Result<FileLayout, SymbolError> {
    let toks = tokenize(&file.code);
    let mut p = Parser {
        module_stack: vec![module_of(&file.rel_path)],
        scopes: Vec::new(),
        depth: 0,
        cur_fn: None,
        cur_self_ty: None,
        in_test_module: 0,
        pending: None,
        attr_test_fn: false,
        attr_cfg_test: false,
        cur_self_ty_pending: None,
    };
    let mut owner: Vec<Option<usize>> = vec![None; file.code.len()];
    let mut depth_end: Vec<u32> = vec![0; file.code.len()];
    let mut last_line = 1usize;

    let mut i = 0usize;
    while i < toks.len() {
        let (tok, line) = &toks[i];
        // Fill per-line layout for the lines crossed since the last token.
        for l in last_line..=*line {
            if l >= 1 {
                owner[l - 1] = p.cur_fn;
                depth_end[l - 1] = p.depth;
            }
        }
        last_line = *line;
        match tok {
            Tok::Sym('#') if matches!(toks.get(i + 1), Some((Tok::Sym('['), _))) => {
                // Attribute: capture the bracketed tokens.
                let mut j = i + 2;
                let mut nest = 1u32;
                let mut idents: Vec<&str> = Vec::new();
                while j < toks.len() && nest > 0 {
                    match &toks[j].0 {
                        Tok::Sym('[') => nest += 1,
                        Tok::Sym(']') => nest -= 1,
                        Tok::Ident(s) => idents.push(s),
                        _ => {}
                    }
                    j += 1;
                }
                if idents.first() == Some(&"test") {
                    p.attr_test_fn = true;
                }
                if idents.first() == Some(&"cfg") && idents.contains(&"test") {
                    p.attr_cfg_test = true;
                }
                i = j;
                continue;
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some((Tok::Ident(name), _)) = toks.get(i + 1) {
                    p.pending =
                        Some(Pending::Mod { name: name.clone(), test: p.attr_cfg_test });
                    p.attr_cfg_test = false;
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                p.pending = Some(Pending::Impl);
                p.attr_cfg_test = false;
                // The self type is recovered when the `{` arrives; scan is
                // done there so generics/`for` are seen in one place.
                let (ty, j) = scan_impl_self_ty(&toks, i + 1);
                p.cur_self_ty_pending = ty;
                i = j;
                continue;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some((Tok::Ident(name), fl)) = toks.get(i + 1) {
                    p.pending = Some(Pending::Fn {
                        name: name.clone(),
                        line: *fl,
                        test: p.attr_test_fn || p.in_test_module > 0,
                    });
                    p.attr_test_fn = false;
                    i += 2;
                    continue;
                }
                // `fn(` — a function-pointer type; not an item.
            }
            Tok::Sym(';') => {
                // Trait method signature or file-module declaration.
                if matches!(p.pending, Some(Pending::Fn { .. }) | Some(Pending::Mod { .. })) {
                    p.pending = None;
                }
            }
            Tok::Sym('{') => {
                p.depth += 1;
                let kind = match p.pending.take() {
                    Some(Pending::Fn { name, line: fn_line, test }) => {
                        let sym = FnSym {
                            file: file_ix,
                            module: p.module_stack.join("::"),
                            self_ty: p.cur_self_ty.clone(),
                            name,
                            start_line: fn_line,
                            end_line: fn_line,
                            is_test: test,
                        };
                        table.fns.push(sym);
                        let ix = table.fns.len() - 1;
                        let prev = p.cur_fn.replace(ix);
                        ScopeKind::Fn { ix, prev_fn: prev }
                    }
                    Some(Pending::Mod { name, test }) => {
                        p.module_stack.push(name);
                        if test {
                            p.in_test_module += 1;
                        }
                        ScopeKind::Module { test }
                    }
                    Some(Pending::Impl) => {
                        let prev = p.cur_self_ty.take();
                        p.cur_self_ty = p.cur_self_ty_pending.take();
                        ScopeKind::Impl { prev_self_ty: prev }
                    }
                    None => ScopeKind::Block,
                };
                p.scopes.push(Scope { kind, depth: p.depth });
                owner[*line - 1] = p.cur_fn;
                depth_end[*line - 1] = p.depth;
            }
            Tok::Sym('}') => {
                if p.depth == 0 {
                    return Err(SymbolError {
                        file: file.rel_path.clone(),
                        line: *line,
                        message: "unbalanced `}` (no open brace)".to_string(),
                    });
                }
                if p.scopes.last().is_some_and(|s| s.depth == p.depth) {
                    let scope = p.scopes.pop().expect("scope stack checked non-empty");
                    match scope.kind {
                        ScopeKind::Fn { ix, prev_fn } => {
                            table.fns[ix].end_line = *line;
                            p.cur_fn = prev_fn;
                        }
                        ScopeKind::Module { test } => {
                            p.module_stack.pop();
                            if test {
                                p.in_test_module -= 1;
                            }
                        }
                        ScopeKind::Impl { prev_self_ty } => {
                            p.cur_self_ty = prev_self_ty;
                        }
                        ScopeKind::Block => {}
                    }
                }
                p.depth -= 1;
                depth_end[*line - 1] = p.depth;
            }
            Tok::Ident(name) => {
                // Call-shaped token? Only meaningful inside a function.
                if let Some(caller) = p.cur_fn {
                    if !KEYWORDS.contains(&name.as_str()) {
                        if let Some(call) = read_call(&toks, i, name) {
                            table.calls.push(CallSite { caller, target: call, line: *line });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    for l in last_line..=file.code.len() {
        if l >= 1 {
            owner[l - 1] = p.cur_fn;
            depth_end[l - 1] = p.depth;
        }
    }
    if p.depth != 0 {
        return Err(SymbolError {
            file: file.rel_path.clone(),
            line: file.code.len(),
            message: format!("{} unclosed brace(s) at end of file", p.depth),
        });
    }
    Ok(FileLayout { owner, depth_end })
}

/// Scan the tokens of an `impl` header (after the keyword) and return the
/// recovered self type plus the index of the `{`/`;` that ends the header.
/// `impl<T> Foo<T>` → `Foo`; `impl Trait for Bar` → `Bar`;
/// `impl a::b::Baz` → `Baz`.
fn scan_impl_self_ty(toks: &[(Tok, usize)], mut i: usize) -> (Option<String>, usize) {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut prev_was_dash = false;
    while i < toks.len() {
        match &toks[i].0 {
            Tok::Sym('{') | Tok::Sym(';') if angle == 0 => return (last_ident, i),
            Tok::Sym('<') => angle += 1,
            Tok::Sym('>') => {
                if prev_was_dash {
                    // `->` in a where-bound `Fn() -> T`; not a closer.
                } else if angle > 0 {
                    angle -= 1;
                }
            }
            Tok::Ident(s) if angle == 0 => {
                if s == "where" {
                    // Everything after `where` is bounds, not the type.
                    while i < toks.len() && !matches!(toks[i].0, Tok::Sym('{') | Tok::Sym(';')) {
                        i += 1;
                    }
                    return (last_ident, i);
                }
                if s == "for" {
                    last_ident = None;
                } else if !KEYWORDS.contains(&s.as_str()) {
                    last_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        prev_was_dash = matches!(toks[i].0, Tok::Sym('-'));
        i += 1;
    }
    (last_ident, i)
}

/// If the ident at `i` heads a call (`name(…)`, optionally with a
/// turbofish), classify it as free/method/path using the tokens before it.
fn read_call(toks: &[(Tok, usize)], i: usize, name: &str) -> Option<CallTarget> {
    // A `(` must follow, optionally after `::<…>`.
    let mut j = i + 1;
    if matches!(toks.get(j), Some((Tok::Sym(':'), _)))
        && matches!(toks.get(j + 1), Some((Tok::Sym(':'), _)))
        && matches!(toks.get(j + 2), Some((Tok::Sym('<'), _)))
    {
        let mut angle = 1i32;
        j += 3;
        while j < toks.len() && angle > 0 {
            match toks[j].0 {
                Tok::Sym('<') => angle += 1,
                Tok::Sym('>') => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    if !matches!(toks.get(j), Some((Tok::Sym('('), _))) {
        return None;
    }
    // Macro (`name!(…)`) — not a call edge (rule patterns handle macros).
    if matches!(toks.get(i + 1), Some((Tok::Sym('!'), _))) {
        return None;
    }
    // Look behind: `.` → method; `::` → path; else free.
    if i >= 1 {
        if let (Tok::Sym('.'), _) = &toks[i - 1] {
            return Some(CallTarget::Method(name.to_string()));
        }
    }
    if i >= 2
        && matches!(toks[i - 1].0, Tok::Sym(':'))
        && matches!(toks[i - 2].0, Tok::Sym(':'))
    {
        // Walk the path backwards: ident (:: ident)* name.
        let mut segs = vec![name.to_string()];
        let mut k = i;
        while k >= 2
            && matches!(toks[k - 1].0, Tok::Sym(':'))
            && matches!(toks[k - 2].0, Tok::Sym(':'))
        {
            if k >= 3 {
                if let Tok::Ident(seg) = &toks[k - 3].0 {
                    segs.push(seg.clone());
                    k -= 3;
                    continue;
                }
            }
            break;
        }
        segs.reverse();
        return Some(CallTarget::Path(segs));
    }
    Some(CallTarget::Free(name.to_string()))
}
