//! The `mpa-lint` binary: audit the workspace, print findings, optionally
//! write the JSON report.
//!
//! ```text
//! mpa-lint [--root DIR] [--json FILE] [--quiet] [--graph | --no-graph]
//! ```
//!
//! Graph mode (the full audit: line rules R1–R6 plus the reachability
//! families R7–R10 over the workspace call graph) is the default;
//! `--no-graph` restricts the run to the line rules, `--graph` spells the
//! default for CI scripts that want it explicit.
//!
//! Exit-code contract (asserted end-to-end by `tests/cli_exit_codes.rs`):
//! - **0** — scan completed, zero non-waived findings;
//! - **1** — scan completed, at least one non-waived finding;
//! - **2** — the audit itself failed: bad usage, unreadable workspace,
//!   malformed `audit_roots.txt`, a root matching no function, or a file
//!   the symbol layer cannot parse. Nothing is silently skipped.
//!
//! With no `--root`, the workspace containing this crate is scanned (so
//! `cargo run -p mpa-lint` works from any directory inside the repo); a
//! relocated binary falls back to the enclosing workspace of the current
//! directory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage(program: &str) -> String {
    format!("usage: {program} [--root DIR] [--json FILE] [--quiet] [--graph | --no-graph]")
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|t| t.contains("[workspace]"))
}

/// The workspace to scan when `--root` is absent: the compile-time
/// location of this crate's workspace when it still exists (the usual
/// `cargo run -p mpa-lint` case), otherwise — for a relocated or
/// CI-cache-restored binary — the nearest ancestor of the current
/// directory whose `Cargo.toml` declares a workspace.
fn default_root() -> Option<PathBuf> {
    let baked = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    if is_workspace_root(&baked) {
        return Some(baked);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let program = args.next().unwrap_or_else(|| "mpa-lint".to_string());
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut graph = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("{program}: --root needs a directory\n{}", usage(&program));
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => {
                    eprintln!("{program}: --json needs a file path\n{}", usage(&program));
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--graph" => graph = true,
            "--no-graph" => graph = false,
            "--help" | "-h" => {
                println!("{}", usage(&program));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("{program}: unknown argument `{other}`\n{}", usage(&program));
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(default_root) else {
        eprintln!("{program}: no workspace found; pass --root DIR");
        return ExitCode::from(2);
    };
    let report = if graph {
        match mpa_lint::audit_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{program}: cannot audit {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match mpa_lint::scan_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{program}: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    };
    if !quiet {
        print!("{}", report.render_text());
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("{program}: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.strict_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
