//! The `mpa-lint` binary: scan the workspace, print findings, optionally
//! write the JSON report, and exit non-zero on any non-waived finding.
//!
//! ```text
//! mpa-lint [--root DIR] [--json FILE] [--quiet]
//! ```
//!
//! With no `--root`, the workspace containing this crate is scanned (so
//! `cargo run -p mpa-lint` works from any directory inside the repo).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage(program: &str) -> String {
    format!("usage: {program} [--root DIR] [--json FILE] [--quiet]")
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let program = args.next().unwrap_or_else(|| "mpa-lint".to_string());
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("{program}: --root needs a directory\n{}", usage(&program));
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => {
                    eprintln!("{program}: --json needs a file path\n{}", usage(&program));
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{}", usage(&program));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("{program}: unknown argument `{other}`\n{}", usage(&program));
                return ExitCode::from(2);
            }
        }
    }
    // Two levels up from this crate's manifest dir is the workspace root.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
    });
    let report = match mpa_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{program}: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !quiet {
        print!("{}", report.render_text());
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("{program}: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.strict_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
